"""Rule registry and analysis context for the static analysis plane.

A :class:`Rule` packages one check: a stable id, a default severity, the
category it belongs to (``netlist``, ``scan``, ``clocking``, ``edt``,
``testability``, ``plan``) and the tuple of :class:`AnalysisContext`
attributes it *requires*.  :func:`run_rules` selects the applicable rules
for a context — a rule whose requirements are missing is silently skipped
and therefore absent from ``LintReport.rules_run`` — executes them in a
deterministic order and folds waivers into the resulting report.

Rules are registered at import time by the sibling ``*_rules`` modules via
the :func:`rule` decorator; custom project rules can register the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.analyze.report import Finding, LintReport, Severity, Waiver, apply_waivers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.atpg.config import TestSetup
    from repro.clocking.domains import ClockDomainMap
    from repro.dft.edt import EdtArchitecture
    from repro.dft.scan import ScanArchitecture
    from repro.netlist.netlist import Netlist
    from repro.simulation.model import CircuitModel

#: Every category a built-in rule may belong to, in report order.
CATEGORIES: tuple[str, ...] = (
    "netlist",
    "scan",
    "clocking",
    "edt",
    "testability",
    "plan",
)


@dataclass
class AnalysisContext:
    """Everything a rule may look at.  All fields optional — rules declare
    what they need via ``Rule.requires`` and are skipped when it is absent.

    Attributes:
        netlist: Editable netlist view of the design.
        model: Levelized :class:`CircuitModel` (structural analyses).
        scan: Scan architecture (chain rules).
        domain_map: Clock-domain assignment (CDC rules).
        edt: EDT compression hardware (blockage rules).
        setup: ATPG constraint environment — capture procedures, pin
            constraints, output strobing (CDC coverage, SCOAP, prover).
        plan: A runtime :class:`~repro.runtime.plan.Plan` *or* a plan-shaped
            mapping (``Plan.to_dict`` form); mappings allow linting job
            graphs that would not survive ``Plan`` construction.
        design: Label used as the report target and in findings.
        allow_floating_inputs: Downgrades ``undriven-net`` to WARNING.
        hotspot_threshold: Minimum finite SCOAP cost to report as a hotspot.
        hotspot_limit: Maximum number of hotspot findings.
    """

    netlist: "Netlist | None" = None
    model: "CircuitModel | None" = None
    scan: "ScanArchitecture | None" = None
    domain_map: "ClockDomainMap | None" = None
    edt: "EdtArchitecture | None" = None
    setup: "TestSetup | None" = None
    plan: Any | None = None
    design: str = ""
    allow_floating_inputs: bool = False
    hotspot_threshold: int = 50
    hotspot_limit: int = 10

    @classmethod
    def for_netlist(
        cls, netlist: "Netlist", *, allow_floating_inputs: bool = False
    ) -> "AnalysisContext":
        return cls(
            netlist=netlist,
            design=netlist.name,
            allow_floating_inputs=allow_floating_inputs,
        )

    @classmethod
    def for_prepared(
        cls, prepared: Any, setup: "TestSetup | None" = None
    ) -> "AnalysisContext":
        """Context over a :class:`~repro.core.flow.PreparedDesign` bundle
        (duck-typed: anything exposing netlist/model/scan/domain_map/edt)."""
        netlist = getattr(prepared, "netlist", None)
        name = ""
        spec = getattr(prepared, "spec", None)
        if spec is not None:
            name = getattr(spec, "name", "")
        if not name and netlist is not None:
            name = netlist.name
        return cls(
            netlist=netlist,
            model=getattr(prepared, "model", None),
            scan=getattr(prepared, "scan", None),
            domain_map=getattr(prepared, "domain_map", None),
            edt=getattr(prepared, "edt", None),
            setup=setup,
            design=name,
        )

    @classmethod
    def for_plan(cls, plan: Any) -> "AnalysisContext":
        name = getattr(plan, "name", None)
        if name is None and isinstance(plan, dict):
            name = plan.get("name", "")
        return cls(plan=plan, design=str(name or "plan"))


#: A rule body: reads the context, yields findings.
CheckFn = Callable[[AnalysisContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered static check.

    Attributes:
        id: Stable identifier; findings carry it and waivers match on it.
        severity: Default severity (a check may emit a different one, e.g.
            ``undriven-net`` downgrades under ``allow_floating_inputs``).
        category: Grouping used for selection (see :data:`CATEGORIES`).
        description: One-line summary for the rule catalogue.
        check: The callable that produces findings.
        requires: Context attributes that must be non-``None`` for the rule
            to run.
    """

    id: str
    severity: Severity
    category: str
    description: str
    check: CheckFn
    requires: tuple[str, ...] = ("netlist",)

    def applicable(self, context: AnalysisContext) -> bool:
        return all(getattr(context, attr, None) is not None for attr in self.requires)


#: Global registry: rule id -> Rule.
RULES: dict[str, Rule] = {}


class RuleNotFound(KeyError):
    """Raised when a rule id is not registered."""


def register_rule(rule_obj: Rule) -> Rule:
    """Register a rule; ids must be unique and categories known strings."""
    if rule_obj.id in RULES:
        raise ValueError(f"rule id {rule_obj.id!r} is already registered")
    RULES[rule_obj.id] = rule_obj
    return rule_obj


def rule(
    id: str,
    *,
    severity: Severity,
    category: str,
    description: str,
    requires: Sequence[str] = ("netlist",),
) -> Callable[[CheckFn], CheckFn]:
    """Decorator form of :func:`register_rule`."""

    def _register(fn: CheckFn) -> CheckFn:
        register_rule(
            Rule(
                id=id,
                severity=severity,
                category=category,
                description=description,
                check=fn,
                requires=tuple(requires),
            )
        )
        return fn

    return _register


def get_rule(rule_id: str) -> Rule:
    try:
        return RULES[rule_id]
    except KeyError:
        raise RuleNotFound(
            f"no rule registered with id {rule_id!r} "
            f"(known: {sorted(RULES) or '<none>'})"
        ) from None


def all_rules(category: str | None = None) -> list[Rule]:
    """Registered rules, deterministically ordered (category, then id)."""
    selected = [
        r for r in RULES.values() if category is None or r.category == category
    ]
    order = {name: index for index, name in enumerate(CATEGORIES)}
    selected.sort(key=lambda r: (order.get(r.category, len(order)), r.id))
    return selected


def rule_catalogue() -> list[dict[str, str]]:
    """JSON-safe catalogue of every registered rule (docs, ``--list-rules``)."""
    return [
        {
            "id": r.id,
            "severity": r.severity.value,
            "category": r.category,
            "description": r.description,
            "requires": ", ".join(r.requires),
        }
        for r in all_rules()
    ]


def run_rules(
    context: AnalysisContext,
    *,
    rules: Sequence[str] | None = None,
    categories: Sequence[str] | None = None,
    waivers: Sequence[Waiver] = (),
    target: str = "",
) -> LintReport:
    """Run every applicable rule against ``context`` and build the report.

    Args:
        context: The analysis context.
        rules: Explicit rule ids to run (mutually exclusive with
            ``categories``; unknown ids raise :class:`RuleNotFound`).
        categories: Restrict to these categories (default: all).
        waivers: Waivers folded into the findings.
        target: Report target label (defaults to ``context.design``).

    Returns:
        The :class:`LintReport`; ``rules_run`` lists only the rules whose
        context requirements were satisfied.
    """
    if rules is not None and categories is not None:
        raise ValueError("pass either rules= or categories=, not both")
    if rules is not None:
        selected = [get_rule(rule_id) for rule_id in rules]
    else:
        wanted = set(categories) if categories is not None else None
        selected = [
            r for r in all_rules() if wanted is None or r.category in wanted
        ]
    findings: list[Finding] = []
    rules_run: list[str] = []
    for rule_obj in selected:
        if not rule_obj.applicable(context):
            continue
        rules_run.append(rule_obj.id)
        findings.extend(rule_obj.check(context))
    report = LintReport(
        target=target or context.design,
        findings=apply_waivers(findings, waivers),
        rules_run=tuple(rules_run),
        waivers=tuple(waivers),
    )
    report.sort()
    return report


__all__ = [
    "AnalysisContext",
    "CATEGORIES",
    "CheckFn",
    "Finding",
    "Rule",
    "RuleNotFound",
    "RULES",
    "all_rules",
    "get_rule",
    "register_rule",
    "rule",
    "rule_catalogue",
    "run_rules",
]
