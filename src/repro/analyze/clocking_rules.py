"""Clock-domain-crossing rules.

A crossing is structural: a flop Q in domain A combinationally reaching a
flop D in domain B.  Whether it is *tested* is a property of the declared
named capture procedures (:mod:`repro.clocking.named_capture`): the pair
``(A, B)`` is covered when some procedure launches from A (second-to-last
pulse) and captures into B (last pulse) — either an explicit inter-domain
procedure or a broadside procedure pulsing both domains together.  Faults
on uncovered crossings are exactly the classifier's ``cross-domain`` group;
flagging the pairs statically explains the coverage gap before ATPG runs.
"""

from __future__ import annotations

from typing import Iterable

from repro.analyze.report import Finding, Severity
from repro.analyze.rules import AnalysisContext, rule
from repro.analyze.structural import extract_domain_crossings


@rule(
    "cdc-uncovered",
    severity=Severity.WARNING,
    category="clocking",
    description="A clock-domain crossing has no covering capture procedure",
    requires=("model", "domain_map", "setup"),
)
def check_uncovered_crossings(context: AnalysisContext) -> Iterable[Finding]:
    model = context.model
    domain_map = context.domain_map
    setup = context.setup
    assert model is not None and domain_map is not None and setup is not None
    crossings = extract_domain_crossings(model, domain_map)
    if not crossings:
        return
    procedures = list(setup.procedures)
    by_pair: dict[tuple[str, str], list[str]] = {}
    for crossing in crossings:
        by_pair.setdefault(crossing.pair, []).append(
            f"{crossing.launch_flop}->{crossing.capture_flop}"
        )
    for (launch, capture), paths in sorted(by_pair.items()):
        covered = any(
            launch in procedure.launch_domains
            and capture in procedure.capture_domains
            for procedure in procedures
        )
        if covered:
            continue
        yield Finding(
            rule="cdc-uncovered",
            severity=Severity.WARNING,
            message=(
                f"{len(paths)} crossing path(s) launch in domain "
                f"{launch!r} and capture in {capture!r}, but no declared "
                "capture procedure launches from the former into the latter "
                "(faults there will fall into the cross-domain class)"
            ),
            subject=f"{launch}->{capture}",
            data={"paths": paths[:8], "num_paths": len(paths)},
        )
