"""Testability analyses: SCOAP hotspots, X-source reachability, and the
static untestability prover that feeds ATPG's prune set.

The prover establishes, per fault, one of two *sound* facts derived only
from hard constants (tie cells plus the setup's pin constraints) and
constant-blocked path analysis:

* ``constant-line`` — the faulted line provably holds the stuck value in
  every frame of every constrained pattern, so the fault can never be
  excited (classic constant-propagation redundancy).  For transition
  faults a constant line of *either* polarity suffices: the site can never
  transition at all.
* ``unobservable`` — every path from the fault site to an observation
  point (strobed POs and flip-flop D inputs) crosses a gate whose side
  input is constant at its controlling value, so the fault effect can
  never reach a capture point.  The scan-enable constraint makes every
  scan-mux shift pin such a blocked path during capture, which is exactly
  the classifier's ``scan-path`` population.

Faults so proven are marked :attr:`~repro.faults.fault_list.FaultStatus.UNTESTABLE`
*before* the ATPG phases run — both the random and the deterministic phase
target only UNDETECTED faults, so the pruned faults are never simulated or
targeted, and the coverage accounting (UT excluded from the test-coverage
denominator) is computed from statuses alone and therefore bit-identical
across every simulation backend.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.analyze.report import Finding, Severity
from repro.analyze.rules import AnalysisContext, rule
from repro.analyze.structural import constant_values, observing_nodes, pin_unblocked, x_sources
from repro.atpg.scoap import INFINITE_COST, compute_testability
from repro.faults.fault_list import FaultList, FaultStatus
from repro.faults.models import (
    StuckAtFault,
    TransitionFault,
    all_stuck_at_faults,
)
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.atpg.config import TestSetup


# --------------------------------------------------------------------------
# Untestability proofs
# --------------------------------------------------------------------------
#: Group prefix attached to pruned fault records (visible in histograms).
PROOF_GROUP_PREFIX = "proven-"


@dataclass(frozen=True)
class UntestableProof:
    """Why one fault can never be detected under the analyzed constraints."""

    fault: Any
    reason: str  # "constant-line" | "unobservable"
    detail: str

    @property
    def group(self) -> str:
        return f"{PROOF_GROUP_PREFIX}{self.reason}"


@dataclass
class UntestabilityReport:
    """Result of one prover run over one fault universe."""

    design: str
    total_faults: int
    proofs: tuple[UntestableProof, ...]
    seconds: float = 0.0

    @property
    def num_untestable(self) -> int:
        return len(self.proofs)

    def by_reason(self) -> dict[str, int]:
        return dict(Counter(proof.reason for proof in self.proofs))

    def proven_faults(self) -> set[Any]:
        return {proof.fault for proof in self.proofs}

    def as_dict(self) -> dict[str, Any]:
        return {
            "design": self.design,
            "total_faults": self.total_faults,
            "num_untestable": self.num_untestable,
            "by_reason": self.by_reason(),
            "seconds": round(self.seconds, 6),
        }


def _prover_observation(
    model: CircuitModel, setup: "TestSetup | None"
) -> set[int]:
    """Capture points the constrained flow can actually strobe.

    Conservative: every flip-flop D driver counts (non-scan flops still
    capture and can relay an effect into a later frame), plus PO drivers
    unless the setup masks outputs.  Latch state and RAM contents are never
    read by the scan flow, so their inputs are *not* observation points.
    """
    observation = {
        element.d_node
        for element in model.state_elements
        if element.d_node is not None
    }
    if setup is None or setup.observe_pos:
        observation.update(index for _, index in model.po_nodes)
    return observation


def prove_untestable(
    model: CircuitModel,
    faults: Sequence[Any] | None = None,
    *,
    setup: "TestSetup | None" = None,
    constraints: Mapping[str, Logic] | None = None,
) -> UntestabilityReport:
    """Statically prove faults untestable under the setup's constraints.

    Args:
        model: The levelized circuit.
        faults: Fault universe to examine (stuck-at and/or transition);
            defaults to every uncollapsed stuck-at fault of the model.
        setup: ATPG constraint environment; supplies pin constraints and
            output strobing.  ``None`` means unconstrained, all-observing.
        constraints: Explicit net -> value constraints (overrides the
            setup's effective pin constraints when given).

    Returns:
        An :class:`UntestabilityReport` listing one proof per untestable
        fault.  Proofs are sound with respect to the capture-mode flow: a
        proven fault is never detected by any constrained pattern.
    """
    start = time.perf_counter()
    if faults is None:
        faults = all_stuck_at_faults(model)
    if constraints is None and setup is not None:
        constraints = setup.effective_pin_constraints()
    const = constant_values(model, constraints)
    observing = observing_nodes(model, const, _prover_observation(model, setup))

    proofs: list[UntestableProof] = []
    for fault in faults:
        site = fault.site
        node = model.nodes[site.node]
        if site.pin is None:
            line = site.node
            gate_open = True
        else:
            line = node.fanin[site.pin]
            gate_open = pin_unblocked(model, const, site.node, site.pin)
        line_value = const.get(line)
        stuck: StuckAtFault | None = None
        transition: TransitionFault | None = None
        if isinstance(fault, TransitionFault):
            transition = fault
        elif isinstance(fault, StuckAtFault):
            stuck = fault
        else:
            continue  # Path-delay faults: out of the prover's scope.

        if line_value is not None:
            if transition is not None:
                proofs.append(
                    UntestableProof(
                        fault=fault,
                        reason="constant-line",
                        detail=(
                            f"line {model.nodes[line].net!r} is constant "
                            f"{line_value.value} under the pin constraints; "
                            "it can never transition"
                        ),
                    )
                )
                continue
            assert stuck is not None
            if line_value is stuck.stuck_value:
                proofs.append(
                    UntestableProof(
                        fault=fault,
                        reason="constant-line",
                        detail=(
                            f"line {model.nodes[line].net!r} is constant "
                            f"{line_value.value} under the pin constraints; "
                            f"stuck-at-{stuck.value} can never be excited"
                        ),
                    )
                )
                continue
        if not (gate_open and observing[site.node]):
            where = (
                f"{node.net!r}"
                if site.pin is None
                else f"pin {site.pin} of {node.instance or node.net!r}"
            )
            blocked = "the faulted gate itself" if not gate_open else (
                "every path to a strobed output or flop D input"
            )
            proofs.append(
                UntestableProof(
                    fault=fault,
                    reason="unobservable",
                    detail=(
                        f"effect at {where} is blocked at {blocked} by "
                        "constant side inputs"
                    ),
                )
            )
    return UntestabilityReport(
        design=model.name,
        total_faults=len(faults),
        proofs=tuple(proofs),
        seconds=time.perf_counter() - start,
    )


def prune_fault_list(
    fault_list: FaultList,
    model: CircuitModel,
    *,
    setup: "TestSetup | None" = None,
    constraints: Mapping[str, Logic] | None = None,
) -> UntestabilityReport:
    """Mark every provably-untestable fault UNTESTABLE in ``fault_list``.

    Pruned records carry group ``proven-<reason>`` so coverage histograms
    show why each fault left the denominator.  Returns the prover report.
    """
    report = prove_untestable(
        model, list(fault_list.faults), setup=setup, constraints=constraints
    )
    for proof in report.proofs:
        fault_list.set_status(proof.fault, FaultStatus.UNTESTABLE)
        fault_list.set_group(proof.fault, proof.group)
    return report


def cross_check_with_classifier(
    report: UntestabilityReport, classifier: Any
) -> dict[str, int]:
    """Histogram of :class:`~repro.faults.classify.FaultClassifier` groups
    over the proven faults — the agreement view between the static prover
    and the structural fault classifier."""
    histogram: Counter[str] = Counter()
    for proof in report.proofs:
        histogram[str(classifier.classify_fault(proof.fault))] += 1
    return dict(histogram)


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------
@rule(
    "x-source",
    severity=Severity.INFO,
    category="testability",
    description="X generators (non-scan flops, latches, RAMs) reaching observation",
    requires=("model",),
)
def check_x_sources(context: AnalysisContext) -> Iterable[Finding]:
    model = context.model
    assert model is not None
    sources = x_sources(model)
    if not sources:
        return
    observation = set(model.observation_nodes())
    const = constant_values(
        model,
        context.setup.effective_pin_constraints()
        if context.setup is not None
        else None,
    )
    observing = observing_nodes(model, const, observation)
    reaching = sorted(
        (model.nodes[index].net, kind)
        for index, kind in sources.items()
        if observing[index]
    )
    if not reaching:
        return
    by_kind = Counter(kind for _, kind in reaching)
    yield Finding(
        rule="x-source",
        severity=Severity.INFO,
        message=(
            f"{len(reaching)} of {len(sources)} X source(s) reach "
            "observation points and will blank captured responses "
            f"({', '.join(f'{kind}: {count}' for kind, count in sorted(by_kind.items()))})"
        ),
        subject=model.name,
        data={
            "reaching": [net for net, _ in reaching[:10]],
            "num_reaching": len(reaching),
            "num_sources": len(sources),
        },
    )


@rule(
    "scoap-hotspot",
    severity=Severity.INFO,
    category="testability",
    description="Nodes with the worst finite SCOAP controllability/observability",
    requires=("model",),
)
def check_scoap_hotspots(context: AnalysisContext) -> Iterable[Finding]:
    model = context.model
    assert model is not None
    fixed: dict[int, Logic] = {}
    if context.setup is not None:
        for net, value in context.setup.effective_pin_constraints().items():
            index = model.node_of_net.get(net)
            if index is not None:
                fixed[index] = value
    measures = compute_testability(model, fixed=fixed or None)
    hotspots: list[tuple[int, int, dict[str, int]]] = []
    for index in range(model.num_nodes):
        costs = {
            "cc0": measures.cc0[index],
            "cc1": measures.cc1[index],
            "observability": measures.observability[index],
        }
        finite = [c for c in costs.values() if c < INFINITE_COST]
        if not finite:
            continue  # Fully unreachable: the prover's territory, not a hotspot.
        worst = max(finite)
        if worst >= context.hotspot_threshold:
            hotspots.append((worst, index, costs))
    hotspots.sort(key=lambda item: (-item[0], item[1]))
    for worst, index, costs in hotspots[: context.hotspot_limit]:
        yield Finding(
            rule="scoap-hotspot",
            severity=Severity.INFO,
            message=(
                f"hard-to-test node (worst finite SCOAP cost {worst} >= "
                f"{context.hotspot_threshold}): deterministic patterns here "
                "will dominate ATPG effort"
            ),
            subject=model.nodes[index].net,
            data=dict(costs),
        )


@rule(
    "untestable-faults",
    severity=Severity.INFO,
    category="testability",
    description="Statically provable untestable stuck-at faults (prune set)",
    requires=("model",),
)
def check_untestable_faults(context: AnalysisContext) -> Iterable[Finding]:
    model = context.model
    assert model is not None
    report = prove_untestable(model, setup=context.setup)
    if not report.proofs:
        return
    reasons = report.by_reason()
    yield Finding(
        rule="untestable-faults",
        severity=Severity.INFO,
        message=(
            f"{report.num_untestable} of {report.total_faults} stuck-at "
            "fault(s) are provably untestable under the configured "
            "constraints "
            f"({', '.join(f'{k}: {v}' for k, v in sorted(reasons.items()))}); "
            "enable AtpgOptions.prune_untestable to skip them"
        ),
        subject=model.name,
        data=report.as_dict(),
    )
