"""Front-door lint entry points: netlist, prepared design, plan.

These wrap :func:`repro.analyze.rules.run_rules` with the right context and
category selection; the API layer (``TestSession.lint``, the design
pipeline's lint stage, the campaign pre-flight gate) calls through here.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.analyze.report import LintReport, Waiver
from repro.analyze.rules import AnalysisContext, run_rules
from repro.netlist.netlist import Netlist

#: Categories that apply to a design (everything except plan linting).
DESIGN_CATEGORIES: tuple[str, ...] = (
    "netlist",
    "scan",
    "clocking",
    "edt",
    "testability",
)


def lint_netlist(
    netlist: Netlist,
    *,
    allow_floating_inputs: bool = False,
    waivers: Sequence[Waiver] = (),
) -> LintReport:
    """Run the netlist-structure rules over one editable netlist."""
    context = AnalysisContext.for_netlist(
        netlist, allow_floating_inputs=allow_floating_inputs
    )
    return run_rules(context, categories=("netlist",), waivers=waivers)


def lint_design(
    prepared: Any,
    setup: Any | None = None,
    *,
    waivers: Sequence[Waiver] = (),
    categories: Sequence[str] | None = None,
) -> LintReport:
    """Full static analysis of a prepared design.

    Args:
        prepared: A :class:`~repro.core.flow.PreparedDesign` (or anything
            exposing ``netlist``/``model``/``scan``/``domain_map``/``edt``).
        setup: Optional :class:`~repro.atpg.config.TestSetup`; without it
            the setup-dependent rules (CDC coverage, constraint-aware
            testability) run unconstrained or are skipped.
        waivers: Per-design exemptions.
        categories: Restrict to these rule categories (default: every
            design category).

    Returns:
        One merged :class:`LintReport` for the design.
    """
    context = AnalysisContext.for_prepared(prepared, setup=setup)
    return run_rules(
        context,
        categories=tuple(categories) if categories is not None else DESIGN_CATEGORIES,
        waivers=waivers,
    )


def lint_plan(plan: Any, *, waivers: Sequence[Waiver] = ()) -> LintReport:
    """Lint a runtime :class:`~repro.runtime.plan.Plan` or a plan-shaped
    mapping (``Plan.to_dict`` form)."""
    context = AnalysisContext.for_plan(plan)
    return run_rules(context, categories=("plan",), waivers=waivers)
