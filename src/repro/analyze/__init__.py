"""repro.analyze — static testability and design-rule analysis.

The static analysis plane of the reproduction: a rule registry (DFT DRC +
testability lint) that runs entirely without simulation, plus a sound
untestability prover whose prune set lets ATPG skip provably-dead faults
with bit-identical coverage accounting across every simulation backend.

Entry points:

* :func:`lint_netlist` / :func:`lint_design` / :func:`lint_plan` — run the
  applicable rules and return a :class:`LintReport`;
* :func:`prove_untestable` / :func:`prune_fault_list` — the untestability
  prover and its :class:`~repro.faults.fault_list.FaultList` integration
  (also reachable as ``AtpgOptions(prune_untestable=True)``);
* :func:`rule_catalogue` — every registered rule with id, severity and
  category (the README's rule table is generated from this).
"""

from repro.analyze.report import (
    Finding,
    LintError,
    LintReport,
    Severity,
    Waiver,
    apply_waivers,
)
from repro.analyze.rules import (
    CATEGORIES,
    RULES,
    AnalysisContext,
    Rule,
    RuleNotFound,
    all_rules,
    get_rule,
    register_rule,
    rule,
    rule_catalogue,
    run_rules,
)
from repro.analyze.structural import (
    DomainCrossing,
    combinational_sccs,
    constant_values,
    extract_domain_crossings,
    observing_nodes,
    pin_unblocked,
    trace_shift_source,
    x_sources,
)

# Rule modules register themselves on import; order fixes registry order.
from repro.analyze import netlist_rules as _netlist_rules  # noqa: F401
from repro.analyze import scan_rules as _scan_rules  # noqa: F401
from repro.analyze import clocking_rules as _clocking_rules  # noqa: F401
from repro.analyze import edt_rules as _edt_rules  # noqa: F401
from repro.analyze import testability as _testability  # noqa: F401
from repro.analyze import plan_rules as _plan_rules  # noqa: F401

from repro.analyze.engine import (
    DESIGN_CATEGORIES,
    lint_design,
    lint_netlist,
    lint_plan,
)
from repro.analyze.testability import (
    UntestabilityReport,
    UntestableProof,
    cross_check_with_classifier,
    prove_untestable,
    prune_fault_list,
)

__all__ = [
    "AnalysisContext",
    "CATEGORIES",
    "DESIGN_CATEGORIES",
    "DomainCrossing",
    "Finding",
    "LintError",
    "LintReport",
    "Rule",
    "RuleNotFound",
    "RULES",
    "Severity",
    "UntestabilityReport",
    "UntestableProof",
    "Waiver",
    "all_rules",
    "apply_waivers",
    "combinational_sccs",
    "constant_values",
    "cross_check_with_classifier",
    "extract_domain_crossings",
    "get_rule",
    "lint_design",
    "lint_netlist",
    "lint_plan",
    "observing_nodes",
    "pin_unblocked",
    "prove_untestable",
    "prune_fault_list",
    "register_rule",
    "rule",
    "rule_catalogue",
    "run_rules",
    "trace_shift_source",
    "x_sources",
]
