"""End-to-end delay-test flow: design preparation, CPF instrumentation, ATPG.

This is the top of the library — the pieces a user calls to go from a
netlist to Table 1 style results:

* :func:`prepare_design` builds (or accepts) the device under test, inserts
  scan, computes the flattened circuit model and the clock-domain map — the
  *ATPG view* shared by every experiment.  It is a thin shim over the staged
  design pipeline of :mod:`repro.api.design` (``build -> scan -> clocking ->
  model``), which is also where named design specs ("table1-soc",
  "wide-edt", ...) are registered and built;
* :func:`instrument_soc` produces the physical top level of Figure 1: the
  same netlist with one CPF per functional clock domain stitched between the
  PLL outputs and the domain clock trees (used for structural reporting and
  for the gate-level clocking demonstrations, not for fault counting);
* :class:`DelayTestFlow` bundles a prepared design with the experiment
  runner and report formatting used by the examples and benchmarks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.atpg.config import AtpgOptions
from repro.atpg.generator import AtpgResult
from repro.circuits.soc import SocDesign
from repro.clocking.cpf import InsertedCpf, insert_cpf
from repro.clocking.domains import ClockDomainMap
from repro.clocking.occ import OccController
from repro.dft.edt import EdtArchitecture
from repro.dft.scan import ScanArchitecture
from repro.netlist.netlist import Netlist
from repro.simulation.model import CircuitModel

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.api.design import DesignSpec


@dataclass
class PreparedDesign:
    """The ATPG view of the device under test."""

    soc: SocDesign
    netlist: Netlist
    scan: ScanArchitecture
    model: CircuitModel
    domain_map: ClockDomainMap
    occ: OccController
    scan_enable_net: str = "scan_en"
    scan_clock_net: str = "scan_clk"
    test_mode_net: str = "test_mode"
    #: The design's default EDT architecture (from ``DesignSpec.edt``); used
    #: by the compression stage for scenarios without an explicit channel
    #: count.  None for designs without a declared compression contract.
    edt: EdtArchitecture | None = None
    #: The declarative spec this design was built from (None for ad-hoc or
    #: externally constructed designs) — campaigns key their cache on it.
    spec: "DesignSpec | None" = None
    #: Per-stage wall time of the design pipeline that built this view.
    build_seconds: dict = field(default_factory=dict, repr=False, compare=False)
    # instrument_soc memoisation, keyed by the ``enhanced`` flag.
    _instrument_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def functional_domain_names(self) -> list[str]:
        return [d.name for d in self.soc.functional_domains]

    @property
    def all_domain_names(self) -> list[str]:
        return [d.name for d in self.soc.domains]

    def clock_net_of(self, domain: str) -> str:
        return self.domain_map.clock_net_of(domain)

    def __getstate__(self) -> dict:
        """Pickle without the instrument memo.

        The cache holds whole instrumented netlist copies; shipping it to
        process-backend campaign/scenario workers would multiply the payload
        for state any worker can (and should) rebuild lazily.
        """
        state = dict(self.__dict__)
        state["_instrument_cache"] = {}
        return state


def prepare_design(
    size: int = 2,
    seed: int = 2005,
    num_chains: int = 6,
    soc: SocDesign | None = None,
) -> PreparedDesign:
    """Build the synthetic SOC (or take a given one) and insert scan.

    Args:
        size: SOC size factor (ignored when ``soc`` is given).
        seed: SOC generator seed (ignored when ``soc`` is given).
        num_chains: Number of balanced scan chains to stitch.
        soc: Optionally, an externally constructed SOC design.

    Returns:
        The prepared design: scan-inserted netlist, circuit model, domain map
        and OCC controller model.
    """
    # Thin shim over the staged design pipeline (build -> scan -> clocking ->
    # model); the spec is the ad-hoc equivalent of the given knobs, ignored
    # for the geometry when a caller-built SOC is passed in.
    from repro.api.design import DesignSpec, prepare_from_spec

    spec = DesignSpec(name="adhoc", size=size, seed=seed, num_chains=num_chains)
    return prepare_from_spec(spec, soc=soc)


def instrument_soc(
    prepared: PreparedDesign,
    enhanced: bool = False,
    refresh: bool = False,
) -> tuple[Netlist, list[InsertedCpf]]:
    """Produce the Figure 1 top level: the SOC with one CPF per domain.

    The returned netlist is a copy of the prepared (scan-inserted) netlist
    with the functional clock domains re-clocked from CPF outputs; the raw
    PLL clocks, the external scan clock, scan enable and test mode become the
    block's clock-control interface.

    The result is memoised on the prepared design (per ``enhanced`` flavour),
    so repeated structural reports are free; callers that intend to mutate
    the returned netlist should ``copy()`` it first.

    Args:
        prepared: The prepared design.
        enhanced: Insert enhanced (programmable) CPFs instead of the simple
            two-pulse blocks.
        refresh: Rebuild (and recache) even when a memoised result exists —
            for callers that need a private netlist to mutate, or that are
            timing the real insertion work.

    Returns:
        ``(instrumented netlist, inserted CPF records)``.
    """
    cached = None if refresh else prepared._instrument_cache.get(bool(enhanced))
    if cached is not None:
        return cached
    top = prepared.netlist.copy(name=f"{prepared.netlist.name}_with_cpf")
    if prepared.scan_clock_net not in top.inputs:
        top.add_input(prepared.scan_clock_net)
    top.declare_clock(prepared.scan_clock_net)
    if prepared.test_mode_net not in top.inputs:
        top.add_input(prepared.test_mode_net)
    inserted: list[InsertedCpf] = []
    for domain in prepared.soc.functional_domains:
        record = insert_cpf(
            top,
            domain_name=domain.name,
            pll_clk_net=domain.clock_net,
            scan_clk_net=prepared.scan_clock_net,
            scan_en_net=prepared.scan_enable_net,
            test_mode_net=prepared.test_mode_net,
            enhanced=enhanced,
        )
        inserted.append(record)
    result = (top, inserted)
    prepared._instrument_cache[bool(enhanced)] = result
    return result


class DelayTestFlow:
    """Convenience wrapper tying design preparation to the experiment runner.

    .. deprecated::
        Thin shim kept for backwards compatibility; new code should use
        :class:`repro.api.session.TestSession` with the registered
        ``table1-*`` scenarios, which this class delegates to.
    """

    def __init__(
        self,
        size: int = 2,
        seed: int = 2005,
        num_chains: int = 6,
        options: AtpgOptions | None = None,
        soc: SocDesign | None = None,
    ) -> None:
        warnings.warn(
            "DelayTestFlow is deprecated; use repro.api.TestSession with the "
            "registered 'table1-*' scenarios (or repro.api.Campaign for "
            "design x scenario sweeps) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.session import TestSession

        self._session = TestSession(
            size=size, seed=seed, num_chains=num_chains, options=options, soc=soc
        )
        self.prepared = self._session.prepared
        self.options = self._session.options
        self.results: dict[str, AtpgResult] = {}

    def run_experiment(self, key: str) -> AtpgResult:
        """Run one of the paper's experiments ("a".."e") and cache its result."""
        from repro.api.scenarios import table1_scenario

        key = key.lower()
        spec = table1_scenario(key)
        self._session.run_scenario(spec)
        result = self._session.result_of(spec.name)
        self.results[key] = result
        return result

    def run_all(self, keys: Sequence[str] = ("a", "b", "c", "d", "e")) -> dict[str, AtpgResult]:
        """Run (or reuse cached) experiments; returns only the requested keys."""
        for key in keys:
            if key.lower() not in self.results:
                self.run_experiment(key)
        return {key: self.results[key.lower()] for key in keys}

    def table1(self) -> str:
        """Format the cached results as the Table 1 reproduction."""
        from repro.core.results import format_table1

        return format_table1(self.results)
