"""Ablation studies for the design choices the paper discusses.

Beyond the Table 1 experiments, the paper's text motivates several design
decisions whose impact is worth quantifying on the reproduction:

* how many programmable pulses the enhanced CPF should offer (2/3/4);
* whether inter-domain launch/capture procedures are worth the extra CPF
  sequencing logic;
* how much EDT compression is needed to keep the inflated transition pattern
  sets within tester vector memory;
* how much of the pattern count is saved by dynamic compaction.

Each ablation returns plain dictionaries so benchmarks and notebooks can
tabulate them directly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.atpg.config import AtpgOptions, TestSetup
from repro.atpg.generator import AtpgResult
from repro.atpg.transition import TransitionAtpg
from repro.clocking.named_capture import enhanced_cpf_procedures
from repro.core.flow import PreparedDesign
from repro.dft.edt import EdtArchitecture
from repro.patterns.ate import vector_memory_report
from repro.patterns.pattern import PatternSet
from repro.simulation.logic import Logic


def _base_onchip_setup(
    prepared: PreparedDesign,
    procedures,
    name: str,
    options: AtpgOptions,
) -> TestSetup:
    return TestSetup(
        name=name,
        procedures=procedures,
        observe_pos=False,
        hold_pis=True,
        pin_constraints={prepared.soc.reset_net: Logic.ZERO},
        scan_enable_net=prepared.scan_enable_net,
        constrain_scan_enable=True,
        options=options,
    )


def pulse_count_ablation(
    prepared: PreparedDesign,
    options: AtpgOptions | None = None,
    pulse_counts: Sequence[int] = (2, 3, 4),
) -> dict[int, AtpgResult]:
    """Coverage/pattern count as a function of the CPF's maximum pulse count.

    Inter-domain procedures are excluded so the sweep isolates the value of
    extra initialization pulses for non-scan cells.
    """
    options = options or AtpgOptions()
    results: dict[int, AtpgResult] = {}
    for count in pulse_counts:
        procedures = enhanced_cpf_procedures(
            prepared.functional_domain_names,
            max_pulses=count,
            inter_domain=False,
            name_prefix=f"abl{count}",
        )
        setup = _base_onchip_setup(
            prepared, procedures, f"ablation: {count}-pulse CPF", options
        )
        results[count] = TransitionAtpg(prepared.model, prepared.domain_map, setup).run()
    return results


def inter_domain_ablation(
    prepared: PreparedDesign,
    options: AtpgOptions | None = None,
) -> dict[str, AtpgResult]:
    """Enhanced CPF with and without inter-domain launch/capture procedures."""
    options = options or AtpgOptions()
    results: dict[str, AtpgResult] = {}
    for label, inter in (("without_inter_domain", False), ("with_inter_domain", True)):
        procedures = enhanced_cpf_procedures(
            prepared.functional_domain_names,
            max_pulses=4,
            inter_domain=inter,
            name_prefix=f"xid_{int(inter)}",
        )
        setup = _base_onchip_setup(
            prepared, procedures, f"ablation: enhanced CPF {label}", options
        )
        results[label] = TransitionAtpg(prepared.model, prepared.domain_map, setup).run()
    return results


def edt_ablation(
    prepared: PreparedDesign,
    patterns: PatternSet,
    channel_counts: Sequence[int] = (1, 2, 4),
    memory_budget_megabits: float = 0.5,
) -> list[dict[str, object]]:
    """Vector-memory impact of EDT compression for a given pattern set.

    For every channel count the report states the compression ratio, whether
    every pattern could be encoded through the linear decompressor, and the
    tester vector memory with and without compression.
    """
    rows: list[dict[str, object]] = []
    uncompressed = vector_memory_report(patterns, prepared.scan, prepared.occ)
    for channels in channel_counts:
        channels = max(1, min(channels, prepared.scan.num_chains))
        edt = EdtArchitecture(prepared.scan, num_input_channels=channels)
        stats = edt.statistics(patterns)
        compressed = vector_memory_report(
            patterns, prepared.scan, prepared.occ, external_channels=channels
        )
        rows.append(
            {
                "channels": channels,
                "compression_ratio": stats.compression_ratio,
                "encoded_patterns": stats.encoded_patterns,
                "encoding_conflicts": stats.encoding_conflicts,
                "vector_memory_megabits": compressed.total_megabits,
                "uncompressed_megabits": uncompressed.total_megabits,
                "fits_budget": compressed.fits_in(memory_budget_megabits),
            }
        )
    return rows


def compaction_ablation(
    prepared: PreparedDesign,
    options: AtpgOptions | None = None,
) -> dict[str, AtpgResult]:
    """Pattern count with and without dynamic compaction (simple CPF setup)."""
    from repro.api.scenarios import table1_scenario

    options = options or AtpgOptions()
    results: dict[str, AtpgResult] = {}
    for label, enabled in (("with_compaction", True), ("without_compaction", False)):
        tuned = replace(options, dynamic_compaction=enabled)
        setup = table1_scenario("c").build_setup(prepared, tuned)
        setup = TestSetup(
            name=f"ablation: {label}",
            procedures=setup.procedures,
            observe_pos=setup.observe_pos,
            hold_pis=setup.hold_pis,
            pin_constraints=setup.pin_constraints,
            scan_enable_net=setup.scan_enable_net,
            constrain_scan_enable=setup.constrain_scan_enable,
            options=tuned,
        )
        results[label] = TransitionAtpg(prepared.model, prepared.domain_map, setup).run()
    return results
