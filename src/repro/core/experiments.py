"""The paper's Section 5.1 experiments (a)–(e) as executable configurations.

Each experiment is a :class:`~repro.atpg.config.TestSetup` derived from the
prepared design:

(a) stuck-at test, single external clock, all domains clocked together;
(b) transition test, single external clock — the reference upper bound
    (outputs observable, inputs free, several pulses available);
(c) transition test with the simple two-pulse CPF per functional domain —
    exactly two pulses, one domain per scan load, outputs masked, inputs
    held, scan-enable inactive, no test-controller clocking;
(d) transition test with the enhanced CPF — two to four pulses per domain and
    inter-domain launch/capture, same tester constraints as (c);
(e) transition test with a single external clock but all the (c)/(d) tester
    constraints — the bound for "the most flexible CPF possible".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.atpg.config import AtpgOptions, TestSetup
from repro.atpg.generator import AtpgResult
from repro.atpg.stuck_at import StuckAtAtpg
from repro.atpg.transition import TransitionAtpg
from repro.clocking.named_capture import (
    enhanced_cpf_procedures,
    external_clock_procedures,
    simple_cpf_procedures,
    stuck_at_procedures,
)
from repro.core.flow import PreparedDesign
from repro.simulation.logic import Logic

EXPERIMENT_KEYS = ("a", "b", "c", "d", "e")

EXPERIMENT_DESCRIPTIONS: Mapping[str, str] = {
    "a": "Stuck-at test, single external clock",
    "b": "Transition test, single external clock (reference)",
    "c": "Transition test, simple 2-pulse CPF per domain",
    "d": "Transition test, enhanced CPF (2-4 pulses, inter-domain)",
    "e": "Transition test, external clock with ATE constraints/masking",
}


def experiment_setup(
    key: str, prepared: PreparedDesign, options: AtpgOptions | None = None
) -> TestSetup:
    """Build the :class:`TestSetup` for one experiment key ("a".."e")."""
    key = key.lower()
    options = options or AtpgOptions()
    functional = prepared.functional_domain_names
    all_domains = prepared.all_domain_names
    base_constraints = {prepared.soc.reset_net: Logic.ZERO}
    scan_enable = prepared.scan_enable_net

    if key == "a":
        return TestSetup(
            name="(a) " + EXPERIMENT_DESCRIPTIONS["a"],
            procedures=stuck_at_procedures(all_domains, max_pulses=2),
            observe_pos=True,
            hold_pis=False,
            pin_constraints=dict(base_constraints),
            scan_enable_net=scan_enable,
            constrain_scan_enable=False,
            options=options,
        )
    if key == "b":
        return TestSetup(
            name="(b) " + EXPERIMENT_DESCRIPTIONS["b"],
            procedures=external_clock_procedures(all_domains, max_pulses=4),
            observe_pos=True,
            hold_pis=False,
            pin_constraints=dict(base_constraints),
            scan_enable_net=scan_enable,
            constrain_scan_enable=False,
            options=options,
        )
    if key == "c":
        return TestSetup(
            name="(c) " + EXPERIMENT_DESCRIPTIONS["c"],
            procedures=simple_cpf_procedures(functional),
            observe_pos=False,
            hold_pis=True,
            pin_constraints=dict(base_constraints),
            scan_enable_net=scan_enable,
            constrain_scan_enable=True,
            options=options,
        )
    if key == "d":
        return TestSetup(
            name="(d) " + EXPERIMENT_DESCRIPTIONS["d"],
            procedures=enhanced_cpf_procedures(functional, max_pulses=4, inter_domain=True),
            observe_pos=False,
            hold_pis=True,
            pin_constraints=dict(base_constraints),
            scan_enable_net=scan_enable,
            constrain_scan_enable=True,
            options=options,
        )
    if key == "e":
        return TestSetup(
            name="(e) " + EXPERIMENT_DESCRIPTIONS["e"],
            procedures=external_clock_procedures(functional, max_pulses=4, name_prefix="extc"),
            observe_pos=False,
            hold_pis=True,
            pin_constraints=dict(base_constraints),
            scan_enable_net=scan_enable,
            constrain_scan_enable=True,
            options=options,
        )
    raise KeyError(f"unknown experiment {key!r} (expected one of {EXPERIMENT_KEYS})")


def run_experiment(
    key: str, prepared: PreparedDesign, options: AtpgOptions | None = None
) -> AtpgResult:
    """Run one experiment end to end and return its ATPG result."""
    setup = experiment_setup(key, prepared, options)
    if key.lower() == "a":
        generator = StuckAtAtpg(prepared.model, prepared.domain_map, setup)
    else:
        generator = TransitionAtpg(prepared.model, prepared.domain_map, setup)
    return generator.run()


def run_all_experiments(
    prepared: PreparedDesign,
    options: AtpgOptions | None = None,
    keys: tuple[str, ...] = EXPERIMENT_KEYS,
) -> dict[str, AtpgResult]:
    """Run every requested experiment; returns results keyed by experiment letter."""
    return {key: run_experiment(key, prepared, options) for key in keys}
