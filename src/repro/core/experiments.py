"""The paper's Section 5.1 experiments (a)–(e) as executable configurations.

.. deprecated::
    This module is a thin compatibility shim.  The experiment definitions now
    live in the scenario registry (:mod:`repro.api.scenarios`, names
    ``table1-a`` .. ``table1-e``) and execute through
    :class:`repro.api.session.TestSession`; the functions here delegate to
    that API so existing call sites keep working.

The five configurations, for reference:

(a) stuck-at test, single external clock, all domains clocked together;
(b) transition test, single external clock — the reference upper bound
    (outputs observable, inputs free, several pulses available);
(c) transition test with the simple two-pulse CPF per functional domain —
    exactly two pulses, one domain per scan load, outputs masked, inputs
    held, scan-enable inactive, no test-controller clocking;
(d) transition test with the enhanced CPF — two to four pulses per domain and
    inter-domain launch/capture, same tester constraints as (c);
(e) transition test with a single external clock but all the (c)/(d) tester
    constraints — the bound for "the most flexible CPF possible".
"""

from __future__ import annotations

import warnings
from typing import Mapping

from repro.api.scenarios import TABLE1_DESCRIPTIONS, TABLE1_KEYS, table1_scenario
from repro.atpg.config import AtpgOptions, TestSetup
from repro.atpg.generator import AtpgResult
from repro.core.flow import PreparedDesign

EXPERIMENT_KEYS: tuple[str, ...] = TABLE1_KEYS

EXPERIMENT_DESCRIPTIONS: Mapping[str, str] = TABLE1_DESCRIPTIONS


def experiment_setup(
    key: str, prepared: PreparedDesign, options: AtpgOptions | None = None
) -> TestSetup:
    """Build the :class:`TestSetup` for one experiment key ("a".."e").

    .. deprecated:: delegate of ``repro.api`` — use
        ``get_scenario(f"table1-{key}").build_setup(prepared, options)``.
    """
    # stacklevel=2 points the warning at the caller's own line, not here.
    warnings.warn(
        "repro.core.experiments.experiment_setup is deprecated; use "
        'repro.api.get_scenario(f"table1-{key}").build_setup(prepared, options) '
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return table1_scenario(key).build_setup(prepared, options)


def run_experiment(
    key: str, prepared: PreparedDesign, options: AtpgOptions | None = None
) -> AtpgResult:
    """Run one experiment end to end and return its ATPG result.

    .. deprecated:: delegate of ``repro.api`` — use a
        :class:`~repro.api.session.TestSession` instead.
    """
    warnings.warn(
        "repro.core.experiments.run_experiment is deprecated; use "
        "repro.api.TestSession (or repro.api.Campaign for design sweeps) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.session import TestSession

    spec = table1_scenario(key)
    session = TestSession.from_prepared(prepared, options=options)
    session.run_scenario(spec)
    return session.result_of(spec.name)


def run_all_experiments(
    prepared: PreparedDesign,
    options: AtpgOptions | None = None,
    keys: tuple[str, ...] = EXPERIMENT_KEYS,
) -> dict[str, AtpgResult]:
    """Run every requested experiment; returns results keyed by experiment letter.

    .. deprecated:: delegate of ``repro.api`` — routed through a one-design
        :class:`~repro.api.campaign.Campaign` over the given prepared design.
    """
    warnings.warn(
        "repro.core.experiments.run_all_experiments is deprecated; use "
        "repro.api.Campaign(designs=[...], scenarios=[...]) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.campaign import Campaign

    campaign = Campaign(designs=[prepared], scenarios=list(keys), options=options)
    campaign.run()
    design_name = campaign.design_names[0]
    return {key: campaign.result_of(design_name, key) for key in keys}
