"""Result reporting: Table 1 reproduction and comparison against the paper.

The paper's Table 1 lists test coverage and pattern count per experiment; the
surrounding text states the qualitative relations (who wins, by roughly what
factor).  Because our device is a synthetic surrogate, the reproduction
targets those *relations*; this module formats the measured table and
evaluates each published claim against the measured numbers so that
EXPERIMENTS.md (and the benchmark output) can report paper-vs-measured side
by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.atpg.generator import AtpgResult
from repro.core.experiments import EXPERIMENT_DESCRIPTIONS
from repro.patterns.statistics import format_table, table_rows


@dataclass(frozen=True)
class ClaimCheck:
    """One qualitative claim from the paper evaluated on measured results."""

    claim: str
    paper: str
    measured: str
    holds: bool

    def formatted(self) -> str:
        status = "OK " if self.holds else "MISS"
        return f"[{status}] {self.claim}\n       paper: {self.paper}\n       measured: {self.measured}"


def format_table1(results: Mapping[str, AtpgResult]) -> str:
    """Render the measured Table 1 reproduction as text."""
    rows = table_rows(results, EXPERIMENT_DESCRIPTIONS)
    return format_table(rows)


def compare_with_paper(results: Mapping[str, AtpgResult]) -> list[ClaimCheck]:
    """Evaluate the paper's Section 5.2 claims on measured results.

    Requires all five experiments ("a".."e") to be present.
    """
    required = {"a", "b", "c", "d", "e"}
    missing = required - set(results)
    if missing:
        raise KeyError(f"missing experiments for comparison: {sorted(missing)}")
    a, b, c, d, e = (results[k] for k in ("a", "b", "c", "d", "e"))
    checks: list[ClaimCheck] = []

    gap_ab = a.coverage.test_coverage - b.coverage.test_coverage
    checks.append(
        ClaimCheck(
            claim="Transition coverage is below stuck-at coverage even without "
            "multiple domains / on-chip clocking",
            paper="coverage gap (a)-(b) = 3.7%",
            measured=f"gap = {gap_ab:.2f}% (stuck-at {a.coverage.test_coverage:.2f}%, "
            f"transition {b.coverage.test_coverage:.2f}%)",
            holds=gap_ab > 0,
        )
    )

    factor_b = b.pattern_count / a.pattern_count if a.pattern_count else float("inf")
    checks.append(
        ClaimCheck(
            claim="Transition pattern count is several times the stuck-at count",
            paper="(b) is nearly five times (a)",
            measured=f"(b)/(a) = {factor_b:.2f} ({b.pattern_count} vs {a.pattern_count})",
            holds=factor_b > 1.5,
        )
    )

    drop_c = b.coverage.test_coverage - c.coverage.test_coverage
    checks.append(
        ClaimCheck(
            claim="Simple two-pulse on-chip clock generation reduces transition coverage",
            paper="more than 7% below the reference (b)",
            measured=f"(b)-(c) = {drop_c:.2f}%",
            holds=drop_c > 0,
        )
    )

    gain_d = d.coverage.test_coverage - c.coverage.test_coverage
    checks.append(
        ClaimCheck(
            claim="The enhanced CPF (more pulses + inter-domain test) recovers coverage",
            paper="(d) is 0.6% above (c)",
            measured=f"(d)-(c) = {gain_d:.2f}%",
            holds=gain_d >= 0,
        )
    )

    drop_e = b.coverage.test_coverage - e.coverage.test_coverage
    checks.append(
        ClaimCheck(
            claim="Even the most flexible on-chip clocking stays below the "
            "unconstrained reference (ATE constraints cost coverage)",
            paper="(e) is 6.6% below (b)",
            measured=f"(b)-(e) = {drop_e:.2f}%",
            # (e) should sit at or above (d) (it bounds "the most flexible CPF");
            # allow a small tolerance since abort noise can swap near-equal runs.
            holds=drop_e > 0
            and e.coverage.test_coverage >= d.coverage.test_coverage - 2.0,
        )
    )

    factor_c = c.pattern_count / b.pattern_count if b.pattern_count else float("inf")
    checks.append(
        ClaimCheck(
            claim="On-chip clock generation increases the pattern count over the reference",
            paper="(c)/(d) are more than a factor of two above (b)",
            measured=f"(c)/(b) = {factor_c:.2f} ({c.pattern_count} vs {b.pattern_count})",
            holds=factor_c > 1.0,
        )
    )

    ratio_e = e.pattern_count / d.pattern_count if d.pattern_count else float("inf")
    checks.append(
        ClaimCheck(
            claim="A more flexible clocking scheme reduces the pattern count",
            paper="(e) is more than 15% below (d)",
            measured=f"(e)/(d) = {ratio_e:.2f} ({e.pattern_count} vs {d.pattern_count})",
            holds=ratio_e < 1.0,
        )
    )
    return checks


def format_comparison(results: Mapping[str, AtpgResult]) -> str:
    """Paper-vs-measured report used by EXPERIMENTS.md and the benchmarks."""
    checks = compare_with_paper(results)
    lines = ["Paper claims versus measured results", "=" * 48]
    lines.extend(check.formatted() for check in checks)
    passed = sum(1 for check in checks if check.holds)
    lines.append("-" * 48)
    lines.append(f"{passed}/{len(checks)} qualitative claims reproduced")
    return "\n".join(lines)


def results_as_records(results: Mapping[str, AtpgResult]) -> list[dict[str, object]]:
    """Machine-readable per-experiment records (used to regenerate EXPERIMENTS.md)."""
    records = []
    for key in sorted(results):
        result = results[key]
        record = result.summary()
        record["description"] = EXPERIMENT_DESCRIPTIONS.get(key, "")
        record["statistics"] = result.stats.as_dict()
        records.append(record)
    return records
