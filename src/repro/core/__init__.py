"""Experiment flow: design preparation, Table 1 experiments, reporting, ablations."""

from repro.core.ablation import (
    compaction_ablation,
    edt_ablation,
    inter_domain_ablation,
    pulse_count_ablation,
)
from repro.core.experiments import (
    EXPERIMENT_DESCRIPTIONS,
    EXPERIMENT_KEYS,
    experiment_setup,
    run_all_experiments,
    run_experiment,
)
from repro.core.flow import DelayTestFlow, PreparedDesign, instrument_soc, prepare_design
from repro.core.results import (
    ClaimCheck,
    compare_with_paper,
    format_comparison,
    format_table1,
    results_as_records,
)

__all__ = [
    "ClaimCheck",
    "DelayTestFlow",
    "EXPERIMENT_DESCRIPTIONS",
    "EXPERIMENT_KEYS",
    "PreparedDesign",
    "compaction_ablation",
    "compare_with_paper",
    "edt_ablation",
    "experiment_setup",
    "format_comparison",
    "format_table1",
    "instrument_soc",
    "inter_domain_ablation",
    "prepare_design",
    "pulse_count_ablation",
    "results_as_records",
    "run_all_experiments",
    "run_experiment",
]
