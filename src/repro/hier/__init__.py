"""Hierarchical design scaling: shared per-core kernels and streaming stores.

This package lets the engine reach 10⁵-gate SoCs on the same bit-identical
arithmetic as the flat reference path:

* :mod:`repro.hier.compile` — :class:`HierCompiledCircuit`, a kernel layer
  over :class:`repro.engine.compile.CompiledCircuit` that compiles one
  kernel per *unique core kind* and binds every instance to it, making
  compile time and kernel memory sublinear in instance count;
* :mod:`repro.hier.designs` — the ``hier-soc-1k/10k/100k`` registry
  families (explicit :func:`register_hier_designs`, never auto-registered);
* :class:`repro.patterns.store.PatternStore` (re-exported here) — the
  disk-spilling pattern store that keeps memory bounded at volume.

Importing this package has no side effects — in particular it does NOT
register the scaling families.
"""

from repro.hier.compile import (
    HierCompiledCircuit,
    shared_template_count,
)
from repro.hier.designs import (
    HIER_DESIGNS,
    HIER_SOC_1K,
    HIER_SOC_10K,
    HIER_SOC_100K,
    register_hier_designs,
)
from repro.patterns.store import PatternStore

__all__ = [
    "HierCompiledCircuit",
    "shared_template_count",
    "HIER_DESIGNS",
    "HIER_SOC_1K",
    "HIER_SOC_10K",
    "HIER_SOC_100K",
    "register_hier_designs",
    "PatternStore",
]
