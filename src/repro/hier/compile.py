"""Hierarchical kernel compiler: one compiled core, many instances.

:func:`repro.engine.compile.compile_circuit` lowers a flat
:class:`~repro.simulation.model.CircuitModel` into per-gate closures — a
tape op, a plane evaluator and (lazily) a fanout cone per gate.  On a
hierarchical SoC that is wasteful: a 10⁵-gate design built from a few
hundred stamped-out copies of three unique cores pays the full closure
construction cost per *copy* even though the copies are structurally
identical.

:class:`HierCompiledCircuit` compiles each unique core **once**:

* gates are grouped by instance prefix using the design's
  :class:`~repro.netlist.netlist.DesignHierarchy` metadata;
* each instance is *canonicalized* — a local topological order (Kahn over
  intra-instance edges, tie-broken by instance-local cell name) assigns
  stable local ids to member gates and, by first appearance in pin order,
  to the external nets the instance reads;
* the canonical form is fingerprinted and **verified**: only instances with
  byte-identical fingerprints share a :class:`CoreTemplate` (the shared
  kernel — evaluator closures, execution program, fault cones); an instance
  that fails verification simply compiles into its own group;
* instances whose gates feed logic outside the instance ("non-closed", e.g.
  cores a generator accidentally spliced into glue) are demoted to the
  residual flat tape, keeping correctness independent of generator hygiene.

Execution first runs the **residual tape** (constants, glue logic, demoted
instances — ordinary per-gate closures in model order), then every closed
instance's shared template program through its *binding* — a local-id →
global-node translation table.  Closedness guarantees no residual gate ever
reads a core output, so this schedule is topological.

Fault injection reuses the same trick: a fault site inside a closed
instance propagates through a **shared local cone** computed once per
(core, local site) and translated through the instance binding; all other
sites fall back to the flat reference path inherited from
:class:`~repro.engine.compile.CompiledCircuit`.  The propagation order,
event condition and detection arithmetic are the flat kernel's, applied to
the same topological dependences — the bit-identity suite
(``tests/test_hier_identity.py``) holds both paths to identical masks.

Templates are memoised process-wide by fingerprint digest, so a campaign
sweeping ``hier-soc-1k`` → ``hier-soc-100k`` compiles each unique core once
for the whole family, not once per design.
"""

from __future__ import annotations

import hashlib
import heapq
import threading
from collections import defaultdict
from typing import Sequence

from repro.engine.compile import (
    CompiledCircuit,
    PlaneEvaluator,
    _plane_evaluator,
    _tape_op,
)
from repro.faults.models import StuckAtFault
from repro.netlist.gates import GateType
from repro.netlist.netlist import DesignHierarchy
from repro.obs.telemetry import active_metrics
from repro.simulation.model import CircuitModel, NodeKind
from repro.simulation.parallel_sim import PackedPatterns


# --------------------------------------------------------------------------
# Shared kernels
# --------------------------------------------------------------------------
class CoreTemplate:
    """The compiled kernel of one unique core: shared by every instance.

    ``ops`` is the core's execution program in canonical topological order:
    ``(local_out, local_fanin, evaluator, arity)`` tuples over local ids.
    Local ids ``0..num_internal-1`` are the member gates in canonical order;
    ids ``num_internal..`` are the instance's external inputs in first-
    appearance order.  An instance binding (``trans``) maps local ids to
    global node indices; executing the program through two different
    bindings simulates two different instances with the same closures.
    """

    __slots__ = (
        "core_type",
        "fingerprint",
        "digest",
        "ops",
        "num_internal",
        "num_external",
        "_local_fanout",
        "_local_cones",
        "_lock",
    )

    def __init__(
        self,
        core_type: str,
        fingerprint: tuple,
        ops: tuple[tuple[int, tuple[int, ...], PlaneEvaluator, int], ...],
        num_internal: int,
        num_external: int,
    ) -> None:
        self.core_type = core_type
        self.fingerprint = fingerprint
        self.digest = hashlib.sha256(repr(fingerprint).encode("utf-8")).hexdigest()
        self.ops = ops
        self.num_internal = num_internal
        self.num_external = num_external
        fanout: dict[int, list[int]] = defaultdict(list)
        for position, (_, fanin, _, _) in enumerate(ops):
            for local in fanin:
                if local < num_internal:
                    fanout[local].append(position)
        self._local_fanout = dict(fanout)
        #: local site id -> tuple of op positions its effect can reach.
        self._local_cones: dict[int, tuple[int, ...]] = {}
        self._lock = threading.Lock()

    def local_cone(self, site: int) -> tuple[int, ...]:
        """Op positions reachable from a local site, in program order."""
        cached = self._local_cones.get(site)
        if cached is None:
            seen: set[int] = set()
            frontier = [site]
            while frontier:
                current = frontier.pop()
                for position in self._local_fanout.get(current, ()):
                    if position not in seen:
                        seen.add(position)
                        frontier.append(self.ops[position][0])
            cached = tuple(sorted(seen))
            with self._lock:
                self._local_cones[site] = cached
        return cached


#: Process-wide template memo: fingerprint -> CoreTemplate.  Lets every
#: design of a hierarchical family (and every campaign cell built in this
#: process) reuse one kernel per unique core.
_TEMPLATE_CACHE: dict[tuple, CoreTemplate] = {}
_TEMPLATE_LOCK = threading.Lock()


def shared_template_count() -> int:
    """Number of unique core kernels compiled in this process (bench metric)."""
    return len(_TEMPLATE_CACHE)


class _CanonicalInstance:
    """One instance's canonical form: order, local ids and fingerprint."""

    __slots__ = ("prefix", "core_type", "order", "local_of", "trans", "fingerprint")

    def __init__(
        self,
        prefix: str,
        core_type: str,
        model: CircuitModel,
        member_indices: Sequence[int],
    ) -> None:
        self.prefix = prefix
        self.core_type = core_type
        nodes = model.nodes
        sep = DesignHierarchy.SEPARATOR
        strip = len(prefix) + len(sep)
        member_set = set(member_indices)
        suffix_of = {
            idx: (nodes[idx].instance or "")[strip:] for idx in member_indices
        }
        # Local Kahn over intra-instance edges, tie-broken by cell suffix:
        # the order is a function of the instance's *local* structure only,
        # so isomorphic instances canonicalize identically no matter how the
        # global topological order interleaved them.
        indegree: dict[int, int] = {}
        dependents: dict[int, list[int]] = defaultdict(list)
        for idx in member_indices:
            count = 0
            for src in nodes[idx].fanin:
                if src in member_set:
                    count += 1
                    dependents[src].append(idx)
            indegree[idx] = count
        ready = [(suffix_of[idx], idx) for idx, deg in indegree.items() if deg == 0]
        heapq.heapify(ready)
        order: list[int] = []
        while ready:
            _, idx = heapq.heappop(ready)
            order.append(idx)
            for dep in dependents.get(idx, ()):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    heapq.heappush(ready, (suffix_of[dep], dep))
        self.order = order
        local_of: dict[int, int] = {idx: pos for pos, idx in enumerate(order)}
        num_internal = len(order)
        externals: list[int] = []
        for idx in order:
            for src in nodes[idx].fanin:
                if src not in local_of:
                    local_of[src] = num_internal + len(externals)
                    externals.append(src)
        self.local_of = local_of
        trans = [0] * (num_internal + len(externals))
        for global_idx, local in local_of.items():
            trans[local] = global_idx
        self.trans = trans
        records = tuple(
            (
                suffix_of[idx],
                nodes[idx].gtype.value if nodes[idx].gtype else "",
                tuple(local_of[src] for src in nodes[idx].fanin),
            )
            for idx in order
        )
        self.fingerprint = (core_type, len(externals), records)


class HierCompiledCircuit(CompiledCircuit):
    """A hierarchical model lowered into one shared kernel per unique core.

    Drop-in for :class:`~repro.engine.compile.CompiledCircuit`: the fault
    paths (``propagate_stuck_at``, ``syndrome_*``, ``detect_transition``)
    and the cone API are inherited unchanged — only good-machine execution
    and in-core fault propagation run through shared templates.
    """

    def __init__(self, model: CircuitModel) -> None:
        hierarchy = model.hierarchy
        assert hierarchy is not None, "HierCompiledCircuit needs hierarchy metadata"
        self.model = model
        self.num_nodes = model.num_nodes
        self._evaluators: list[PlaneEvaluator | None] = [None] * self.num_nodes
        self._fanin: list[tuple[int, ...]] = [()] * self.num_nodes
        self._cones = {}
        self._cone_sets = {}
        self._tls = threading.local()

        nodes = model.nodes
        sep = DesignHierarchy.SEPARATOR
        # Shared plane evaluators: ~|gate types| x |arities| distinct
        # closures for the whole design instead of one per gate.
        eval_cache: dict[tuple[GateType, int], PlaneEvaluator] = {}

        def evaluator_for(gtype: GateType, arity: int) -> PlaneEvaluator:
            key = (gtype, arity)
            shared = eval_cache.get(key)
            if shared is None:
                shared = eval_cache[key] = _plane_evaluator(gtype, arity)
            return shared

        # ---- membership: gate nodes grouped by declared instance prefix.
        # Cell names are ``{instance}{sep}{local}``, so membership is a dict
        # lookup on the name's separator split points — not a scan over
        # every declared instance, which made compile quadratic at 10^5
        # gates x hundreds of instances.  Checking every split point keeps
        # instance names that themselves contain the separator working.
        declared = {prefix for prefix, _ in hierarchy.instances}
        by_prefix: dict[str, list[int]] = defaultdict(list)
        owner_of: dict[int, str] = {}
        for node in nodes:
            if node.kind is not NodeKind.GATE:
                continue
            self._fanin[node.index] = node.fanin
            assert node.gtype is not None
            self._evaluators[node.index] = evaluator_for(node.gtype, len(node.fanin))
            name = node.instance or ""
            pos = name.find(sep)
            while pos != -1:
                candidate = name[:pos]
                if candidate in declared:
                    by_prefix[candidate].append(node.index)
                    owner_of[node.index] = candidate
                    break
                pos = name.find(sep, pos + 1)
        for node in nodes:
            if node.kind in (NodeKind.CONST0, NodeKind.CONST1):
                self._fanin[node.index] = node.fanin

        # ---- closedness: every fanout edge of a member must stay inside.
        # (model.fanout targets are gate nodes only, so this is exactly the
        # "no core output feeds external logic" check.)
        fanout = model.fanout
        closed: dict[str, list[int]] = {}
        for prefix, members in by_prefix.items():
            member_set = set(members)
            if all(
                target in member_set
                for idx in members
                for target in fanout[idx]
            ):
                closed[prefix] = members
            else:
                for idx in members:
                    del owner_of[idx]

        # ---- canonicalize + verify: share a template per exact fingerprint
        core_of = dict(hierarchy.instances)
        self._bindings: list[tuple[CoreTemplate, list[int]]] = []
        #: member node index -> (binding slot, local id) for fault sites.
        self._binding_of_node: dict[int, tuple[int, int]] = {}
        for prefix, _core in hierarchy.instances:
            members = closed.get(prefix)
            if not members:
                continue
            canonical = _CanonicalInstance(prefix, core_of[prefix], model, members)
            with _TEMPLATE_LOCK:
                template = _TEMPLATE_CACHE.get(canonical.fingerprint)
                if template is None:
                    ops = tuple(
                        (
                            position,
                            tuple(canonical.local_of[src] for src in nodes[idx].fanin),
                            evaluator_for(
                                nodes[idx].gtype, len(nodes[idx].fanin)  # type: ignore[arg-type]
                            ),
                            len(nodes[idx].fanin),
                        )
                        for position, idx in enumerate(canonical.order)
                    )
                    template = CoreTemplate(
                        core_type=canonical.core_type,
                        fingerprint=canonical.fingerprint,
                        ops=ops,
                        num_internal=len(canonical.order),
                        num_external=len(canonical.trans) - len(canonical.order),
                    )
                    _TEMPLATE_CACHE[canonical.fingerprint] = template
            slot = len(self._bindings)
            self._bindings.append((template, canonical.trans))
            for idx in members:
                self._binding_of_node[idx] = (slot, canonical.local_of[idx])

        # ---- residual tape: constants + glue + demoted gates, model order
        tape = []
        for node in nodes:
            if node.kind is NodeKind.GATE:
                if node.index in self._binding_of_node:
                    continue
                tape.append(
                    _tape_op(
                        node.kind,
                        node.index,
                        node.fanin,
                        self._evaluators[node.index],
                    )
                )
            elif node.kind in (NodeKind.CONST0, NodeKind.CONST1):
                tape.append(_tape_op(node.kind, node.index, (), None))
        self._tape = tuple(tape)
        self._gate_count = len(self._tape) + sum(
            len(template.ops) for template, _ in self._bindings
        )

    # --------------------------------------------------------------- reporting
    def hier_stats(self) -> dict[str, int]:
        """Kernel-sharing summary (surfaced by ``benchmarks/bench_scale.py``)."""
        return {
            "instances_bound": len(self._bindings),
            "unique_core_kernels": len({t.digest for t, _ in self._bindings}),
            "core_gates": sum(len(t.ops) for t, _ in self._bindings),
            "residual_ops": len(self._tape),
            "shared_evaluators": len(
                {id(e) for e in self._evaluators if e is not None}
            ),
        }

    def binding_digests(self) -> list[str]:
        """Per-instance template digests, in stamp-out order."""
        return [template.digest for template, _ in self._bindings]

    # ------------------------------------------------------------ good machine
    def simulate(self, packed: PackedPatterns) -> PackedPatterns:
        metrics = active_metrics()
        if metrics is not None:
            metrics.inc("engine.tape_passes")
            metrics.inc("engine.gate_evaluations", self._gate_count)
        can0, can1, full = packed.can0, packed.can1, packed.full_mask
        for op in self._tape:
            op(can0, can1, full)
        # Closed instances read only sources and residual logic, never each
        # other's gates, so any instance order after the residual pass is
        # topological.
        for template, trans in self._bindings:
            for local_out, local_fanin, evaluator, arity in template.ops:
                index = trans[local_out]
                if arity == 1:
                    src = trans[local_fanin[0]]
                    out0, out1 = evaluator((can0[src],), (can1[src],))
                elif arity == 2:
                    a = trans[local_fanin[0]]
                    b = trans[local_fanin[1]]
                    out0, out1 = evaluator((can0[a], can0[b]), (can1[a], can1[b]))
                else:
                    srcs = [trans[local] for local in local_fanin]
                    out0, out1 = evaluator(
                        [can0[i] for i in srcs], [can1[i] for i in srcs]
                    )
                can0[index] = out0
                can1[index] = out1
        return packed

    # ------------------------------------------------------------- fault paths
    def _inject_and_propagate(self, good, fault: StuckAtFault):
        site = fault.site
        bound = self._binding_of_node.get(site.node)
        if bound is None:
            # Residual/glue/PPI sites: the flat reference path (lazy cones).
            return super()._inject_and_propagate(good, fault)

        slot, site_local = bound
        template, trans = self._bindings[slot]
        full = good.full_mask
        stuck0 = full if fault.value == 0 else 0
        stuck1 = full if fault.value == 1 else 0
        can0, can1 = good.can0, good.can1

        scratch = self._scratch()
        f0, f1, stamp = scratch.f0, scratch.f1, scratch.stamp
        scratch.version += 1
        version = scratch.version

        start = site.node
        if site.pin is None:
            f0[start] = stuck0
            f1[start] = stuck1
        else:
            fanin = self._fanin[start]
            in0 = [can0[i] for i in fanin]
            in1 = [can1[i] for i in fanin]
            in0[site.pin] = stuck0
            in1[site.pin] = stuck1
            evaluator = self._evaluators[start]
            assert evaluator is not None, "pin faults sit on gate nodes"
            f0[start], f1[start] = evaluator(in0, in1)
        stamp[start] = version

        # Shared local cone, translated through the instance binding.  Same
        # event condition and arithmetic as the flat path; closedness keeps
        # the whole cone inside the instance, so the local walk is complete.
        ops = template.ops
        for position in template.local_cone(site_local):
            local_out, local_fanin, evaluator, _ = ops[position]
            idx = trans[local_out]
            touched = False
            in0 = []
            in1 = []
            for local in local_fanin:
                i = trans[local]
                if stamp[i] == version:
                    touched = True
                    in0.append(f0[i])
                    in1.append(f1[i])
                else:
                    in0.append(can0[i])
                    in1.append(can1[i])
            if not touched:
                continue
            out0, out1 = evaluator(in0, in1)
            if out0 == can0[idx] and out1 == can1[idx]:
                continue
            f0[idx] = out0
            f1[idx] = out1
            stamp[idx] = version
        return scratch
