"""Hierarchical scaling design families (``hier-soc-*``).

Three registry entries span the 10³→10⁵ gate range of the scaling study:

========== ======= =============== ===========================
family      cores   gates per core  approx. total gates
========== ======= =============== ===========================
hier-soc-1k      8             128  ~1 × 10³
hier-soc-10k    48             208  ~1 × 10⁴
hier-soc-100k  384             260  ~1 × 10⁵
========== ======= =============== ===========================

All three share **three unique core kinds**, so the hierarchical compiler
builds three kernels regardless of instance count — compile time and kernel
memory stay flat while simulated gates grow 100×.  The per-kind RNG streams
are seeded identically across the family, so campaigns that sweep the
family reuse kernels across members via the process-wide template cache.

Registration is explicit: call :func:`register_hier_designs` (idempotent)
before resolving the names.  The families are intentionally *not*
registered at import so that registry-wide test parametrization and tools
iterating ``design_names()`` never build a 10⁵-gate design by accident.
"""

from __future__ import annotations

from repro.api.design import DesignSpec, register_design

HIER_SOC_1K = DesignSpec(
    name="hier-soc-1k",
    description="Hierarchical SoC, 8 cores of 3 kinds (~1k gates)",
    hier_cores=8,
    hier_core_gates=128,
    hier_core_kinds=3,
    num_chains=6,
    tags=("hier", "scaling"),
)

HIER_SOC_10K = DesignSpec(
    name="hier-soc-10k",
    description="Hierarchical SoC, 48 cores of 3 kinds (~10k gates)",
    hier_cores=48,
    hier_core_gates=208,
    hier_core_kinds=3,
    num_chains=12,
    tags=("hier", "scaling"),
)

HIER_SOC_100K = DesignSpec(
    name="hier-soc-100k",
    description="Hierarchical SoC, 384 cores of 3 kinds (~100k gates)",
    hier_cores=384,
    hier_core_gates=260,
    hier_core_kinds=3,
    num_chains=24,
    tags=("hier", "scaling"),
)

HIER_DESIGNS = (HIER_SOC_1K, HIER_SOC_10K, HIER_SOC_100K)


def register_hier_designs() -> tuple[DesignSpec, ...]:
    """Register the ``hier-soc-*`` families (idempotent); returns them."""
    for spec in HIER_DESIGNS:
        register_design(spec, replace_existing=True)
    return HIER_DESIGNS
