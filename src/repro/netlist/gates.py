"""Primitive gate types and their evaluation semantics.

The cell library is intentionally small — the same primitive set used by
classic structural-test literature (and by the CPF schematic in Figure 3 of
the paper): AND/NAND/OR/NOR/XOR/XNOR/NOT/BUF, a 2:1 mux, and constant ties.
Everything else in the library (clock-gating cells, scan cells, the CPF
itself) is composed from these primitives so that simulators, fault models
and ATPG only ever have to reason about this set.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from repro.logic import Logic


class GateType(str, Enum):
    """Primitive combinational cell types."""

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    MUX2 = "MUX2"  # inputs: (sel, a, b) -> a if sel == 0 else b
    TIE0 = "TIE0"
    TIE1 = "TIE1"

    @property
    def is_inverting(self) -> bool:
        """True for cells whose output is the complement of the controlled value."""
        return self in _INVERTING

    @property
    def controlling_value(self) -> Logic | None:
        """The input value that alone determines the output (None if no such value)."""
        return _CONTROLLING.get(self)

    @property
    def min_inputs(self) -> int:
        return _MIN_INPUTS[self]

    @property
    def max_inputs(self) -> int | None:
        """Maximum number of inputs (None means unbounded)."""
        return _MAX_INPUTS[self]


_INVERTING = {GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR}

_CONTROLLING = {
    GateType.AND: Logic.ZERO,
    GateType.NAND: Logic.ZERO,
    GateType.OR: Logic.ONE,
    GateType.NOR: Logic.ONE,
}

_MIN_INPUTS = {
    GateType.AND: 2,
    GateType.NAND: 2,
    GateType.OR: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.MUX2: 3,
    GateType.TIE0: 0,
    GateType.TIE1: 0,
}

_MAX_INPUTS: dict[GateType, int | None] = {
    GateType.AND: None,
    GateType.NAND: None,
    GateType.OR: None,
    GateType.NOR: None,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.MUX2: 3,
    GateType.TIE0: 0,
    GateType.TIE1: 0,
}


def evaluate_gate(gtype: GateType, inputs: Sequence[Logic]) -> Logic:
    """Evaluate a primitive gate over 4-valued logic.

    ``Z`` inputs are treated as ``X`` (a floating net driving a CMOS gate input
    has an unknown logic interpretation).

    Args:
        gtype: The primitive cell type.
        inputs: Input values in pin order.

    Returns:
        The 4-valued output value.

    Raises:
        ValueError: If the number of inputs is not legal for the cell type.
    """
    _check_arity(gtype, len(inputs))
    vals = [Logic.X if v is Logic.Z else v for v in inputs]

    if gtype is GateType.TIE0:
        return Logic.ZERO
    if gtype is GateType.TIE1:
        return Logic.ONE
    if gtype is GateType.BUF:
        return vals[0]
    if gtype is GateType.NOT:
        return vals[0].invert()
    if gtype in (GateType.AND, GateType.NAND):
        out = _and_reduce(vals)
        return out.invert() if gtype is GateType.NAND else out
    if gtype in (GateType.OR, GateType.NOR):
        out = _or_reduce(vals)
        return out.invert() if gtype is GateType.NOR else out
    if gtype in (GateType.XOR, GateType.XNOR):
        out = _xor_reduce(vals)
        return out.invert() if gtype is GateType.XNOR else out
    if gtype is GateType.MUX2:
        sel, a, b = vals
        if sel is Logic.ZERO:
            return a
        if sel is Logic.ONE:
            return b
        # Unknown select: output known only if both data inputs agree.
        if a is b and a in (Logic.ZERO, Logic.ONE):
            return a
        return Logic.X
    raise ValueError(f"unsupported gate type: {gtype!r}")


def _check_arity(gtype: GateType, n: int) -> None:
    lo = gtype.min_inputs
    hi = gtype.max_inputs
    if n < lo or (hi is not None and n > hi):
        bound = f"exactly {lo}" if hi == lo else f"between {lo} and {hi or 'inf'}"
        raise ValueError(f"{gtype.value} gate requires {bound} inputs, got {n}")


def _and_reduce(vals: Sequence[Logic]) -> Logic:
    if any(v is Logic.ZERO for v in vals):
        return Logic.ZERO
    if all(v is Logic.ONE for v in vals):
        return Logic.ONE
    return Logic.X


def _or_reduce(vals: Sequence[Logic]) -> Logic:
    if any(v is Logic.ONE for v in vals):
        return Logic.ONE
    if all(v is Logic.ZERO for v in vals):
        return Logic.ZERO
    return Logic.X


def _xor_reduce(vals: Sequence[Logic]) -> Logic:
    if any(v is Logic.X for v in vals):
        return Logic.X
    parity = sum(1 for v in vals if v is Logic.ONE) % 2
    return Logic.ONE if parity else Logic.ZERO


def noncontrolling_value(gtype: GateType) -> Logic | None:
    """Return the non-controlling input value of a gate, if it has one."""
    ctl = gtype.controlling_value
    if ctl is None:
        return None
    return ctl.invert()
