"""Structural Verilog-subset writer and reader.

The dialect is the minimal flat structural style a synthesis tool would emit
for this cell library: one module, ``input``/``output``/``wire`` declarations,
and primitive instantiations::

    module top (a, b, y, clk);
      input a, b, clk;
      output y;
      wire n1;
      AND2 u1 (.A(a), .B(b), .Y(n1));
      DFF  r1 (.D(n1), .Q(y), .CK(clk));
    endmodule

The reader accepts exactly what the writer produces (plus whitespace/comment
variations); it exists so that netlists can be persisted, diffed and re-loaded
by the examples and by external tools.
"""

from __future__ import annotations

import dataclasses
import re

from repro.netlist.gates import GateType
from repro.netlist.netlist import FlipFlop, Gate, Latch, Netlist, NetlistError, RamMacro

_CELL_OF_GATETYPE = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "INV",
    GateType.BUF: "BUF",
    GateType.MUX2: "MUX2",
    GateType.TIE0: "TIE0",
    GateType.TIE1: "TIE1",
}
_GATETYPE_OF_CELL = {v: k for k, v in _CELL_OF_GATETYPE.items()}

_INPUT_PIN_NAMES = ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L"]


def write_verilog(netlist: Netlist) -> str:
    """Serialize a netlist to the structural Verilog subset."""
    lines: list[str] = []
    ports = list(netlist.inputs) + [p for p in netlist.outputs if p not in netlist.inputs]
    lines.append(f"// netlist {netlist.name} written by repro.netlist.verilog")
    lines.append(f"module {netlist.name} ({', '.join(ports)});")
    if netlist.inputs:
        lines.append(f"  input {', '.join(netlist.inputs)};")
    if netlist.outputs:
        lines.append(f"  output {', '.join(netlist.outputs)};")
    internal = sorted(netlist.all_nets() - set(netlist.inputs) - set(netlist.outputs))
    if internal:
        lines.append(f"  wire {', '.join(internal)};")
    for gate in sorted(netlist.gates.values(), key=lambda g: g.name):
        cell = _CELL_OF_GATETYPE[gate.gtype]
        pins = [f".{_INPUT_PIN_NAMES[i]}({net})" for i, net in enumerate(gate.inputs)]
        pins.append(f".Y({gate.output})")
        width = "" if gate.gtype in (GateType.NOT, GateType.BUF, GateType.MUX2,
                                     GateType.TIE0, GateType.TIE1) else str(len(gate.inputs))
        lines.append(f"  {cell}{width} {gate.name} ({', '.join(pins)});")
    for flop in sorted(netlist.flops.values(), key=lambda f: f.name):
        pins = [f".D({flop.d})", f".Q({flop.q})", f".CK({flop.clock})"]
        if flop.reset:
            pins.append(f".RN({flop.reset})")
        if flop.scan_in:
            pins.append(f".SI({flop.scan_in})")
        if flop.scan_enable:
            pins.append(f".SE({flop.scan_enable})")
        cell = "SDFF" if flop.is_scan else "DFF"
        attrs = "" if flop.scannable else "  // non_scan"
        lines.append(f"  {cell} {flop.name} ({', '.join(pins)});{attrs}")
    for latch in sorted(netlist.latches.values(), key=lambda la: la.name):
        cell = "LATN" if latch.active_level == 0 else "LAT"
        lines.append(
            f"  {cell} {latch.name} (.D({latch.d}), .Q({latch.q}), .EN({latch.enable}));"
        )
    for ram in sorted(netlist.rams.values(), key=lambda r: r.name):
        pins = [f".CK({ram.clock})", f".WE({ram.write_enable})"]
        pins += [f".A{i}({net})" for i, net in enumerate(ram.address)]
        pins += [f".DI{i}({net})" for i, net in enumerate(ram.data_in)]
        pins += [f".DO{i}({net})" for i, net in enumerate(ram.data_out)]
        lines.append(f"  RAM {ram.name} ({', '.join(pins)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_MODULE_RE = re.compile(r"module\s+(\w+)\s*\(([^)]*)\)\s*;")
_DECL_RE = re.compile(r"^(input|output|wire)\s+(.*);$")
_INST_RE = re.compile(r"^(\w+)\s+(\w+)\s*\((.*)\)\s*;$")
_PIN_RE = re.compile(r"\.(\w+)\(([^)]*)\)")


def read_verilog(text: str) -> Netlist:
    """Parse the structural Verilog subset back into a :class:`Netlist`."""
    cleaned = []
    non_scan: set[str] = set()
    for raw in text.splitlines():
        line, _, comment = raw.partition("//")
        line = line.strip()
        if "non_scan" in comment:
            # The writer marks non-scannable flops with a trailing comment;
            # honour it so the flag survives a round trip.
            inst = _INST_RE.match(line)
            if inst:
                non_scan.add(inst.group(2))
        if line:
            cleaned.append(line)
    body = " ".join(cleaned)
    match = _MODULE_RE.search(body)
    if not match:
        raise NetlistError("no module declaration found")
    netlist = Netlist(match.group(1))

    # Re-split into statements on ';'
    statements = [s.strip() + ";" for s in body.split(";") if s.strip()]
    outputs: list[str] = []
    for stmt in statements:
        if stmt.startswith(("module", "endmodule")):
            continue
        decl = _DECL_RE.match(stmt)
        if decl:
            kind, names = decl.groups()
            nets = [n.strip() for n in names.split(",") if n.strip()]
            if kind == "input":
                for net in nets:
                    netlist.add_input(net)
            elif kind == "output":
                outputs.extend(nets)
            continue
        inst = _INST_RE.match(stmt)
        if inst:
            _parse_instance(netlist, *inst.groups())
            continue
        raise NetlistError(f"unparseable statement: {stmt!r}")
    for net in outputs:
        netlist.add_output(net)
    for inst in non_scan:
        flop = netlist.flops.get(inst)
        if flop is not None:
            netlist.replace_flop(inst, dataclasses.replace(flop, scannable=False))
    return netlist


def _parse_instance(netlist: Netlist, cell: str, name: str, pin_text: str) -> None:
    pins = {m.group(1): m.group(2).strip() for m in _PIN_RE.finditer(pin_text)}
    base = re.match(r"([A-Z]+)(\d*)$", cell)
    if base is None:
        raise NetlistError(f"unknown cell {cell!r}")
    # Exact cell names (MUX2, TIE0, TIE1) take precedence over the family+width
    # convention used for the variadic gates (NAND2, NAND3, ...).
    if cell in _GATETYPE_OF_CELL:
        gtype = _GATETYPE_OF_CELL[cell]
        inputs = [pins[p] for p in _INPUT_PIN_NAMES if p in pins]
        netlist.add_gate(Gate(name=name, gtype=gtype, inputs=tuple(inputs), output=pins["Y"]))
        return
    family = base.group(1)
    if family in ("DFF", "SDFF"):
        netlist.add_flop(
            FlipFlop(
                name=name,
                d=pins["D"],
                q=pins["Q"],
                clock=pins["CK"],
                reset=pins.get("RN"),
                scan_in=pins.get("SI"),
                scan_enable=pins.get("SE"),
            )
        )
        return
    if family in ("LAT", "LATN"):
        netlist.add_latch(
            Latch(
                name=name,
                d=pins["D"],
                q=pins["Q"],
                enable=pins["EN"],
                active_level=0 if family == "LATN" else 1,
            )
        )
        return
    if family == "RAM":
        addr = _bus_pins(pins, "A")
        din = _bus_pins(pins, "DI")
        dout = _bus_pins(pins, "DO")
        netlist.add_ram(
            RamMacro(
                name=name,
                clock=pins["CK"],
                write_enable=pins["WE"],
                address=tuple(addr),
                data_in=tuple(din),
                data_out=tuple(dout),
            )
        )
        return
    if family == "INV":
        gtype = GateType.NOT
    elif family in _GATETYPE_OF_CELL:
        gtype = _GATETYPE_OF_CELL[family]
    else:
        raise NetlistError(f"unknown cell {cell!r}")
    inputs = []
    for pin_name in _INPUT_PIN_NAMES:
        if pin_name in pins:
            inputs.append(pins[pin_name])
    netlist.add_gate(Gate(name=name, gtype=gtype, inputs=tuple(inputs), output=pins["Y"]))


def _bus_pins(pins: dict[str, str], prefix: str) -> list[str]:
    indexed = []
    for pin, net in pins.items():
        match = re.match(rf"{prefix}(\d+)$", pin)
        if match:
            indexed.append((int(match.group(1)), net))
    return [net for _, net in sorted(indexed)]


def round_trip(netlist: Netlist) -> Netlist:
    """Write then re-read a netlist (useful in tests)."""
    return read_verilog(write_verilog(netlist))
