"""Standard-cell library metadata: per-cell delay and area numbers.

The event-driven timing simulator and the area reports (Figure 3 of the paper
quotes "ten standard digital logic gates per clock domain" for the CPF) need
nominal per-cell properties.  The numbers below are representative of a 130nm
standard-cell library — the same technology node as the paper's device — in
arbitrary-but-consistent units (delay in picoseconds, area in NAND2
equivalents).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class CellInfo:
    """Nominal properties of a primitive cell."""

    delay_ps: float
    area_nand2: float


DEFAULT_LIBRARY: Mapping[GateType, CellInfo] = {
    GateType.NOT: CellInfo(delay_ps=20.0, area_nand2=0.7),
    GateType.BUF: CellInfo(delay_ps=25.0, area_nand2=0.9),
    GateType.NAND: CellInfo(delay_ps=30.0, area_nand2=1.0),
    GateType.NOR: CellInfo(delay_ps=35.0, area_nand2=1.1),
    GateType.AND: CellInfo(delay_ps=45.0, area_nand2=1.3),
    GateType.OR: CellInfo(delay_ps=50.0, area_nand2=1.4),
    GateType.XOR: CellInfo(delay_ps=70.0, area_nand2=2.2),
    GateType.XNOR: CellInfo(delay_ps=70.0, area_nand2=2.2),
    GateType.MUX2: CellInfo(delay_ps=60.0, area_nand2=2.0),
    GateType.TIE0: CellInfo(delay_ps=0.0, area_nand2=0.3),
    GateType.TIE1: CellInfo(delay_ps=0.0, area_nand2=0.3),
}

# Sequential / macro cells are not GateTypes; keep their metadata separately.
FLOP_INFO = CellInfo(delay_ps=120.0, area_nand2=5.5)
SCAN_FLOP_INFO = CellInfo(delay_ps=130.0, area_nand2=6.5)
LATCH_INFO = CellInfo(delay_ps=80.0, area_nand2=3.5)
RAM_BIT_INFO = CellInfo(delay_ps=450.0, area_nand2=0.6)


def gate_delay(gtype: GateType, library: Mapping[GateType, CellInfo] | None = None) -> float:
    """Nominal propagation delay of a primitive cell in picoseconds."""
    lib = library or DEFAULT_LIBRARY
    return lib[gtype].delay_ps


def gate_area(gtype: GateType, library: Mapping[GateType, CellInfo] | None = None) -> float:
    """Area of a primitive cell in NAND2 equivalents."""
    lib = library or DEFAULT_LIBRARY
    return lib[gtype].area_nand2


@dataclass(frozen=True)
class AreaReport:
    """Area accounting of a netlist in NAND2-equivalent units."""

    combinational: float
    sequential: float
    memory: float

    @property
    def total(self) -> float:
        return self.combinational + self.sequential + self.memory


def area_report(netlist: Netlist, library: Mapping[GateType, CellInfo] | None = None) -> AreaReport:
    """Compute the NAND2-equivalent area of a netlist.

    Used by the Figure 3 benchmark to substantiate the paper's claim that the
    CPF area overhead is negligible (about ten gates per clock domain).
    """
    lib = library or DEFAULT_LIBRARY
    comb = sum(lib[g.gtype].area_nand2 for g in netlist.gates.values())
    seq = 0.0
    for flop in netlist.flops.values():
        seq += (SCAN_FLOP_INFO if flop.is_scan else FLOP_INFO).area_nand2
    seq += LATCH_INFO.area_nand2 * len(netlist.latches)
    mem = sum(RAM_BIT_INFO.area_nand2 * ram.num_words * ram.width for ram in netlist.rams.values())
    return AreaReport(combinational=comb, sequential=seq, memory=mem)


def critical_path_estimate(
    netlist: Netlist, library: Mapping[GateType, CellInfo] | None = None
) -> float:
    """Longest combinational path delay estimate (static, topological) in ps.

    This is a zero-slack static estimate used to pick functional clock periods
    for the synthetic SOC and to decide which paths the path-delay fault model
    should target.
    """
    lib = library or DEFAULT_LIBRARY
    arrival: dict[str, float] = {}
    for gate in netlist.topological_gate_order():
        start = max((arrival.get(net, 0.0) for net in gate.inputs), default=0.0)
        arrival[gate.output] = start + lib[gate.gtype].delay_ps
    flop_setup = max(
        (arrival.get(flop.d, 0.0) for flop in netlist.flops.values()), default=0.0
    )
    po_arrival = max((arrival.get(net, 0.0) for net in netlist.outputs), default=0.0)
    return max(flop_setup, po_arrival)
