"""Fluent helper for constructing netlists programmatically.

Circuit generators (:mod:`repro.circuits`) and the CPF construction code
(:mod:`repro.clocking.cpf`) use this builder so that instance and net names
stay unique and readable without manual bookkeeping.
"""

from __future__ import annotations

from itertools import count
from typing import Sequence

from repro.netlist.gates import GateType
from repro.netlist.netlist import FlipFlop, Gate, Latch, Netlist, RamMacro


class NetlistBuilder:
    """Incrementally build a :class:`~repro.netlist.netlist.Netlist`.

    Every ``gate``/``flop`` call returns the *output net name*, so expressions
    compose naturally::

        b = NetlistBuilder("adder")
        a, c = b.input("a"), b.input("c")
        s = b.gate(GateType.XOR, [a, c])
        b.output_from(s, "sum")
    """

    def __init__(self, name: str, instance_prefix: str = "u") -> None:
        self.netlist = Netlist(name)
        self._prefix = instance_prefix
        self._gate_counter = count()
        self._net_counter = count()

    # ----------------------------------------------------------------- naming
    def fresh_net(self, hint: str = "n") -> str:
        """Return a new unique internal net name."""
        return f"{hint}_{next(self._net_counter)}"

    def _fresh_instance(self, hint: str) -> str:
        return f"{self._prefix}_{hint}_{next(self._gate_counter)}"

    # ------------------------------------------------------------------ ports
    def input(self, net: str) -> str:
        """Declare a primary input and return its net name."""
        return self.netlist.add_input(net)

    def inputs(self, prefix: str, width: int) -> list[str]:
        """Declare a bus of primary inputs ``prefix_0 .. prefix_{width-1}``."""
        return [self.input(f"{prefix}_{i}") for i in range(width)]

    def output_from(self, net: str, port: str | None = None) -> str:
        """Expose an existing net as a primary output.

        When ``port`` differs from ``net`` a buffer is inserted so the output
        port has its own net name.
        """
        if port is None or port == net:
            self.netlist.add_output(net)
            return net
        self.gate(GateType.BUF, [net], output=port)
        self.netlist.add_output(port)
        return port

    def clock(self, net: str, primary: bool = True) -> str:
        """Declare a clock net (optionally also as a primary input)."""
        if primary and net not in self.netlist.inputs:
            self.netlist.add_input(net)
        self.netlist.declare_clock(net)
        return net

    # ------------------------------------------------------------------ cells
    def gate(
        self,
        gtype: GateType,
        inputs: Sequence[str],
        output: str | None = None,
        name: str | None = None,
    ) -> str:
        """Add a primitive gate; returns the output net name."""
        out = output or self.fresh_net(gtype.value.lower())
        inst = name or self._fresh_instance(gtype.value.lower())
        self.netlist.add_gate(Gate(name=inst, gtype=gtype, inputs=tuple(inputs), output=out))
        return out

    def buf(self, src: str, output: str | None = None) -> str:
        return self.gate(GateType.BUF, [src], output=output)

    def inv(self, src: str, output: str | None = None) -> str:
        return self.gate(GateType.NOT, [src], output=output)

    def and_(self, inputs: Sequence[str], output: str | None = None) -> str:
        return self.gate(GateType.AND, inputs, output=output)

    def nand(self, inputs: Sequence[str], output: str | None = None) -> str:
        return self.gate(GateType.NAND, inputs, output=output)

    def or_(self, inputs: Sequence[str], output: str | None = None) -> str:
        return self.gate(GateType.OR, inputs, output=output)

    def nor(self, inputs: Sequence[str], output: str | None = None) -> str:
        return self.gate(GateType.NOR, inputs, output=output)

    def xor(self, inputs: Sequence[str], output: str | None = None) -> str:
        return self.gate(GateType.XOR, inputs, output=output)

    def xnor(self, inputs: Sequence[str], output: str | None = None) -> str:
        return self.gate(GateType.XNOR, inputs, output=output)

    def mux(self, sel: str, a: str, b: str, output: str | None = None) -> str:
        """2:1 mux returning ``a`` when ``sel`` is 0 and ``b`` when ``sel`` is 1."""
        return self.gate(GateType.MUX2, [sel, a, b], output=output)

    def tie0(self, output: str | None = None) -> str:
        return self.gate(GateType.TIE0, [], output=output)

    def tie1(self, output: str | None = None) -> str:
        return self.gate(GateType.TIE1, [], output=output)

    def flop(
        self,
        d: str,
        clock: str,
        q: str | None = None,
        name: str | None = None,
        reset: str | None = None,
        scannable: bool = True,
        init: int | None = None,
    ) -> str:
        """Add a D flip-flop; returns the Q net name."""
        out = q or self.fresh_net("q")
        inst = name or self._fresh_instance("dff")
        self.netlist.add_flop(
            FlipFlop(
                name=inst,
                d=d,
                q=out,
                clock=clock,
                reset=reset,
                scannable=scannable,
                init=init,
            )
        )
        return out

    def latch(
        self,
        d: str,
        enable: str,
        q: str | None = None,
        name: str | None = None,
        active_level: int = 0,
    ) -> str:
        """Add a transparent latch; returns the Q net name."""
        out = q or self.fresh_net("lq")
        inst = name or self._fresh_instance("lat")
        self.netlist.add_latch(
            Latch(name=inst, d=d, q=out, enable=enable, active_level=active_level)
        )
        return out

    def ram(
        self,
        clock: str,
        write_enable: str,
        address: Sequence[str],
        data_in: Sequence[str],
        width: int | None = None,
        name: str | None = None,
    ) -> list[str]:
        """Add a synchronous RAM macro; returns the data output nets."""
        inst = name or self._fresh_instance("ram")
        width = width if width is not None else len(data_in)
        data_out = [self.fresh_net(f"{inst}_do") for _ in range(width)]
        self.netlist.add_ram(
            RamMacro(
                name=inst,
                clock=clock,
                write_enable=write_enable,
                address=tuple(address),
                data_in=tuple(data_in),
                data_out=tuple(data_out),
            )
        )
        return data_out

    # -------------------------------------------------------------- composites
    def reduce_tree(self, gtype: GateType, nets: Sequence[str]) -> str:
        """Build a balanced tree of 2-input gates reducing ``nets`` to one net."""
        if not nets:
            raise ValueError("reduce_tree needs at least one net")
        level = list(nets)
        if len(level) == 1:
            return self.buf(level[0])
        while len(level) > 1:
            nxt: list[str] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.gate(gtype, [level[i], level[i + 1]]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def equality_comparator(self, bus_a: Sequence[str], bus_b: Sequence[str]) -> str:
        """Return a net that is 1 when two equal-width buses match."""
        if len(bus_a) != len(bus_b):
            raise ValueError("equality comparator requires equal bus widths")
        bits = [self.xnor([a, b]) for a, b in zip(bus_a, bus_b)]
        return self.reduce_tree(GateType.AND, bits)

    def ripple_adder(
        self, bus_a: Sequence[str], bus_b: Sequence[str], carry_in: str | None = None
    ) -> tuple[list[str], str]:
        """Build a ripple-carry adder; returns (sum bits, carry out)."""
        if len(bus_a) != len(bus_b):
            raise ValueError("adder requires equal bus widths")
        carry = carry_in or self.tie0()
        sums: list[str] = []
        for a, b in zip(bus_a, bus_b):
            axb = self.xor([a, b])
            sums.append(self.xor([axb, carry]))
            carry = self.or_([self.and_([a, b]), self.and_([axb, carry])])
        return sums, carry

    def register_bank(
        self,
        data: Sequence[str],
        clock: str,
        enable: str | None = None,
        scannable: bool = True,
        prefix: str = "reg",
    ) -> list[str]:
        """A bank of flip-flops with optional synchronous load enable."""
        outs: list[str] = []
        for i, d in enumerate(data):
            q = self.fresh_net(f"{prefix}{i}_q")
            src = d if enable is None else self.mux(enable, q, d)
            self.flop(src, clock, q=q, scannable=scannable, name=f"{prefix}_{i}_{next(self._gate_counter)}")
            outs.append(q)
        return outs

    def counter(self, width: int, clock: str, enable: str, prefix: str = "cnt") -> list[str]:
        """A binary up-counter with synchronous enable; returns state nets."""
        state = [self.fresh_net(f"{prefix}{i}_q") for i in range(width)]
        ones = self.tie1()
        inc, _ = self.ripple_adder(state, [ones] + [self.tie0() for _ in range(width - 1)])
        for i in range(width):
            nxt = self.mux(enable, state[i], inc[i])
            self.flop(nxt, clock, q=state[i], name=f"{prefix}_{i}_{next(self._gate_counter)}")
        return state

    def build(self) -> Netlist:
        """Return the constructed netlist."""
        return self.netlist

    # Convenience for typing `with NetlistBuilder(...) as b:` in examples.
    def __enter__(self) -> "NetlistBuilder":  # pragma: no cover - convenience
        return self

    def __exit__(self, *exc: object) -> None:  # pragma: no cover - convenience
        return None
