"""Gate-level netlist representation, construction and validation."""

from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType, evaluate_gate, noncontrolling_value
from repro.netlist.library import (
    DEFAULT_LIBRARY,
    AreaReport,
    CellInfo,
    area_report,
    critical_path_estimate,
    gate_area,
    gate_delay,
)
from repro.netlist.netlist import (
    FlipFlop,
    Gate,
    Latch,
    Netlist,
    NetlistError,
    NetlistStats,
    RamMacro,
)
from repro.netlist.validate import RuleSeverity, RuleViolation, ValidationReport, validate_netlist
from repro.netlist.verilog import read_verilog, round_trip, write_verilog

__all__ = [
    "AreaReport",
    "CellInfo",
    "DEFAULT_LIBRARY",
    "FlipFlop",
    "Gate",
    "GateType",
    "Latch",
    "Netlist",
    "NetlistBuilder",
    "NetlistError",
    "NetlistStats",
    "RamMacro",
    "RuleSeverity",
    "RuleViolation",
    "ValidationReport",
    "area_report",
    "critical_path_estimate",
    "evaluate_gate",
    "gate_area",
    "gate_delay",
    "noncontrolling_value",
    "read_verilog",
    "round_trip",
    "validate_netlist",
    "write_verilog",
]
