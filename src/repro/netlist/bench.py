"""ISCAS/ITC-style ``.bench`` reader and writer.

The ``.bench`` format is the lingua franca of the ISCAS'85/'89 and ITC'99
benchmark suites — the public circuits closest to the paper's industrial
device.  The dialect is tiny::

    # c17
    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)
    G22 = NOT(G10)
    G23 = DFF(G10)

One statement per line; ``INPUT``/``OUTPUT`` declare ports, everything else
assigns a net from a primitive function of other nets.  ``DFF`` denotes a
D flip-flop; ``.bench`` carries no clock, so every flop is attached to a
single implicit clock net (``clk`` by default) — the single-domain
assumption of the ISCAS benchmarks.

Instance names are derived from output nets (``g_<net>`` / ``ff_<net>``),
which makes :func:`read_bench` deterministic: the same text always produces
the same netlist, and :func:`write_bench` → :func:`read_bench` round-trips.
External netlists imported this way enter the design registry through
:class:`repro.api.design.DesignSpec.netlist_bench` exactly like generated
families.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.netlist.gates import GateType
from repro.netlist.netlist import FlipFlop, Gate, Netlist, NetlistError

_FUNCTION_OF_GATETYPE = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
}
_GATETYPE_OF_FUNCTION = {v: k for k, v in _FUNCTION_OF_GATETYPE.items()}
# Accepted aliases seen across benchmark distributions.
_GATETYPE_OF_FUNCTION["BUF"] = GateType.BUF
_GATETYPE_OF_FUNCTION["INV"] = GateType.NOT

_PORT_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_ASSIGN_RE = re.compile(r"^([^=\s]+)\s*=\s*(\w+)\s*\(([^)]*)\)$")


def read_bench(text: str, name: str = "bench", clock: str = "clk") -> Netlist:
    """Parse ``.bench`` text into a :class:`Netlist`.

    Args:
        text: The ``.bench`` source.
        name: Name for the resulting netlist.
        clock: Net attached to every ``DFF`` (declared as a clock input).

    Raises:
        NetlistError: On unparseable statements or unknown functions.
    """
    netlist = Netlist(name)
    outputs: list[str] = []
    flops: list[tuple[str, str]] = []  # (q net, d net)
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        port = _PORT_RE.match(line)
        if port:
            kind, net = port.group(1).upper(), port.group(2)
            if kind == "INPUT":
                netlist.add_input(net)
            else:
                outputs.append(net)
            continue
        assign = _ASSIGN_RE.match(line)
        if assign is None:
            raise NetlistError(f"unparseable .bench statement: {line!r}")
        out, function, args = assign.groups()
        operands = tuple(a.strip() for a in args.split(",") if a.strip())
        function = function.upper()
        if function == "DFF":
            if len(operands) != 1:
                raise NetlistError(f"DFF {out!r} needs exactly one operand")
            flops.append((out, operands[0]))
            continue
        gtype = _GATETYPE_OF_FUNCTION.get(function)
        if gtype is None:
            raise NetlistError(f"unknown .bench function {function!r}")
        if gtype in (GateType.NOT, GateType.BUF) and len(operands) != 1:
            raise NetlistError(f"{function} {out!r} needs exactly one operand")
        netlist.add_gate(
            Gate(name=f"g_{out}", gtype=gtype, inputs=operands, output=out)
        )
    if flops:
        if clock not in netlist.inputs:
            netlist.add_input(clock)
        netlist.declare_clock(clock)
        for q, d in flops:
            netlist.add_flop(FlipFlop(name=f"ff_{q}", d=d, q=q, clock=clock))
    for net in outputs:
        netlist.add_output(net)
    return netlist


def read_bench_file(path: "Path | str", name: str | None = None, clock: str = "clk") -> Netlist:
    """Read a ``.bench`` file; the netlist is named after the file stem."""
    source = Path(path)
    return read_bench(
        source.read_text(encoding="utf-8"),
        name=name or source.stem,
        clock=clock,
    )


def write_bench(netlist: Netlist) -> str:
    """Serialize a netlist to ``.bench`` (gates and flops only).

    Latches, RAM macros and per-flop clocking have no ``.bench``
    representation; netlists carrying them are rejected rather than
    silently narrowed.
    """
    if netlist.latches or netlist.rams:
        raise NetlistError(".bench cannot represent latches or RAM macros")
    clocks = {f.clock for f in netlist.flops.values()}
    if len(clocks) > 1:
        raise NetlistError(".bench cannot represent multiple clock domains")
    lines = [f"# netlist {netlist.name} written by repro.netlist.bench"]
    for net in netlist.inputs:
        if net in clocks:
            continue  # the implicit DFF clock is not part of the dialect
        lines.append(f"INPUT({net})")
    for net in netlist.outputs:
        lines.append(f"OUTPUT({net})")
    for flop in sorted(netlist.flops.values(), key=lambda f: f.name):
        lines.append(f"{flop.q} = DFF({flop.d})")
    for gate in sorted(netlist.gates.values(), key=lambda g: g.name):
        function = _FUNCTION_OF_GATETYPE.get(gate.gtype)
        if function is None:
            raise NetlistError(f".bench cannot represent gate type {gate.gtype!r}")
        lines.append(f"{gate.output} = {function}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"
