"""Gate-level netlist data model.

A :class:`Netlist` is a named collection of primitive combinational gates
(:class:`Gate`), sequential elements (:class:`FlipFlop`, :class:`Latch`),
memory macros (:class:`RamMacro`) and primary ports, connected by *nets*.
Nets are plain strings; every net has at most one driver (a primary input, a
gate output, a sequential element output, or a RAM data output).

The model deliberately stays close to what a DFT engineer sees after
synthesis: flat, primitive cells only, with scan attributes annotated on the
flip-flops once scan insertion (:mod:`repro.dft.scan`) has run.
"""

from __future__ import annotations

import copy
from collections import defaultdict, deque
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Mapping

from repro.netlist.gates import GateType


class NetlistError(Exception):
    """Raised for structural errors while building or editing a netlist."""


@dataclass(frozen=True)
class Gate:
    """A primitive combinational cell instance.

    Attributes:
        name: Unique instance name.
        gtype: Primitive cell type.
        inputs: Input net names in pin order.
        output: Output net name.
    """

    name: str
    gtype: GateType
    inputs: tuple[str, ...]
    output: str

    def with_inputs(self, inputs: Iterable[str]) -> "Gate":
        """Return a copy of the gate with a new input connection list."""
        return replace(self, inputs=tuple(inputs))


@dataclass(frozen=True)
class FlipFlop:
    """A D flip-flop, optionally a (muxed-input) scan cell.

    Attributes:
        name: Unique instance name.
        d: Functional data input net.
        q: Output net.
        clock: Clock net name.
        reset: Optional asynchronous active-high reset net.
        scan_in: Scan data input net (``None`` until scan insertion).
        scan_enable: Scan enable net (``None`` until scan insertion).
        scannable: Whether the cell *may* be converted to a scan cell.  The
            paper's device contains non-scan cells; those keep
            ``scannable=False`` and are only controllable through functional
            (clock-sequential) initialization cycles.
        init: Optional known power-up/reset value (0 or 1); ``None`` means
            unknown (X) at the start of a test.
    """

    name: str
    d: str
    q: str
    clock: str
    reset: str | None = None
    scan_in: str | None = None
    scan_enable: str | None = None
    scannable: bool = True
    init: int | None = None

    @property
    def is_scan(self) -> bool:
        """True once the cell has been stitched into a scan chain."""
        return self.scan_in is not None and self.scan_enable is not None


@dataclass(frozen=True)
class Latch:
    """A level-sensitive transparent latch.

    The latch is transparent while ``enable`` equals ``active_level`` and
    holds its value otherwise.  Latches appear in the glitch-free clock gating
    cell of the CPF (Figure 3 of the paper).
    """

    name: str
    d: str
    q: str
    enable: str
    active_level: int = 0


@dataclass(frozen=True)
class RamMacro:
    """A small synchronous single-port RAM macro.

    Attributes:
        name: Instance name.
        clock: Clock net.
        write_enable: Active-high write enable net.
        address: Address nets, MSB first.
        data_in: Write data nets.
        data_out: Read data nets (registered read).
        depth: Number of words (defaults to ``2**len(address)``).
    """

    name: str
    clock: str
    write_enable: str
    address: tuple[str, ...]
    data_in: tuple[str, ...]
    data_out: tuple[str, ...]
    depth: int | None = None

    @property
    def num_words(self) -> int:
        return self.depth if self.depth is not None else 2 ** len(self.address)

    @property
    def width(self) -> int:
        return len(self.data_in)


@dataclass(frozen=True)
class DesignHierarchy:
    """Instance structure of a hierarchical design, flattened by convention.

    The netlist itself stays flat (every tool downstream sees plain cells);
    hierarchy is carried as *naming* metadata: every cell whose instance name
    starts with ``{prefix}{SEPARATOR}`` belongs to the core instance
    ``prefix``, and ``instances`` maps each instance prefix to the name of
    the unique core type it was stamped out from.  The hierarchical kernel
    compiler (:mod:`repro.hier.compile`) verifies — never trusts — that
    instances of one core type are structurally identical before sharing a
    compiled kernel between them.
    """

    #: Instance prefix -> core type name, in stamp-out order.
    instances: tuple[tuple[str, str], ...]

    SEPARATOR = "__"

    def core_types(self) -> tuple[str, ...]:
        """Unique core type names, in first-appearance order."""
        seen: list[str] = []
        for _, core in self.instances:
            if core not in seen:
                seen.append(core)
        return tuple(seen)

    def instances_of(self, core: str) -> tuple[str, ...]:
        return tuple(prefix for prefix, c in self.instances if c == core)


@dataclass
class NetlistStats:
    """Size summary of a netlist."""

    num_gates: int
    num_flops: int
    num_scan_flops: int
    num_nonscan_flops: int
    num_latches: int
    num_rams: int
    num_primary_inputs: int
    num_primary_outputs: int
    num_nets: int

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class Netlist:
    """A flat gate-level design.

    The class offers the editing operations the rest of the library needs:
    adding/removing cells, querying drivers and fanout, levelizing the
    combinational logic, and merging sub-netlists (used when the CPF blocks
    are stitched next to the PLL).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        #: Optional :class:`DesignHierarchy` describing repeated core
        #: instances (set by hierarchical generators; ``copy`` preserves it).
        self.hierarchy: DesignHierarchy | None = None
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: dict[str, Gate] = {}
        self._flops: dict[str, FlipFlop] = {}
        self._latches: dict[str, Latch] = {}
        self._rams: dict[str, RamMacro] = {}
        self._clock_nets: set[str] = set()
        # Derived maps, rebuilt lazily.
        self._driver_cache: dict[str, tuple[str, object]] | None = None
        self._fanout_cache: dict[str, list[tuple[str, object]]] | None = None

    # ------------------------------------------------------------------ ports
    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary input nets, in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        """Primary output nets, in declaration order."""
        return tuple(self._outputs)

    @property
    def clock_nets(self) -> frozenset[str]:
        """Nets declared as clocks (driven by the ATE or by the PLL/CPF)."""
        return frozenset(self._clock_nets)

    def add_input(self, net: str) -> str:
        if net in self._inputs:
            raise NetlistError(f"primary input {net!r} already declared")
        self._check_net_undriven(net)
        self._inputs.append(net)
        self._driver_added(net, "input", net)
        return net

    def add_output(self, net: str) -> str:
        if net in self._outputs:
            raise NetlistError(f"primary output {net!r} already declared")
        self._outputs.append(net)
        self._invalidate()
        return net

    def declare_clock(self, net: str) -> str:
        """Mark a net as a clock net (it must already exist or be a PI)."""
        self._clock_nets.add(net)
        return net

    # ------------------------------------------------------------------ cells
    @property
    def gates(self) -> Mapping[str, Gate]:
        return dict(self._gates)

    @property
    def flops(self) -> Mapping[str, FlipFlop]:
        return dict(self._flops)

    @property
    def latches(self) -> Mapping[str, Latch]:
        return dict(self._latches)

    @property
    def rams(self) -> Mapping[str, RamMacro]:
        return dict(self._rams)

    def add_gate(self, gate: Gate) -> Gate:
        self._check_instance_name(gate.name)
        self._check_net_undriven(gate.output)
        if len(set(gate.inputs)) != len(gate.inputs) and gate.gtype not in (
            GateType.XOR,
            GateType.XNOR,
        ):
            # Repeated inputs are legal but almost always a generator bug;
            # they are allowed only where they are logically meaningful.
            pass
        self._gates[gate.name] = gate
        self._driver_added(gate.output, "gate", gate)
        return gate

    def add_flop(self, flop: FlipFlop) -> FlipFlop:
        self._check_instance_name(flop.name)
        self._check_net_undriven(flop.q)
        self._flops[flop.name] = flop
        self._clock_nets.add(flop.clock)
        self._driver_added(flop.q, "flop", flop)
        return flop

    def add_latch(self, latch: Latch) -> Latch:
        self._check_instance_name(latch.name)
        self._check_net_undriven(latch.q)
        self._latches[latch.name] = latch
        self._driver_added(latch.q, "latch", latch)
        return latch

    def add_ram(self, ram: RamMacro) -> RamMacro:
        self._check_instance_name(ram.name)
        for net in ram.data_out:
            self._check_net_undriven(net)
        self._rams[ram.name] = ram
        self._clock_nets.add(ram.clock)
        for net in ram.data_out:
            self._driver_added(net, "ram", ram)
        return ram

    def replace_flop(self, name: str, new_flop: FlipFlop) -> FlipFlop:
        """Replace an existing flip-flop (used by scan insertion)."""
        if name not in self._flops:
            raise NetlistError(f"no flip-flop named {name!r}")
        if new_flop.name != name:
            raise NetlistError("replacement flop must keep the instance name")
        old = self._flops[name]
        self._flops[name] = new_flop
        self._clock_nets.add(new_flop.clock)
        if self._driver_cache is not None:
            if old.q != new_flop.q:
                self._driver_cache.pop(old.q, None)
            self._driver_cache[new_flop.q] = ("flop", new_flop)
        self._fanout_cache = None
        return new_flop

    def replace_gate(self, name: str, new_gate: Gate) -> Gate:
        """Replace an existing gate in place (used for rewiring)."""
        if name not in self._gates:
            raise NetlistError(f"no gate named {name!r}")
        if new_gate.name != name:
            raise NetlistError("replacement gate must keep the instance name")
        old = self._gates[name]
        if new_gate.output != old.output:
            self._check_net_undriven(new_gate.output)
        self._gates[name] = new_gate
        if self._driver_cache is not None:
            if old.output != new_gate.output:
                self._driver_cache.pop(old.output, None)
            self._driver_cache[new_gate.output] = ("gate", new_gate)
        self._fanout_cache = None
        return new_gate

    def remove_gate(self, name: str) -> None:
        if name not in self._gates:
            raise NetlistError(f"no gate named {name!r}")
        gate = self._gates.pop(name)
        if self._driver_cache is not None:
            self._driver_cache.pop(gate.output, None)
        self._fanout_cache = None

    # -------------------------------------------------------------- structure
    def has_net(self, net: str) -> bool:
        return net in self.all_nets()

    def all_nets(self) -> set[str]:
        """Every net name referenced anywhere in the design."""
        nets: set[str] = set(self._inputs) | set(self._outputs) | set(self._clock_nets)
        for gate in self._gates.values():
            nets.update(gate.inputs)
            nets.add(gate.output)
        for flop in self._flops.values():
            nets.add(flop.d)
            nets.add(flop.q)
            nets.add(flop.clock)
            if flop.reset:
                nets.add(flop.reset)
            if flop.scan_in:
                nets.add(flop.scan_in)
            if flop.scan_enable:
                nets.add(flop.scan_enable)
        for latch in self._latches.values():
            nets.update((latch.d, latch.q, latch.enable))
        for ram in self._rams.values():
            nets.add(ram.clock)
            nets.add(ram.write_enable)
            nets.update(ram.address)
            nets.update(ram.data_in)
            nets.update(ram.data_out)
        return nets

    def driver_of(self, net: str) -> tuple[str, object] | None:
        """Return ``(kind, element)`` driving a net.

        ``kind`` is one of ``"input"``, ``"gate"``, ``"flop"``, ``"latch"``,
        ``"ram"``.  Returns ``None`` for undriven (floating) nets.
        """
        return self._drivers().get(net)

    def fanout_of(self, net: str) -> list[tuple[str, object]]:
        """All sinks of a net as ``(kind, element)`` pairs (excluding POs)."""
        return list(self._fanouts().get(net, []))

    def sequential_elements(self) -> Iterator[FlipFlop | Latch]:
        yield from self._flops.values()
        yield from self._latches.values()

    def scan_flops(self) -> list[FlipFlop]:
        """Flip-flops that are part of scan chains, in name order."""
        return sorted((f for f in self._flops.values() if f.is_scan), key=lambda f: f.name)

    def nonscan_flops(self) -> list[FlipFlop]:
        return sorted((f for f in self._flops.values() if not f.is_scan), key=lambda f: f.name)

    def topological_gate_order(self) -> list[Gate]:
        """Gates ordered so that every gate appears after its combinational drivers.

        Sequential element outputs, primary inputs, clock nets and RAM outputs
        are treated as sources.  Raises :class:`NetlistError` when the
        combinational logic contains a cycle.
        """
        sources = self._source_nets()
        # Kahn's algorithm over gates.
        producers: dict[str, str] = {g.output: g.name for g in self._gates.values()}
        indegree: dict[str, int] = {}
        dependents: dict[str, list[str]] = defaultdict(list)
        for gate in self._gates.values():
            count = 0
            for net in gate.inputs:
                if net in producers:
                    count += 1
                    dependents[producers[net]].append(gate.name)
                elif net not in sources:
                    # Undriven net: simulators will treat it as X; the
                    # validator reports it, ordering does not care.
                    continue
            indegree[gate.name] = count
        ready = deque(sorted(name for name, deg in indegree.items() if deg == 0))
        order: list[Gate] = []
        while ready:
            name = ready.popleft()
            order.append(self._gates[name])
            for dep in dependents.get(name, ()):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(self._gates):
            cyclic = sorted(set(self._gates) - {g.name for g in order})
            raise NetlistError(f"combinational cycle involving gates: {cyclic[:8]}")
        return order

    def stats(self) -> NetlistStats:
        scan = sum(1 for f in self._flops.values() if f.is_scan)
        return NetlistStats(
            num_gates=len(self._gates),
            num_flops=len(self._flops),
            num_scan_flops=scan,
            num_nonscan_flops=len(self._flops) - scan,
            num_latches=len(self._latches),
            num_rams=len(self._rams),
            num_primary_inputs=len(self._inputs),
            num_primary_outputs=len(self._outputs),
            num_nets=len(self.all_nets()),
        )

    def copy(self, name: str | None = None) -> "Netlist":
        """Deep copy of the netlist, optionally under a new name."""
        duplicate = copy.deepcopy(self)
        if name is not None:
            duplicate.name = name
        return duplicate

    def merge(self, other: "Netlist", prefix: str = "") -> None:
        """Merge another netlist's cells into this one.

        Instance names from ``other`` are prefixed with ``prefix``; net names
        are kept verbatim so the caller controls connectivity by choosing net
        names (this is how CPF blocks are stitched between PLL output nets and
        domain clock nets).
        """
        for gate in other._gates.values():
            self.add_gate(replace(gate, name=prefix + gate.name))
        for flop in other._flops.values():
            self.add_flop(replace(flop, name=prefix + flop.name))
        for latch in other._latches.values():
            self.add_latch(replace(latch, name=prefix + latch.name))
        for ram in other._rams.values():
            self.add_ram(replace(ram, name=prefix + ram.name))
        for net in other._inputs:
            if net not in self._inputs and self.driver_of(net) is None:
                # Only become a primary input if nothing in the merged design drives it.
                self._inputs.append(net)
        for net in other._outputs:
            if net not in self._outputs:
                self._outputs.append(net)
        self._clock_nets.update(other._clock_nets)
        self._invalidate()

    # ------------------------------------------------------------------ utils
    def _source_nets(self) -> set[str]:
        sources: set[str] = set(self._inputs) | set(self._clock_nets)
        for flop in self._flops.values():
            sources.add(flop.q)
        for latch in self._latches.values():
            sources.add(latch.q)
        for ram in self._rams.values():
            sources.update(ram.data_out)
        return sources

    def _drivers(self) -> dict[str, tuple[str, object]]:
        if self._driver_cache is None:
            drivers: dict[str, tuple[str, object]] = {}
            for net in self._inputs:
                drivers[net] = ("input", net)
            for gate in self._gates.values():
                drivers[gate.output] = ("gate", gate)
            for flop in self._flops.values():
                drivers[flop.q] = ("flop", flop)
            for latch in self._latches.values():
                drivers[latch.q] = ("latch", latch)
            for ram in self._rams.values():
                for net in ram.data_out:
                    drivers[net] = ("ram", ram)
            self._driver_cache = drivers
        return self._driver_cache

    def _fanouts(self) -> dict[str, list[tuple[str, object]]]:
        if self._fanout_cache is None:
            fanouts: dict[str, list[tuple[str, object]]] = defaultdict(list)
            for gate in self._gates.values():
                for net in gate.inputs:
                    fanouts[net].append(("gate", gate))
            for flop in self._flops.values():
                sinks = [flop.d, flop.clock]
                if flop.reset:
                    sinks.append(flop.reset)
                if flop.scan_in:
                    sinks.append(flop.scan_in)
                if flop.scan_enable:
                    sinks.append(flop.scan_enable)
                for net in sinks:
                    fanouts[net].append(("flop", flop))
            for latch in self._latches.values():
                for net in (latch.d, latch.enable):
                    fanouts[net].append(("latch", latch))
            for ram in self._rams.values():
                for net in (ram.clock, ram.write_enable, *ram.address, *ram.data_in):
                    fanouts[net].append(("ram", ram))
            self._fanout_cache = dict(fanouts)
        return self._fanout_cache

    def _check_instance_name(self, name: str) -> None:
        if (
            name in self._gates
            or name in self._flops
            or name in self._latches
            or name in self._rams
        ):
            raise NetlistError(f"instance name {name!r} already used")

    def _check_net_undriven(self, net: str) -> None:
        driver = self._drivers().get(net)
        if driver is not None:
            raise NetlistError(f"net {net!r} already driven by {driver[0]} {driver[1]!r}")

    def _invalidate(self) -> None:
        self._driver_cache = None
        self._fanout_cache = None

    def _driver_added(self, net: str, kind: str, cell: object) -> None:
        """Record a new driver incrementally instead of dropping the cache.

        ``add_*`` is the inner loop of every generator; rebuilding the
        driver map per added cell made construction quadratic in design
        size.  The fanout map has no incremental path (sinks are lists) and
        stays lazily rebuilt.
        """
        if self._driver_cache is not None:
            self._driver_cache[net] = (kind, cell)
        self._fanout_cache = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"<Netlist {self.name!r}: {s.num_gates} gates, {s.num_flops} flops, "
            f"{s.num_primary_inputs} PIs, {s.num_primary_outputs} POs>"
        )
