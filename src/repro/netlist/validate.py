"""Design-rule checks for netlists.

The checks mirror what a DFT insertion tool audits before scan stitching and
test generation: undriven nets, multiply-driven nets (already prevented when
building), combinational loops, clocks used as data, flip-flops without a
declared clock, and dangling gate outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.netlist.netlist import Netlist, NetlistError


class RuleSeverity(str, Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class RuleViolation:
    """A single design-rule violation."""

    rule: str
    severity: RuleSeverity
    message: str
    subject: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.rule}: {self.message} ({self.subject})"


@dataclass
class ValidationReport:
    """Aggregated result of :func:`validate_netlist`."""

    violations: list[RuleViolation] = field(default_factory=list)

    @property
    def errors(self) -> list[RuleViolation]:
        return [v for v in self.violations if v.severity is RuleSeverity.ERROR]

    @property
    def warnings(self) -> list[RuleViolation]:
        return [v for v in self.violations if v.severity is RuleSeverity.WARNING]

    @property
    def ok(self) -> bool:
        """True when there are no errors (warnings allowed)."""
        return not self.errors

    def raise_on_error(self) -> None:
        if not self.ok:
            summary = "; ".join(str(v) for v in self.errors[:5])
            raise NetlistError(f"netlist validation failed: {summary}")


def validate_netlist(netlist: Netlist, allow_floating_inputs: bool = False) -> ValidationReport:
    """Run all design-rule checks on a netlist.

    Args:
        netlist: The design to audit.
        allow_floating_inputs: When True, undriven nets feeding gate inputs are
            downgraded from errors to warnings (useful for block-level netlists
            such as a standalone CPF whose PLL clock arrives from outside).

    Returns:
        A :class:`ValidationReport` listing every violation found.
    """
    report = ValidationReport()
    _check_undriven_nets(netlist, report, allow_floating_inputs)
    _check_dangling_outputs(netlist, report)
    _check_combinational_loops(netlist, report)
    _check_clocks(netlist, report)
    _check_scan_consistency(netlist, report)
    return report


def _check_undriven_nets(
    netlist: Netlist, report: ValidationReport, allow_floating_inputs: bool
) -> None:
    severity = RuleSeverity.WARNING if allow_floating_inputs else RuleSeverity.ERROR
    sinks: set[str] = set()
    for gate in netlist.gates.values():
        sinks.update(gate.inputs)
    for flop in netlist.flops.values():
        sinks.add(flop.d)
        if flop.scan_in:
            sinks.add(flop.scan_in)
        if flop.scan_enable:
            sinks.add(flop.scan_enable)
    for latch in netlist.latches.values():
        sinks.add(latch.d)
        sinks.add(latch.enable)
    for ram in netlist.rams.values():
        sinks.update(ram.address)
        sinks.update(ram.data_in)
        sinks.add(ram.write_enable)
    sinks.update(netlist.outputs)
    for net in sorted(sinks):
        if netlist.driver_of(net) is None and net not in netlist.clock_nets:
            report.violations.append(
                RuleViolation(
                    rule="undriven-net",
                    severity=severity,
                    message="net is used as an input but has no driver",
                    subject=net,
                )
            )


def _check_dangling_outputs(netlist: Netlist, report: ValidationReport) -> None:
    loads: set[str] = set(netlist.outputs)
    for gate in netlist.gates.values():
        loads.update(gate.inputs)
    for flop in netlist.flops.values():
        loads.add(flop.d)
        loads.add(flop.clock)
        if flop.reset:
            loads.add(flop.reset)
        if flop.scan_in:
            loads.add(flop.scan_in)
        if flop.scan_enable:
            loads.add(flop.scan_enable)
    for latch in netlist.latches.values():
        loads.add(latch.d)
        loads.add(latch.enable)
    for ram in netlist.rams.values():
        loads.update(ram.address)
        loads.update(ram.data_in)
        loads.add(ram.write_enable)
        loads.add(ram.clock)
    for gate in netlist.gates.values():
        if gate.output not in loads:
            report.violations.append(
                RuleViolation(
                    rule="dangling-output",
                    severity=RuleSeverity.WARNING,
                    message="gate output drives nothing",
                    subject=gate.name,
                )
            )


def _check_combinational_loops(netlist: Netlist, report: ValidationReport) -> None:
    try:
        netlist.topological_gate_order()
    except NetlistError as exc:
        report.violations.append(
            RuleViolation(
                rule="combinational-loop",
                severity=RuleSeverity.ERROR,
                message=str(exc),
                subject=netlist.name,
            )
        )


def _check_clocks(netlist: Netlist, report: ValidationReport) -> None:
    for flop in netlist.flops.values():
        if not flop.clock:
            report.violations.append(
                RuleViolation(
                    rule="missing-clock",
                    severity=RuleSeverity.ERROR,
                    message="flip-flop has no clock net",
                    subject=flop.name,
                )
            )
    # Clock used as data input of a gate is usually a clock-gating structure;
    # flag it as a warning so the CPF (which legitimately does this) is visible.
    clock_nets = netlist.clock_nets
    for gate in netlist.gates.values():
        for net in gate.inputs:
            if net in clock_nets:
                report.violations.append(
                    RuleViolation(
                        rule="clock-as-data",
                        severity=RuleSeverity.WARNING,
                        message=f"clock net {net!r} feeds a combinational gate",
                        subject=gate.name,
                    )
                )
                break


def _check_scan_consistency(netlist: Netlist, report: ValidationReport) -> None:
    for flop in netlist.flops.values():
        has_si = flop.scan_in is not None
        has_se = flop.scan_enable is not None
        if has_si != has_se:
            report.violations.append(
                RuleViolation(
                    rule="partial-scan-cell",
                    severity=RuleSeverity.ERROR,
                    message="scan cell must have both scan_in and scan_enable",
                    subject=flop.name,
                )
            )
        if flop.is_scan and not flop.scannable:
            report.violations.append(
                RuleViolation(
                    rule="nonscan-stitched",
                    severity=RuleSeverity.ERROR,
                    message="flip-flop marked non-scannable but stitched into a chain",
                    subject=flop.name,
                )
            )
