"""Deprecated: netlist design-rule checks, absorbed by :mod:`repro.analyze`.

This module survives as a compatibility shim: :func:`validate_netlist` now
delegates to the rule registry (``repro.analyze.lint_netlist``) and converts
the resulting findings back into the legacy :class:`RuleViolation` shape,
emitting a :class:`DeprecationWarning` at the caller.  New code should use
:func:`repro.analyze.lint_netlist`, which adds waivers, JSON round-tripping,
per-loop SCC reporting and the rest of the rule catalogue.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from enum import Enum

from repro.netlist.netlist import Netlist, NetlistError


class RuleSeverity(str, Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class RuleViolation:
    """A single design-rule violation (legacy shape)."""

    rule: str
    severity: RuleSeverity
    message: str
    subject: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.rule}: {self.message} ({self.subject})"


@dataclass
class ValidationReport:
    """Aggregated result of :func:`validate_netlist` (legacy shape)."""

    violations: list[RuleViolation] = field(default_factory=list)

    @property
    def errors(self) -> list[RuleViolation]:
        return [v for v in self.violations if v.severity is RuleSeverity.ERROR]

    @property
    def warnings(self) -> list[RuleViolation]:
        return [v for v in self.violations if v.severity is RuleSeverity.WARNING]

    @property
    def ok(self) -> bool:
        """True when there are no errors (warnings allowed)."""
        return not self.errors

    def raise_on_error(self) -> None:
        if not self.ok:
            summary = "; ".join(str(v) for v in self.errors[:5])
            raise NetlistError(f"netlist validation failed: {summary}")


def validate_netlist(netlist: Netlist, allow_floating_inputs: bool = False) -> ValidationReport:
    """Deprecated shim over :func:`repro.analyze.lint_netlist`.

    Args:
        netlist: The design to audit.
        allow_floating_inputs: When True, undriven nets feeding gate inputs are
            downgraded from errors to warnings (useful for block-level netlists
            such as a standalone CPF whose PLL clock arrives from outside).

    Returns:
        A :class:`ValidationReport` listing every violation found.
    """
    warnings.warn(
        "validate_netlist is deprecated; use repro.analyze.lint_netlist "
        "(rule registry with waivers and JSON reports)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.analyze import Severity, lint_netlist

    report = lint_netlist(netlist, allow_floating_inputs=allow_floating_inputs)
    violations = [
        RuleViolation(
            rule=finding.rule,
            severity=RuleSeverity(finding.severity.value),
            message=finding.message,
            subject=finding.subject,
        )
        for finding in report.findings
        if finding.severity in (Severity.ERROR, Severity.WARNING)
    ]
    return ValidationReport(violations=violations)
