"""The unified execution plane: one ``Executor`` for every run path.

Before this module the repo had four independently written dispatch loops —
``TestSession.run`` (scenario fan-out with its own process-pool setup and a
silent threads fallback), ``TestSession.diagnose`` (memoised schedulers),
``Campaign.run`` and ``Campaign.diagnose`` (worker-global caches, per-cell
resume) — each reimplementing cache probing, fallback and result assembly.
They are now *plan compilers*; this executor owns the one copy of:

* **topological scheduling** — jobs run in dependency waves over the engine's
  :class:`~repro.engine.scheduler.Backend` protocol (``serial`` / ``threads``
  / ``processes``); single-job waves always run in-process (spinning a pool
  for one job costs more than it buys, matching the historical front doors);
* **cache-aware skipping** — jobs whose ``cache_key`` is present in the
  attached :class:`~repro.engine.cache.ResultCache` are skipped with their
  cached value, so an interrupted plan resumes without redoing completed
  work (and ``if_needed`` provider jobs whose consumers were all satisfied
  are pruned entirely — no design build, no ATPG);
* **streaming events** — ``job_started`` / ``job_finished`` / ``job_skipped``
  / ``plan_progress`` callbacks fire on the calling thread as each job
  resolves (see :mod:`repro.runtime.events`);
* **cancellation** — :meth:`Executor.cancel` (callable from an event
  callback) stops scheduling new jobs; running jobs finish and are recorded,
  so a cancelled plan resumes cleanly from the cache;
* **retry and spill** — per-job retries run next to the work (inside the
  worker), and the processes→threads fallback on result-transport failures
  lives here once instead of per entry point, recorded in
  :attr:`PlanResult.fallbacks` so degraded runs are detectable in CI.
"""

from __future__ import annotations

import importlib
import os
import pickle
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.engine.cache import ResultCache, coerce_cache
from repro.engine.scheduler import (
    ProcessBackend,
    ThreadBackend,
    backend_factory,
    has_backend_factory,
    is_result_transport_error,
    validate_pool_size,
)
from repro.obs.telemetry import (
    Telemetry,
    active_metrics,
    active_tracer,
    coerce_telemetry,
    get_telemetry,
)
from repro.runtime.events import Event
from repro.runtime.plan import Job, Plan, handler_for, handler_module

#: Built-in plan fan-out backends (the engine backend set minus ``compiled``,
#: which only makes sense *inside* fault simulation).  Backends registered
#: via :func:`~repro.engine.scheduler.register_backend` (e.g. the serve
#: plane's ``remote``) are accepted in addition to these.
EXECUTOR_BACKENDS = ("serial", "threads", "processes")


class PlanCancelled(RuntimeError):
    """Raised by report assemblers when a cancelled plan left jobs unrun."""


@dataclass
class JobResult:
    """One job's resolution inside a :class:`PlanResult`."""

    job: str
    value: Any = None
    skipped: bool = False
    #: ``"cache"`` / ``"seed"`` / ``"unneeded"`` for skipped jobs, else None.
    reason: str | None = None
    cache_key: str | None = None
    wall_seconds: float = 0.0
    attempts: int = 1


@dataclass
class PlanResult:
    """Everything one :meth:`Executor.execute` call produced."""

    plan: str
    backend: str
    results: dict[str, JobResult] = field(default_factory=dict)
    #: Every job id the executed plan declared (resolved or not).
    jobs: tuple[str, ...] = ()
    cancelled: bool = False
    #: One record per degraded wave: ``{"requested", "used", "reason"}``.
    fallbacks: list[dict[str, str]] = field(default_factory=list)
    wall_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self.results

    def __getitem__(self, job_id: str) -> JobResult:
        try:
            return self.results[job_id]
        except KeyError:
            if self.jobs and job_id not in self.jobs:
                # A typo'd lookup on a healthy plan is a KeyError, not a
                # cancellation signal.
                raise KeyError(
                    f"plan {self.plan!r} has no job {job_id!r} "
                    f"(jobs: {sorted(self.jobs)})"
                ) from None
            state = "cancelled before it ran" if self.cancelled else "never resolved"
            raise PlanCancelled(
                f"plan {self.plan!r}: job {job_id!r} {state} "
                f"(resolved: {sorted(self.results) or '<none>'})"
            ) from None

    def value_of(self, job_id: str) -> Any:
        return self[job_id].value

    def executed(self) -> list[str]:
        """Ids of the jobs that actually ran (completion order)."""
        return [r.job for r in self.results.values() if not r.skipped]

    def skipped(self, reason: str | None = None) -> list[str]:
        """Ids of the skipped jobs (optionally filtered by skip reason)."""
        return [
            r.job
            for r in self.results.values()
            if r.skipped and (reason is None or r.reason == reason)
        ]


# --------------------------------------------------------------------------
# Shared job running (inline, thread workers and process workers)
# --------------------------------------------------------------------------
def _call_with_retries(
    handler: Callable,
    resources: dict,
    params: Mapping[str, Any],
    deps: dict[str, Any],
    retries: int,
) -> tuple[Any, int, float]:
    """Run one handler, retrying next to the work.

    Returns ``(value, attempts, wall_seconds)`` — timed here, at the work
    itself, so pooled dispatch never inflates a job's wall time with queue
    wait or its wave-mates' runtime.
    """
    attempt = 1
    started = time.perf_counter()
    while True:
        try:
            return handler(resources, params, deps), attempt, (
                time.perf_counter() - started
            )
        except Exception:
            if attempt > retries:
                raise
            attempt += 1


#: Worker-global plan resources, shipped once per process by the initializer.
_WORKER_RESOURCES: dict | None = None

#: Worker-global dependency values, keyed by job id — a provider's result
#: (e.g. a pattern set feeding many diagnosis jobs) is deserialized at most
#: once per worker, no matter how many consumers land on it.  Safe because a
#: worker pool never outlives the ``execute()`` call that created it, and
#: job ids are unique within a plan.
_WORKER_DEPS: dict[str, Any] = {}


def _plan_worker_init(resources_payload: bytes) -> None:
    global _WORKER_RESOURCES
    _WORKER_RESOURCES = pickle.loads(resources_payload)
    _WORKER_DEPS.clear()


def _plan_worker_run(payload: bytes) -> tuple[Any, int, float]:
    """Process-pool entry point: resolve the handler and run one job.

    The handler's defining module is imported first so its
    ``register_job_kind`` call has run in this interpreter; the job payload
    carries only JSON-ish params plus per-dependency pickle blobs (made once
    per wave in the parent, unpickled once per worker).
    """
    kind, module, params, dep_blobs, retries = pickle.loads(payload)
    importlib.import_module(module)
    resources = _WORKER_RESOURCES if _WORKER_RESOURCES is not None else {}
    deps: dict[str, Any] = {}
    for dep_id, blob in dep_blobs.items():
        if dep_id not in _WORKER_DEPS:
            _WORKER_DEPS[dep_id] = pickle.loads(blob)
        deps[dep_id] = _WORKER_DEPS[dep_id]
    return _call_with_retries(handler_for(kind), resources, params, deps, retries)


# --------------------------------------------------------------------------
# The executor
# --------------------------------------------------------------------------
class Executor:
    """Runs :class:`~repro.runtime.plan.Plan` graphs on a chosen backend.

    One executor is reusable across plans (``cancel()`` state resets per
    ``execute``).  Worker pools are created lazily per execution and closed
    when it finishes.

    Args:
        backend: One of :data:`EXECUTOR_BACKENDS`, or a backend registered
            with :func:`~repro.engine.scheduler.register_backend` (such
            backends dispatch exactly like ``processes`` — picklable wave
            payloads shipped through the factory-built backend, with the
            same threads spill on transport failure).
        max_workers: Pool size for the pooled backends (``None`` == one
            thread per wave job for ``threads``, the engine's auto sizing
            for ``processes``).
        cache: A :class:`~repro.engine.cache.ResultCache` (or anything
            :func:`~repro.engine.cache.coerce_cache` accepts) used to skip
            jobs whose ``cache_key`` already resolves and to store fresh
            results.
        retries: Default extra attempts for jobs that do not pin their own.
        on_event: Callback receiving every :class:`~repro.runtime.Event`.
        backend_options: Extra keyword options forwarded to a registered
            backend's factory (ignored by the built-ins) — e.g. the remote
            backend's server address.
        telemetry: A :class:`~repro.obs.Telemetry` (or ``True`` for a fresh
            enabled one).  ``None`` defers to the ambient telemetry
            activated by the calling front door (session/campaign), so an
            executor owned by a ``with_telemetry()`` session traces without
            being configured itself.
    """

    def __init__(
        self,
        backend: str = "serial",
        *,
        max_workers: int | None = None,
        cache: "ResultCache | str | bool | None" = None,
        retries: int = 0,
        on_event: "Callable[[Event], None] | None" = None,
        backend_options: "Mapping[str, Any] | None" = None,
        telemetry: "Telemetry | bool | None" = None,
    ) -> None:
        if backend not in EXECUTOR_BACKENDS and not has_backend_factory(backend):
            raise ValueError(
                f"unknown executor backend {backend!r} "
                f"(expected one of {EXECUTOR_BACKENDS} or a registered backend)"
            )
        self.backend = backend
        self.backend_options = dict(backend_options) if backend_options else {}
        self.max_workers = validate_pool_size("workers", max_workers)
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.cache = coerce_cache(cache)
        self.retries = retries
        self.on_event = on_event
        self.telemetry = coerce_telemetry(telemetry)
        self._cancel = threading.Event()
        self._sinks: dict[int, Callable[[Event], None]] = {}
        self._sink_lock = threading.Lock()
        self._sink_seq = 0

    # -------------------------------------------------------------- control
    def effective_cache(
        self, override: "ResultCache | None" = None
    ) -> "ResultCache | None":
        """The cache a plan execution will actually use.

        One home for the precedence rule — an explicit override (the
        session's/campaign's own cache) wins, else the executor's.  The API
        front doors use this for their provenance metadata so it can never
        drift from what ``execute`` does.
        """
        return override if override is not None else self.cache

    def cancel(self) -> None:
        """Stop scheduling new jobs (running jobs finish and are recorded)."""
        self._cancel.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    # ----------------------------------------------------------- event sinks
    def add_event_sink(self, sink: "Callable[[Event], None]") -> int:
        """Attach a detachable event sink; returns a token for removal.

        Sinks differ from the constructor's ``on_event`` listener in the two
        ways a *service* needs: they can be attached and detached while a
        plan is running (the serve plane wraps each queued execution in its
        journal writer), and a sink that raises is skipped for that event
        instead of failing the plan — an observer must never take down the
        execution it observes.  Sinks receive every event the listeners do,
        on the same (calling) thread, after the listeners.
        """
        with self._sink_lock:
            self._sink_seq += 1
            self._sinks[self._sink_seq] = sink
            return self._sink_seq

    def remove_event_sink(self, token: int) -> bool:
        """Detach a sink by its token; returns whether it was attached."""
        with self._sink_lock:
            return self._sinks.pop(token, None) is not None

    # ------------------------------------------------------------ execution
    def execute(
        self,
        plan: Plan,
        resources: "dict[str, Any] | None" = None,
        *,
        cache: "ResultCache | None" = None,
        seeds: "Mapping[str, Any] | None" = None,
        on_event: "Callable[[Event], None] | None" = None,
    ) -> PlanResult:
        """Run every job of ``plan`` and return the streamed results.

        Args:
            plan: The compiled job graph.
            resources: Runtime bindings the job handlers read (defaults to
                ``plan.resources``).  The dict is shared — handlers memoise
                built designs into it, so reusing one resources dict across
                executions reuses the builds.
            cache: Result cache override (``None`` == the executor's own).
            seeds: Pre-resolved job values (``{job_id: value}``) — skipped
                with reason ``"seed"``; the in-memory analogue of a cache
                hit (e.g. a session artifact from an earlier run).
            on_event: Extra event callback for this execution only.
        """
        # The executor's own telemetry wins; otherwise whatever the calling
        # front door activated (NULL when nobody did).  Activating here makes
        # it ambient for handlers running inline or on worker threads.
        telemetry = self.telemetry if self.telemetry else get_telemetry()
        with telemetry.activate(), telemetry.tracer.span(
            f"plan:{plan.name}", backend=self.backend, jobs=len(plan.jobs)
        ):
            return self._execute(
                plan, resources, cache=cache, seeds=seeds,
                on_event=on_event, tracer=telemetry.tracer,
            )

    def _execute(
        self,
        plan: Plan,
        resources: "dict[str, Any] | None" = None,
        *,
        cache: "ResultCache | None" = None,
        seeds: "Mapping[str, Any] | None" = None,
        on_event: "Callable[[Event], None] | None" = None,
        tracer: Any = None,
    ) -> PlanResult:
        started = time.perf_counter()
        tracer = tracer if tracer is not None else active_tracer()
        self._cancel.clear()
        resources = resources if resources is not None else (plan.resources or {})
        cache = self.effective_cache(cache)
        seeds = seeds or {}

        listeners = [cb for cb in (self.on_event, on_event) if cb is not None]
        outcome = PlanResult(
            plan=plan.name,
            backend=self.backend,
            jobs=tuple(job.id for job in plan.jobs),
        )
        total = len(plan.jobs)

        def emit(kind: str, job: "Job | None" = None, **extra: Any) -> None:
            event = Event(
                kind=kind,
                plan=plan.name,
                job=job.id if job is not None else None,
                completed=len(outcome.results),
                total=total,
                **extra,
            )
            for listener in listeners:
                listener(event)
            with self._sink_lock:
                sinks = list(self._sinks.values())
            for sink in sinks:
                try:
                    sink(event)
                except Exception:  # noqa: BLE001 - observers never fail the run
                    metrics = active_metrics()
                    if metrics is not None:
                        metrics.inc("executor.sink_errors")

        def resolve(job: Job, result: JobResult, kind: str, **extra: Any) -> None:
            outcome.results[job.id] = result
            if result.skipped:
                # Skipped jobs still show in the trace (duration == the cache
                # probe that served them) so "one span per job" holds.
                tracer.record(f"job:{job.id}", duration=result.wall_seconds,
                              kind=job.kind, skipped=True, reason=result.reason)
            emit(kind, job, value=result.value, reason=result.reason, **extra)
            emit("plan_progress")

        emit("plan_started")
        ordered = plan.topological_order()

        def probe(job: Job) -> None:
            """Resolve one job from seeds or the cache, if possible."""
            if job.id in seeds:
                resolve(
                    job,
                    JobResult(job=job.id, value=seeds[job.id], skipped=True,
                              reason="seed", cache_key=job.cache_key),
                    "job_skipped",
                )
            elif cache is not None and job.cache_key is not None:
                # Timed so cache-served plans still report where their wall
                # time went: the probe duration is the skip's wall_seconds.
                probe_started = time.perf_counter()
                value = cache.get(job.cache_key)
                probe_wall = time.perf_counter() - probe_started
                if value is not None:
                    resolve(
                        job,
                        JobResult(job=job.id, value=value, skipped=True,
                                  reason="cache", cache_key=job.cache_key,
                                  wall_seconds=probe_wall),
                        "job_skipped",
                        wall_seconds=probe_wall,
                    )

        # Probe pass (consumers first, plan order): seeds and cache hits
        # resolve before any work starts.  ``if_needed`` providers are NOT
        # probed yet — a provider whose consumers are all satisfied must be
        # pruned without ever touching (and deserializing) its cache entry.
        for job in ordered:
            if not job.if_needed:
                probe(job)

        # Prune pass: providers whose dependents are all already satisfied
        # never run (reverse topological order cascades through chains).
        dependents = plan.dependents()
        for job in reversed(ordered):
            if not job.if_needed or job.id in outcome.results:
                continue
            if all(dep_id in outcome.results for dep_id in dependents[job.id]):
                resolve(
                    job,
                    JobResult(job=job.id, value=None, skipped=True,
                              reason="unneeded", cache_key=job.cache_key),
                    "job_skipped",
                )

        # Second probe pass: providers that survived pruning (some consumer
        # must run) may still be served from seeds or the cache.
        for job in ordered:
            if job.if_needed and job.id not in outcome.results:
                probe(job)

        # Wave scheduling: run every ready job, repeat until done/cancelled.
        pending = [job for job in ordered if job.id not in outcome.results]
        pool_hint = self._widest_wave(ordered, outcome)
        # Designs the remaining jobs actually reference (the "designs"
        # resource convention) — process workers only receive these, so a
        # mostly cache-resolved plan never ships untouched prebuilt designs.
        design_hint = {
            job.params["design"] for job in pending if "design" in job.params
        }
        backends: dict[str, Any] = {}
        wave_index = 0
        try:
            while pending and not self._cancel.is_set():
                wave = [
                    job for job in pending
                    if all(dep in outcome.results for dep in job.deps)
                ]
                assert wave, "plan validation guarantees progress on a DAG"
                with tracer.span(f"wave:{wave_index}", jobs=len(wave)):
                    self._run_wave(wave, resources, cache, outcome, emit,
                                   resolve, backends, pool_hint, design_hint)
                wave_index += 1
                pending = [job for job in pending if job.id not in outcome.results]
        finally:
            for backend in backends.values():
                backend.close()
            outcome.cancelled = self._cancel.is_set() and bool(pending)
            outcome.wall_seconds = time.perf_counter() - started
            emit("plan_finished", wall_seconds=outcome.wall_seconds,
                 skipped=len(outcome.skipped()))
        return outcome

    # ---------------------------------------------------------------- waves
    def _dep_values(self, job: Job, outcome: PlanResult) -> dict[str, Any]:
        return {dep: outcome.results[dep].value for dep in job.deps}

    @staticmethod
    def _widest_wave(ordered: Sequence[Job], outcome: PlanResult) -> int:
        """The largest dependency level still to run — the pool-sizing hint.

        Computed once per execution so the process pool (created at the
        first pooled wave and reused) is sized for the whole plan, not just
        its first wave (e.g. a few pattern providers followed by many
        diagnosis jobs).
        """
        levels: dict[str, int] = {}
        widths: dict[int, int] = {}
        for job in ordered:
            if job.id in outcome.results:
                levels[job.id] = 0
                continue
            level = 1 + max((levels.get(dep, 0) for dep in job.deps), default=0)
            levels[job.id] = level
            widths[level] = widths.get(level, 0) + 1
        return max(widths.values(), default=0)

    @staticmethod
    def _failed_job(
        wave: Sequence[Job], outcome: PlanResult, exc: BaseException
    ) -> "Job | None":
        """The wave job a pooled exception belongs to.

        The backend tags the failing task's index on the exception
        (``task_index``); the first unresolved wave job is only the fallback
        when the tag is missing.
        """
        index = getattr(exc, "task_index", None)
        if isinstance(index, int) and 0 <= index < len(wave):
            return wave[index]
        for job in wave:
            if job.id not in outcome.results:
                return job
        return None

    def _job_retries(self, job: Job) -> int:
        return job.retries or self.retries

    def _store(self, job: Job, value: Any, cache: "ResultCache | None") -> None:
        if cache is not None and job.cache_key is not None:
            cache.put(job.cache_key, value, label=job.label or job.id)

    def _land(
        self,
        job: Job,
        result: tuple[Any, int, float],
        cache: "ResultCache | None",
        resolve: Callable,
    ) -> None:
        """Record one pooled job's landed result (shared by both wave runners)."""
        value, attempts, wall = result
        if attempts > 1:
            metrics = active_metrics()
            if metrics is not None:
                metrics.inc("executor.retries", attempts - 1)
        self._store(job, value, cache)
        resolve(
            job,
            JobResult(job=job.id, value=value, cache_key=job.cache_key,
                      wall_seconds=wall, attempts=attempts),
            "job_finished",
            wall_seconds=wall,
        )

    def _land_remote(
        self,
        job: Job,
        result: tuple[Any, int, float],
        cache: "ResultCache | None",
        resolve: Callable,
    ) -> None:
        """Land a process-worker job, folding its measured wall into the trace.

        Workers run with no ambient telemetry, so the job span is recorded
        here on the landing thread — anchored at landing minus the wall time
        measured next to the work, parented to the current wave span.
        """
        active_tracer().record(
            f"job:{job.id}", duration=result[2], kind=job.kind,
            attempts=result[1], remote=True,
        )
        self._land(job, result, cache, resolve)

    def _run_inline(
        self,
        jobs: Sequence[Job],
        resources: dict,
        cache: "ResultCache | None",
        outcome: PlanResult,
        emit: Callable,
        resolve: Callable,
    ) -> None:
        """Serial in-process execution (also the single-job fast path)."""
        tracer = active_tracer()
        for job in jobs:
            if self._cancel.is_set():
                return
            emit("job_started", job)
            try:
                with tracer.span(f"job:{job.id}", kind=job.kind):
                    result = _call_with_retries(
                        handler_for(job.kind), resources, job.params,
                        self._dep_values(job, outcome), self._job_retries(job),
                    )
            except Exception as exc:
                emit("job_failed", job, reason=f"{type(exc).__name__}: {exc}")
                raise
            self._land(job, result, cache, resolve)

    def _run_wave(
        self,
        wave: list[Job],
        resources: dict,
        cache: "ResultCache | None",
        outcome: PlanResult,
        emit: Callable,
        resolve: Callable,
        backends: dict,
        pool_hint: int = 0,
        design_hint: "set[str] | None" = None,
    ) -> None:
        """Dispatch one dependency wave on the configured backend."""
        if self.backend == "serial" or len(wave) == 1:
            self._run_inline(wave, resources, cache, outcome, emit, resolve)
            return
        if self.backend == "processes" or has_backend_factory(self.backend):
            announced = self._run_wave_shipped(
                wave, resources, cache, outcome, emit, resolve, backends,
                outcome.fallbacks, pool_hint, design_hint,
            )
            if announced is True:
                return
            # Degraded (recorded + warned): fall through to the thread pool.
            # ``announced`` says whether job_started events already fired for
            # this wave — never announce a job twice.
            wave = [job for job in wave if job.id not in outcome.results]
            if not wave:
                return
            self._run_wave_threads(wave, resources, cache, outcome, emit,
                                   resolve, backends, announce=announced is None)
            return
        self._run_wave_threads(wave, resources, cache, outcome, emit, resolve, backends)

    def _thread_backend(self, backends: dict, wave_size: int) -> ThreadBackend:
        backend = backends.get("threads")
        size = self.max_workers or wave_size
        if backend is None:
            backend = backends["threads"] = ThreadBackend(size)
        elif self.max_workers is None and size > backend.max_workers:
            # Auto sizing tracks the widest wave (e.g. a few pattern
            # providers followed by many diagnosis jobs) — grow the pool
            # rather than bottleneck the bigger wave on the first wave's size.
            backend.close()
            backend = backends["threads"] = ThreadBackend(size)
        return backend

    def _run_wave_threads(
        self,
        wave: list[Job],
        resources: dict,
        cache: "ResultCache | None",
        outcome: PlanResult,
        emit: Callable,
        resolve: Callable,
        backends: dict,
        announce: bool = True,
    ) -> None:
        deps = [self._dep_values(job, outcome) for job in wave]
        if announce:
            for job in wave:
                emit("job_started", job)
        # Worker threads have their own (empty) span stacks: pin the wave
        # span open on *this* thread as every job span's parent, so spans
        # opened inside the handler (stages, shards) still nest correctly.
        tracer = active_tracer()
        wave_span = tracer.current_id()

        def task(index: int) -> tuple[Any, int, float]:
            job = wave[index]
            with tracer.span(f"job:{job.id}", parent=wave_span, kind=job.kind):
                return _call_with_retries(
                    handler_for(job.kind), resources, job.params,
                    deps[index], self._job_retries(job),
                )

        try:
            self._thread_backend(backends, len(wave)).run_tasks(
                task, range(len(wave)),
                on_result=lambda i, r: self._land(wave[i], r, cache, resolve),
                should_stop=self._cancel.is_set,
            )
        except Exception as exc:
            failed = self._failed_job(wave, outcome, exc)
            if failed is not None:
                emit("job_failed", failed, reason=f"{type(exc).__name__}: {exc}")
            raise

    def _run_wave_shipped(
        self,
        wave: list[Job],
        resources: dict,
        cache: "ResultCache | None",
        outcome: PlanResult,
        emit: Callable,
        resolve: Callable,
        backends: dict,
        fallbacks: list,
        pool_hint: int = 0,
        design_hint: "set[str] | None" = None,
    ) -> "bool | None":
        """Shipped wave (``processes`` or a registered backend); non-True ==
        spill this wave in-process.

        "Shipped" means the wave crosses a process (or machine) boundary:
        payloads and dependency values are pickled once per wave in the
        parent, resources once per pool via the initializer — identical for
        the local process pool and for a registered backend like ``remote``,
        which is what makes their results interchangeable.

        Only payload pickling problems and result-transport failures spill
        (the historical per-entry-point fallback, centralised): genuine job
        exceptions propagate unchanged.  Returns ``True`` when the wave
        completed, ``None`` when it spilled before any ``job_started`` event
        fired (payload pickling), ``False`` when it spilled mid-flight
        (result transport — starts were already announced).
        """
        try:
            # Each distinct dependency value is serialized once per wave and
            # its blob shared by every consumer's payload (a bytes copy, not
            # a re-pickle); workers mirror this with a once-per-worker
            # unpickle memo.
            dep_blobs: dict[str, bytes] = {}
            for job in wave:
                for dep in job.deps:
                    if dep not in dep_blobs:
                        dep_blobs[dep] = pickle.dumps(outcome.results[dep].value)
            payloads = [
                pickle.dumps((
                    job.kind, handler_module(job.kind), dict(job.params),
                    {dep: dep_blobs[dep] for dep in job.deps},
                    self._job_retries(job),
                ))
                for job in wave
            ]
            backend = backends.get(self.backend)
            if backend is None:
                shippable = {
                    key: value for key, value in resources.items()
                    if not key.startswith("_") and key != "scheduler"
                }
                designs = shippable.get("designs")
                if design_hint and isinstance(designs, dict):
                    # Ship only the designs the remaining jobs reference —
                    # cache-resolved cells must not pay to transfer their
                    # (potentially heavy, prebuilt) designs to every worker.
                    shippable["designs"] = {
                        name: value for name, value in designs.items()
                        if name in design_hint
                    }
                # Auto sizing: one worker per job of the plan's widest wave,
                # bounded by the core count (oversubscribing CPU-bound ATPG
                # buys nothing) — restores the historical one-process-per-
                # scenario session fan-out on big machines.
                size = self.max_workers or max(
                    1, min(pool_hint or len(wave), os.cpu_count() or 1)
                )
                if self.backend == "processes":
                    backend = ProcessBackend(
                        size,
                        initializer=_plan_worker_init,
                        initargs=(pickle.dumps(shippable),),
                    )
                else:
                    backend = backend_factory(self.backend)(
                        max_workers=size,
                        initializer=_plan_worker_init,
                        initargs=(pickle.dumps(shippable),),
                        options=self.backend_options,
                    )
                backends[self.backend] = backend
        except (pickle.PickleError, TypeError, AttributeError) as exc:
            self._spill(fallbacks, f"plan payloads are not picklable ({exc})")
            return None

        for job in wave:
            emit("job_started", job)

        try:
            backend.run_tasks(
                _plan_worker_run, payloads,
                on_result=lambda i, r: self._land_remote(wave[i], r, cache, resolve),
                should_stop=self._cancel.is_set,
            )
        except Exception as exc:
            if not is_result_transport_error(exc):
                failed = self._failed_job(wave, outcome, exc)
                if failed is not None:
                    emit("job_failed", failed,
                         reason=f"{type(exc).__name__}: {exc}")
                raise
            # The pool is no longer trustworthy; jobs already resolved via
            # ``landed`` stay, the remainder spills to the thread pool.
            backends.pop(self.backend, None)
            backend.close()
            self._spill(
                fallbacks,
                f"a job result could not be returned from a worker ({exc})",
            )
            return False
        return True

    def _spill(self, fallbacks: list, reason: str) -> None:
        metrics = active_metrics()
        if metrics is not None:
            metrics.inc("executor.backend_fallbacks")
        fallbacks.append(
            {"requested": self.backend, "used": "threads", "reason": reason}
        )
        warnings.warn(
            f"{reason}; falling back to the threads backend",
            RuntimeWarning,
            stacklevel=3,
        )
