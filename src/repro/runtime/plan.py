"""Declarative execution plans: frozen, JSON-round-trippable job graphs.

A :class:`Plan` is the common currency of the execution plane.  The API
front doors (``TestSession.run``/``diagnose``, ``Campaign.run``/``diagnose``)
no longer own dispatch loops — they *compile* their work into a plan of
:class:`Job` nodes and hand it to one
:class:`~repro.runtime.executor.Executor`.  A job is pure description:

* ``kind`` names a registered **job handler** (``"scenario"``,
  ``"diagnosis"``, or any custom kind registered with
  :func:`register_job_kind`);
* ``params`` is a JSON-safe mapping the handler interprets, referencing
  heavyweight runtime objects (prepared designs, scenario specs, option
  bundles) by name through the plan's **resources** binding;
* ``deps`` are job ids whose results the handler receives;
* ``cache_key`` is the job's engine-cache identity
  (:mod:`repro.engine.cache`) — the executor skips any job whose key is
  already present in the attached :class:`~repro.engine.cache.ResultCache`,
  which is what makes interrupted plans resume without redoing work.

``Plan.resources`` carries the runtime bindings (not serialized — a plan
restored via :meth:`Plan.from_json` must be re-bound by its compiler or
executed with an explicit ``resources=`` argument).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Mapping

from repro.engine.cache import plan_fingerprint

# --------------------------------------------------------------------------
# Job-kind registry
# --------------------------------------------------------------------------
#: Registered job handlers: ``kind -> callable(resources, params, deps)``.
JOB_KINDS: dict[str, Callable[[dict, Mapping[str, Any], dict], Any]] = {}


class JobKindNotFound(KeyError):
    """Raised when a plan references an unregistered job kind."""


def register_job_kind(
    kind: str, handler: Callable | None = None
) -> Callable:
    """Register a job handler under ``kind`` (usable as a decorator).

    A handler is a module-level callable ``handler(resources, params, deps)``
    — module-level so process-pool workers can re-import its module and find
    the registration.  ``resources`` is the plan's (mutable, per-execution)
    binding dict, ``params`` the job's JSON-safe parameters, and ``deps``
    maps each dependency's job id to its result value.
    """

    def _register(fn: Callable) -> Callable:
        JOB_KINDS[kind] = fn
        return fn

    return _register(handler) if handler is not None else _register


def handler_for(kind: str) -> Callable:
    try:
        return JOB_KINDS[kind]
    except KeyError:
        raise JobKindNotFound(
            f"no job handler registered for kind {kind!r} "
            f"(registered: {sorted(JOB_KINDS) or '<none>'})"
        ) from None


def handler_module(kind: str) -> str:
    """The module that registered ``kind`` (imported by pool workers)."""
    return handler_for(kind).__module__


# --------------------------------------------------------------------------
# Jobs
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Job:
    """One frozen node of a plan.

    Attributes:
        id: Plan-unique identifier.
        kind: Registered handler name (see :func:`register_job_kind`).
        params: JSON-safe handler parameters.
        deps: Ids of jobs whose results this job consumes.
        cache_key: Engine-cache identity (``None`` == never cached).
        label: Human-readable tag (also the cache entry's label).
        retries: Extra attempts granted on failure (0 == fail fast; the
            executor's own ``retries`` default applies when 0).
        if_needed: Provider-only job — skipped (reason ``"unneeded"``) when
            every dependent is already satisfied without running, e.g. a
            pattern-generation job whose diagnosis consumers were all served
            from the cache.
    """

    id: str
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    deps: tuple[str, ...] = ()
    cache_key: str | None = None
    label: str = ""
    retries: int = 0
    if_needed: bool = False

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("a job needs a non-empty id")
        if not self.kind:
            raise ValueError(f"job {self.id!r} needs a kind")
        if self.retries < 0:
            raise ValueError(f"job {self.id!r}: retries must be non-negative")
        if not isinstance(self.deps, tuple):
            object.__setattr__(self, "deps", tuple(self.deps))

    def with_overrides(self, **changes: Any) -> "Job":
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "params": dict(self.params),
            "deps": list(self.deps),
            "cache_key": self.cache_key,
            "label": self.label,
            "retries": self.retries,
            "if_needed": self.if_needed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        payload = dict(data)
        payload["deps"] = tuple(payload.get("deps") or ())
        payload["params"] = dict(payload.get("params") or {})
        return cls(**payload)  # type: ignore[arg-type]


# --------------------------------------------------------------------------
# Plans
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Plan:
    """A frozen DAG of jobs plus (optional) runtime resource bindings.

    Construction validates the graph: ids must be unique, dependencies must
    exist, and the graph must be acyclic.  ``resources`` never participates
    in equality or serialization — it is the live binding the compiler
    attached, so ``Executor(...).execute(session.plan())`` works without
    re-plumbing heavyweight objects through JSON.
    """

    name: str
    jobs: tuple[Job, ...] = ()
    metadata: Mapping[str, Any] = field(default_factory=dict)
    resources: "dict[str, Any] | None" = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.jobs, tuple):
            object.__setattr__(self, "jobs", tuple(self.jobs))
        self.validate()

    def validate(self) -> None:
        """Check the graph invariants this plan was constructed under.

        Runs at construction time and is also callable directly (e.g. after
        deserializing job dicts by hand).  The same analysis, reported as
        findings instead of exceptions, backs the ``plan-*`` lint rules in
        :mod:`repro.analyze` via :func:`plan_graph_problems`.

        Raises:
            ValueError: On duplicate job ids, dependencies on unknown jobs,
                or dependency cycles — with the offending ids in the message.
        """
        ids = [job.id for job in self.jobs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"plan {self.name!r} has duplicate job ids: {dupes}")
        known = set(ids)
        for job in self.jobs:
            for dep in job.deps:
                if dep not in known:
                    raise ValueError(
                        f"plan {self.name!r}: job {job.id!r} depends on "
                        f"unknown job {dep!r}"
                    )
        self.topological_order()  # raises on cycles

    # ------------------------------------------------------------- structure
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    def job(self, job_id: str) -> Job:
        for job in self.jobs:
            if job.id == job_id:
                return job
        raise KeyError(f"plan {self.name!r} has no job {job_id!r}")

    def topological_order(self) -> list[Job]:
        """Jobs in dependency order (stable: plan order breaks ties).

        Computed once per plan (memoised — validation and every
        ``Executor.execute`` call reuse it) with an index cursor over the
        ready queue, so large diagnosis grids stay linear in job count.
        """
        cached = self.__dict__.get("_topo_order")
        if cached is not None:
            return list(cached)
        by_id = {job.id: job for job in self.jobs}
        indegree = {job.id: len(job.deps) for job in self.jobs}
        dependents: dict[str, list[str]] = {job.id: [] for job in self.jobs}
        for job in self.jobs:
            for dep in job.deps:
                dependents[dep].append(job.id)
        ready = [job.id for job in self.jobs if indegree[job.id] == 0]
        cursor = 0
        ordered: list[Job] = []
        while cursor < len(ready):
            current = ready[cursor]
            cursor += 1
            ordered.append(by_id[current])
            for dependent in dependents[current]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(ordered) != len(self.jobs):
            stuck = sorted(job_id for job_id, n in indegree.items() if n > 0)
            raise ValueError(f"plan {self.name!r} has a dependency cycle: {stuck}")
        object.__setattr__(self, "_topo_order", tuple(ordered))
        return ordered

    def dependents(self) -> dict[str, tuple[str, ...]]:
        """Reverse edges: job id -> ids of the jobs that consume it."""
        reverse: dict[str, list[str]] = {job.id: [] for job in self.jobs}
        for job in self.jobs:
            for dep in job.deps:
                reverse[dep].append(job.id)
        return {job_id: tuple(ids) for job_id, ids in reverse.items()}

    # -------------------------------------------------------------- identity
    @property
    def fingerprint(self) -> str:
        """Content hash of the plan's declarative structure (not resources)."""
        return plan_fingerprint(self.to_dict())

    def with_resources(self, resources: "dict[str, Any] | None") -> "Plan":
        """The same plan bound to different runtime resources."""
        return replace(self, resources=resources)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "metadata": dict(self.metadata),
            "jobs": [job.to_dict() for job in self.jobs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Plan":
        return cls(
            name=str(data.get("name", "")),
            jobs=tuple(Job.from_dict(item) for item in data.get("jobs", [])),
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Plan":
        return cls.from_dict(json.loads(text))


def plan_graph_problems(
    name: str, jobs: Iterable[Any]
) -> list[dict[str, str]]:
    """Non-raising form of :meth:`Plan.validate` for lint pipelines.

    Accepts :class:`Job` instances *or* job-shaped mappings (``Job.to_dict``
    form), so graphs that would not survive ``Plan`` construction — e.g. a
    hand-edited plan JSON — can still be analyzed.  Returns one problem per
    defect: ``{"kind": "duplicate-id" | "unknown-dep" | "cycle",
    "subject": <job id(s)>, "message": ...}``.  Cycle detection runs over
    the known-id subgraph so a dangling dependency does not mask a cycle.
    """
    views: list[tuple[str, tuple[str, ...]]] = []
    for job in jobs:
        if isinstance(job, Mapping):
            views.append(
                (str(job.get("id", "")), tuple(str(d) for d in job.get("deps") or ()))
            )
        else:
            views.append((job.id, tuple(job.deps)))
    problems: list[dict[str, str]] = []
    ids = [job_id for job_id, _ in views]
    known = set(ids)
    for dup in sorted({i for i in ids if ids.count(i) > 1}):
        problems.append(
            {
                "kind": "duplicate-id",
                "subject": dup,
                "message": f"plan {name!r} has duplicate job ids: [{dup!r}]",
            }
        )
    for job_id, deps in views:
        for dep in deps:
            if dep not in known:
                problems.append(
                    {
                        "kind": "unknown-dep",
                        "subject": job_id,
                        "message": (
                            f"plan {name!r}: job {job_id!r} depends on "
                            f"unknown job {dep!r}"
                        ),
                    }
                )
    indegree = {job_id: 0 for job_id, _ in views}
    dependents: dict[str, list[str]] = {job_id: [] for job_id, _ in views}
    for job_id, deps in views:
        for dep in deps:
            if dep in known:
                indegree[job_id] += 1
                dependents[dep].append(job_id)
    ready = [job_id for job_id, count in indegree.items() if count == 0]
    cursor = 0
    done = 0
    while cursor < len(ready):
        current = ready[cursor]
        cursor += 1
        done += 1
        for dependent in dependents[current]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)
    if done != len(indegree):
        stuck = sorted(job_id for job_id, count in indegree.items() if count > 0)
        problems.append(
            {
                "kind": "cycle",
                "subject": ",".join(stuck),
                "message": f"plan {name!r} has a dependency cycle: {stuck}",
            }
        )
    return problems


def chain(jobs: Iterable[Job]) -> tuple[Job, ...]:
    """Link jobs into a linear pipeline (each depends on its predecessor)."""
    linked: list[Job] = []
    previous: Job | None = None
    for job in jobs:
        if previous is not None and previous.id not in job.deps:
            job = job.with_overrides(deps=job.deps + (previous.id,))
        linked.append(job)
        previous = job
    return tuple(linked)
