"""repro.runtime — the unified Plan/Job execution plane.

Every run path of the API front door compiles to the same three pieces:

* :class:`~repro.runtime.plan.Plan` / :class:`~repro.runtime.plan.Job` —
  frozen, JSON-round-trippable job graphs with explicit dependencies and
  engine-cache keys (``TestSession.plan()`` and ``Campaign.plan()`` are the
  built-in compilers; custom kinds register with
  :func:`~repro.runtime.plan.register_job_kind`);
* :class:`~repro.runtime.executor.Executor` — topological scheduling over
  the engine's serial/threads/processes backends, cache-aware job skipping
  (interrupted plans resume from the persistent
  :class:`~repro.engine.cache.ResultCache`), cancellation, per-job retry and
  one centralised processes→threads spill;
* :class:`~repro.runtime.events.Event` — streaming
  ``job_started``/``job_finished``/``job_skipped``/``plan_progress``
  callbacks for live progress over any plan.

Quickstart::

    from repro.api import Campaign
    from repro.runtime import Executor

    campaign = Campaign(designs=["tiny", "wide-edt"], scenarios=["a", "c"])
    plan = campaign.plan()                    # declarative, JSON-safe
    result = Executor(backend="processes").execute(plan)
"""

from repro.runtime.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    Event,
    event_from_json,
)
from repro.runtime.executor import (
    EXECUTOR_BACKENDS,
    Executor,
    JobResult,
    PlanCancelled,
    PlanResult,
)
from repro.runtime.plan import (
    JOB_KINDS,
    Job,
    JobKindNotFound,
    Plan,
    chain,
    handler_for,
    register_job_kind,
)

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "EXECUTOR_BACKENDS",
    "JOB_KINDS",
    "Event",
    "event_from_json",
    "Executor",
    "Job",
    "JobKindNotFound",
    "JobResult",
    "Plan",
    "PlanCancelled",
    "PlanResult",
    "chain",
    "handler_for",
    "register_job_kind",
]
