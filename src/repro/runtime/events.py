"""Streaming execution events emitted while an :class:`~repro.runtime.Executor`
runs a :class:`~repro.runtime.Plan`.

Events are in-memory observations first: ``job_finished`` and ``job_skipped``
carry the job's actual result object in :attr:`Event.value` so report
assemblers (``TestSession.run``, ``Campaign.run``, ``Campaign.diagnose``) can
stream cells to their callers without waiting for the whole plan.  Every
event is delivered on the thread that called
:meth:`~repro.runtime.Executor.execute`, in a deterministic order per
backend — callbacks never need their own locking.

Events also have a **stable wire form** so they can cross process and
machine boundaries (the :mod:`repro.serve` journal and event tails):
:meth:`Event.to_json` emits one JSON object stamped with
:data:`EVENT_SCHEMA_VERSION`, and :func:`event_from_json` restores it.
Decoding is tolerant by construction — unknown fields (added by future
schema versions) are ignored, missing fields take their defaults — so an
old client can tail a newer server's journal and vice versa.  Result values
are JSON-inlined when JSON can carry them and pickled (base64-tagged)
otherwise; a value that cannot be pickled degrades to its ``repr`` instead
of failing the emit, because a journal sink must never take down the run it
is observing.
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import dataclass, fields
from typing import Any, Mapping

#: Bump when the wire shape of :meth:`Event.to_json` changes incompatibly.
#: Decoders keep accepting newer payloads (unknown fields are dropped), so a
#: bump signals "inspect before trusting", not "refuse to parse".
EVENT_SCHEMA_VERSION = 1

#: Tag keys of the non-JSON value encodings (see :func:`_encode_value`).
_PICKLE_TAG = "__event_pickle__"
_REPR_TAG = "__event_repr__"

#: Every event kind an :class:`~repro.runtime.Executor` emits.
#:
#: * ``plan_started`` / ``plan_finished`` — one each per ``execute()`` call
#:   (``plan_finished`` fires even when the plan was cancelled);
#: * ``job_started`` — a job was dispatched (for pooled waves, at submission);
#: * ``job_finished`` — a job ran to completion; ``value`` holds its result;
#: * ``job_skipped`` — a job did not need to run; ``reason`` says why
#:   (``"cache"`` — served from the result cache, ``"seed"`` — supplied by
#:   the caller, ``"unneeded"`` — an ``if_needed`` provider whose dependents
#:   were all satisfied);
#: * ``job_failed`` — a job raised after exhausting its retries (the
#:   exception propagates to the ``execute()`` caller right after);
#: * ``plan_progress`` — emitted after every job resolution with the running
#:   ``completed``/``total`` counters.
EVENT_KINDS = (
    "plan_started",
    "job_started",
    "job_finished",
    "job_skipped",
    "job_failed",
    "plan_progress",
    "plan_finished",
)


@dataclass(frozen=True)
class Event:
    """One observation of a running plan.

    Attributes:
        kind: One of :data:`EVENT_KINDS`.
        plan: The plan's name.
        job: The job id (``None`` for plan-level events).
        value: The job's result object (``job_finished`` and cache/seed
            ``job_skipped`` events; ``None`` otherwise).
        reason: Skip reason (``"cache"`` / ``"seed"`` / ``"unneeded"``) or
            the failure description for ``job_failed``.
        wall_seconds: Job wall time (``job_finished``), the cache-probe
            duration that served the job (cache ``job_skipped``) or total
            plan wall time (``plan_finished``) — cache-served plans report
            where their wall time went too.
        completed: Jobs resolved so far (run, skipped or failed).
        total: Total jobs in the plan.
        skipped: Jobs resolved without running (``plan_finished`` only).
    """

    kind: str
    plan: str
    job: str | None = None
    value: object = None
    reason: str | None = None
    wall_seconds: float = 0.0
    completed: int = 0
    total: int = 0
    skipped: int = 0

    def describe(self) -> str:
        """One human-readable progress line (the example's live ticker)."""
        if self.kind == "plan_progress":
            return f"[{self.completed}/{self.total}] {self.plan}"
        if self.kind in ("plan_started", "plan_finished"):
            suffix = f" ({self.wall_seconds:.2f}s)" if self.kind == "plan_finished" else ""
            return f"{self.kind}: {self.plan}{suffix}"
        detail = f" [{self.reason}]" if self.reason else ""
        timing = f" ({self.wall_seconds:.2f}s)" if self.kind == "job_finished" else ""
        return f"{self.kind}: {self.job}{detail}{timing}"

    # ------------------------------------------------------------- wire form
    def to_wire(self) -> dict[str, Any]:
        """The JSON-safe wire dict (see :meth:`to_json` for the contract)."""
        payload: dict[str, Any] = {"schema_version": EVENT_SCHEMA_VERSION}
        for field in fields(self):
            if field.name == "value":
                payload["value"] = _encode_value(self.value)
            else:
                payload[field.name] = getattr(self, field.name)
        return payload

    def to_json(self) -> str:
        """One JSON object (single line) in the stable wire schema."""
        return json.dumps(self.to_wire(), sort_keys=True)


def _encode_value(value: Any) -> Any:
    """Lower an event value to something JSON can carry.

    JSON-representable values travel inline; everything else becomes a
    base64 pickle under :data:`_PICKLE_TAG`; values pickle refuses degrade
    to ``{"__event_repr__": repr(value)}`` so the emit never raises.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple, dict)):
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            pass
        else:
            return list(value) if isinstance(value, tuple) else value
    try:
        blob = pickle.dumps(value)
    except (pickle.PickleError, TypeError, AttributeError):
        return {_REPR_TAG: repr(value)}
    return {_PICKLE_TAG: base64.b64encode(blob).decode("ascii")}


def _decode_value(value: Any) -> Any:
    """Invert :func:`_encode_value`; corrupt pickles degrade to ``None``."""
    if isinstance(value, dict) and _PICKLE_TAG in value:
        try:
            return pickle.loads(base64.b64decode(value[_PICKLE_TAG]))
        except Exception:  # noqa: BLE001 - a tail must survive bad payloads
            return None
    if isinstance(value, dict) and _REPR_TAG in value:
        return value[_REPR_TAG]
    return value


#: Wire fields a decoder recognises — everything else is silently dropped,
#: which is what keeps old readers compatible with newer writers.
_WIRE_FIELDS = frozenset(field.name for field in fields(Event))


def event_from_json(data: "str | bytes | Mapping[str, Any]") -> Event:
    """Restore an :class:`Event` from its wire form.

    Accepts the JSON text of :meth:`Event.to_json` or an already-parsed
    mapping.  Unknown fields are ignored and absent fields default, so
    payloads from newer schema versions still decode; the original
    ``schema_version`` is available to callers via the raw payload, not the
    event (events compare equal across schema revisions when their known
    fields agree).
    """
    payload = json.loads(data) if isinstance(data, (str, bytes)) else dict(data)
    known = {
        name: value for name, value in payload.items() if name in _WIRE_FIELDS
    }
    known["value"] = _decode_value(known.get("value"))
    return Event(**known)
