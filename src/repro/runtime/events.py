"""Streaming execution events emitted while an :class:`~repro.runtime.Executor`
runs a :class:`~repro.runtime.Plan`.

Events are in-memory observations, not archival records: ``job_finished`` and
``job_skipped`` carry the job's actual result object in :attr:`Event.value`
so report assemblers (``TestSession.run``, ``Campaign.run``,
``Campaign.diagnose``) can stream cells to their callers without waiting for
the whole plan.  Every event is delivered on the thread that called
:meth:`~repro.runtime.Executor.execute`, in a deterministic order per
backend — callbacks never need their own locking.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Every event kind an :class:`~repro.runtime.Executor` emits.
#:
#: * ``plan_started`` / ``plan_finished`` — one each per ``execute()`` call
#:   (``plan_finished`` fires even when the plan was cancelled);
#: * ``job_started`` — a job was dispatched (for pooled waves, at submission);
#: * ``job_finished`` — a job ran to completion; ``value`` holds its result;
#: * ``job_skipped`` — a job did not need to run; ``reason`` says why
#:   (``"cache"`` — served from the result cache, ``"seed"`` — supplied by
#:   the caller, ``"unneeded"`` — an ``if_needed`` provider whose dependents
#:   were all satisfied);
#: * ``job_failed`` — a job raised after exhausting its retries (the
#:   exception propagates to the ``execute()`` caller right after);
#: * ``plan_progress`` — emitted after every job resolution with the running
#:   ``completed``/``total`` counters.
EVENT_KINDS = (
    "plan_started",
    "job_started",
    "job_finished",
    "job_skipped",
    "job_failed",
    "plan_progress",
    "plan_finished",
)


@dataclass(frozen=True)
class Event:
    """One observation of a running plan.

    Attributes:
        kind: One of :data:`EVENT_KINDS`.
        plan: The plan's name.
        job: The job id (``None`` for plan-level events).
        value: The job's result object (``job_finished`` and cache/seed
            ``job_skipped`` events; ``None`` otherwise).
        reason: Skip reason (``"cache"`` / ``"seed"`` / ``"unneeded"``) or
            the failure description for ``job_failed``.
        wall_seconds: Job wall time (``job_finished``), the cache-probe
            duration that served the job (cache ``job_skipped``) or total
            plan wall time (``plan_finished``) — cache-served plans report
            where their wall time went too.
        completed: Jobs resolved so far (run, skipped or failed).
        total: Total jobs in the plan.
        skipped: Jobs resolved without running (``plan_finished`` only).
    """

    kind: str
    plan: str
    job: str | None = None
    value: object = None
    reason: str | None = None
    wall_seconds: float = 0.0
    completed: int = 0
    total: int = 0
    skipped: int = 0

    def describe(self) -> str:
        """One human-readable progress line (the example's live ticker)."""
        if self.kind == "plan_progress":
            return f"[{self.completed}/{self.total}] {self.plan}"
        if self.kind in ("plan_started", "plan_finished"):
            suffix = f" ({self.wall_seconds:.2f}s)" if self.kind == "plan_finished" else ""
            return f"{self.kind}: {self.plan}{suffix}"
        detail = f" [{self.reason}]" if self.reason else ""
        timing = f" ({self.wall_seconds:.2f}s)" if self.kind == "job_finished" else ""
        return f"{self.kind}: {self.job}{detail}{timing}"
