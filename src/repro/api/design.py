"""Declarative design specifications, the design registry, and the staged
design pipeline.

A :class:`DesignSpec` captures everything the legacy
``repro.core.flow.prepare_design`` hard-wired — SOC geometry (size, seed,
clock-domain and PLL layout), the scan architecture, the EDT compression
contract, the OCC style — as a frozen, JSON-round-trippable value.  Designs
are *named buildable configurations*, exactly mirroring what
:class:`~repro.api.scenario.ScenarioSpec` did for the scenario axis:
registering one makes it runnable by name through
:class:`~repro.api.session.TestSession` and :class:`~repro.api.campaign.Campaign`
without any call site learning a new code path.

The monolithic ``prepare_design`` body is replaced by a staged pipeline
(``build -> scan -> clocking -> model``, see :data:`DESIGN_STAGES`); each
stage reads the spec and extends a :class:`DesignBuild` context, and custom
stages can be spliced in through :class:`DesignPipeline`.  The legacy
``prepare_design`` / ``TestSession.for_soc`` entry points are thin shims over
:func:`prepare_from_spec`.

Because a spec is plain data, its content fingerprint
(:func:`repro.engine.cache.design_spec_fingerprint`) identifies the design
*without building it* — the campaign runner keys its per-cell engine-cache
entries on that, which is what makes interrupted design×scenario sweeps
resumable at cache speed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping

from repro.circuits.soc import SocDesign, build_soc
from repro.clocking.domains import ClockDomain, ClockDomainMap
from repro.clocking.occ import OccController
from repro.clocking.pll import Pll
from repro.dft.edt import EdtArchitecture, EdtConfig
from repro.dft.scan import ScanArchitecture, insert_scan
from repro.netlist.netlist import Netlist
from repro.netlist.verilog import read_verilog
from repro.obs.telemetry import active_tracer
from repro.simulation.model import CircuitModel, build_model


class DesignNotFound(KeyError):
    """Raised when a design name is not in the registry."""


@dataclass(frozen=True)
class DomainSpec:
    """Declarative description of one clock domain (JSON-safe).

    Used by custom-netlist designs to describe their clock layout; the
    generated SOC derives its domains from the generator parameters instead.
    """

    name: str
    clock_net: str
    frequency_mhz: float
    pll_output: str | None = None

    def to_clock_domain(self) -> ClockDomain:
        return ClockDomain(
            name=self.name,
            clock_net=self.clock_net,
            frequency_mhz=self.frequency_mhz,
            pll_output=self.pll_output,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "clock_net": self.clock_net,
            "frequency_mhz": self.frequency_mhz,
            "pll_output": self.pll_output,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DomainSpec":
        return cls(**dict(data))  # type: ignore[arg-type]


@dataclass(frozen=True)
class DesignSpec:
    """One named, declarative device-under-test configuration.

    Attributes:
        name: Registry key ("table1-soc", "wide-edt", ...).
        description: Human-readable configuration summary.
        size: SOC generator scale factor.
        seed: SOC generator RNG seed.
        fast_mhz / slow_mhz: Frequencies of the two paper domains.
        extra_domains: Frequencies of additional functional domains
            (``aux0``, ``aux1``, ... — the many-domain design families).
        inter_domain_factor: Scale of the fast<->slow cross-domain cloud
            (1.0 reproduces the paper surrogate).
        nonscan_per_domain / ram_address_bits / ram_width: Generator knobs.
        pll_reference_mhz: External reference clock frequency.
        num_chains: Balanced scan chains to stitch.
        edt: Optional declarative EDT compression contract; when set, the
            prepared design carries a default :class:`EdtArchitecture` that
            the session's compression stage uses for scenarios that do not
            pin their own channel count.
        occ_style: CPF/OCC flavour — "simple" (fixed two-pulse) or
            "enhanced" (programmable pulse count/delay).
        trigger_latency: PLL cycles between trigger and first at-speed pulse.
        reset_net: Name of the system reset primary input.
        hier_cores: When positive, the build stage runs the *hierarchical*
            SOC generator (:func:`repro.circuits.hier_soc.build_hier_soc`)
            with this many repeated core instances instead of the flat
            generator — the ``hier-soc-*`` scaling families.
        hier_core_gates: Combinational gates per hierarchical core.
        hier_core_kinds: Unique core types among the instances.
        netlist_verilog: Optional structural-Verilog source; when set the
            build stage parses it instead of running the SOC generator, and
            ``domains`` must describe its clock layout.
        netlist_bench: Optional ISCAS/ITC-style ``.bench`` source
            (:mod:`repro.netlist.bench`); same contract as
            ``netlist_verilog`` — external netlists enter the registry
            through either seam.
        domains: Clock layout of a custom netlist (ignored for generated SOCs).
        test_domain: Domain treated as the test controller of a custom
            netlist (excluded from at-speed clocking); None == all domains
            functional.
        tags: Free-form labels ("paper", "variant", ...) for filtering.
    """

    name: str
    description: str = ""
    # Generated-SOC geometry
    size: int = 2
    seed: int = 2005
    fast_mhz: float = 150.0
    slow_mhz: float = 75.0
    extra_domains: tuple[float, ...] = ()
    inter_domain_factor: float = 1.0
    nonscan_per_domain: int = 3
    ram_address_bits: int = 3
    ram_width: int = 4
    pll_reference_mhz: float = 25.0
    # Scan / DFT
    num_chains: int = 6
    edt: EdtConfig | None = None
    # Clocking / OCC
    occ_style: str = "simple"
    trigger_latency: int = 3
    reset_net: str = "reset"
    # Hierarchical SOC generator (overrides the flat generator when > 0)
    hier_cores: int = 0
    hier_core_gates: int = 160
    hier_core_kinds: int = 3
    # Custom netlist source (overrides the generators)
    netlist_verilog: str | None = None
    netlist_bench: str | None = None
    domains: tuple[DomainSpec, ...] = ()
    test_domain: str | None = None
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a design needs a non-empty name")
        if self.size < 1:
            raise ValueError("size must be at least 1")
        if self.num_chains < 1:
            raise ValueError("num_chains must be at least 1")
        if self.occ_style not in OccController.STYLES:
            raise ValueError(
                f"unknown OCC style {self.occ_style!r} "
                f"(expected one of {OccController.STYLES})"
            )
        if self.netlist_verilog is not None and self.netlist_bench is not None:
            raise ValueError(
                "netlist_verilog and netlist_bench are mutually exclusive"
            )
        custom_netlist = self.netlist_verilog is not None or self.netlist_bench is not None
        if custom_netlist and not self.domains:
            raise ValueError("a custom-netlist design must describe its domains")
        if self.hier_cores < 0:
            raise ValueError("hier_cores must be non-negative")
        if self.hier_cores:
            if custom_netlist:
                raise ValueError(
                    "hier_cores and a custom netlist source are mutually exclusive"
                )
            if not 1 <= self.hier_core_kinds <= self.hier_cores:
                raise ValueError("hier_core_kinds must be in 1..hier_cores")
            if self.hier_core_gates < 8:
                raise ValueError("hier_core_gates must be at least 8")
        # JSON round trips hand lists back; normalize to the frozen tuples
        # the fingerprint and equality semantics expect.
        for fname in ("extra_domains", "domains", "tags"):
            value = getattr(self, fname)
            if isinstance(value, list):
                object.__setattr__(self, fname, tuple(value))

    # ------------------------------------------------------------------ identity
    @property
    def fingerprint(self) -> str:
        """Content digest of the spec (stable across processes/sessions)."""
        from repro.engine.cache import design_spec_fingerprint

        return design_spec_fingerprint(self)

    def with_overrides(self, **changes: object) -> "DesignSpec":
        """A copy of the spec with the given fields replaced (not registered)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------------ building
    def prepare(self):
        """Build the design through the default pipeline -> ``PreparedDesign``."""
        return prepare_from_spec(self)

    # -------------------------------------------------------------------- sizing
    def size_estimate(self) -> dict[str, object]:
        """A cheap, build-free size estimate of the design.

        Returns a dict with ``family`` (which build path the spec takes),
        approximate ``gates`` and ``flops`` counts, and ``exact: False`` —
        use :meth:`gate_count` for the exact (and much more expensive)
        number.  Campaign reports surface this so that scaling runs show
        design sizes without materializing every family member.
        """
        if self.netlist_bench is not None:
            statements = sum(
                1 for line in self.netlist_bench.splitlines() if "=" in line
            )
            return {
                "family": "bench",
                "gates": statements,
                "flops": self.netlist_bench.count("DFF"),
                "exact": False,
            }
        if self.netlist_verilog is not None:
            statements = self.netlist_verilog.count(";")
            return {
                "family": "verilog",
                "gates": statements,
                "flops": self.netlist_verilog.count("DFF"),
                "exact": False,
            }
        if self.hier_cores > 0:
            from repro.circuits.hier_soc import CORE_WIDTH

            return {
                "family": "hier-soc",
                "cores": self.hier_cores,
                "core_kinds": self.hier_core_kinds,
                "gates": self.hier_cores * self.hier_core_gates + 40,
                "flops": self.hier_cores * 2 * CORE_WIDTH + 30,
                "exact": False,
            }
        size = self.size
        idf = self.inter_domain_factor
        aux = len(self.extra_domains)
        return {
            "family": "table1-soc",
            "gates": int(62 * size * size + (49 + 5 * idf + 11 * aux) * size),
            "flops": int(12 * size * size + 10 * size),
            "exact": False,
        }

    def gate_count(self) -> int:
        """The exact pre-scan gate count (builds the netlist; expensive)."""
        build = DesignBuild(spec=self)
        stage_build(build)
        assert build.netlist is not None
        return len(build.netlist.gates)

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "name": self.name,
            "description": self.description,
            "size": self.size,
            "seed": self.seed,
            "fast_mhz": self.fast_mhz,
            "slow_mhz": self.slow_mhz,
            "extra_domains": list(self.extra_domains),
            "inter_domain_factor": self.inter_domain_factor,
            "nonscan_per_domain": self.nonscan_per_domain,
            "ram_address_bits": self.ram_address_bits,
            "ram_width": self.ram_width,
            "pll_reference_mhz": self.pll_reference_mhz,
            "num_chains": self.num_chains,
            "edt": self.edt.to_dict() if self.edt is not None else None,
            "occ_style": self.occ_style,
            "trigger_latency": self.trigger_latency,
            "reset_net": self.reset_net,
            "hier_cores": self.hier_cores,
            "hier_core_gates": self.hier_core_gates,
            "hier_core_kinds": self.hier_core_kinds,
            "netlist_verilog": self.netlist_verilog,
            "netlist_bench": self.netlist_bench,
            "domains": [d.to_dict() for d in self.domains],
            "test_domain": self.test_domain,
            "tags": list(self.tags),
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DesignSpec":
        payload = dict(data)
        edt = payload.get("edt")
        if isinstance(edt, Mapping):
            payload["edt"] = EdtConfig.from_dict(edt)
        domains = payload.get("domains") or ()
        payload["domains"] = tuple(
            d if isinstance(d, DomainSpec) else DomainSpec.from_dict(d)
            for d in domains
        )
        payload["extra_domains"] = tuple(payload.get("extra_domains") or ())
        payload["tags"] = tuple(payload.get("tags") or ())
        return cls(**payload)  # type: ignore[arg-type]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DesignSpec":
        return cls.from_dict(json.loads(text))


# --------------------------------------------------------------------------
# The staged design pipeline
# --------------------------------------------------------------------------
@dataclass
class DesignBuild:
    """Mutable context the design pipeline's stages operate on."""

    spec: DesignSpec
    soc: SocDesign | None = None
    netlist: Netlist | None = None
    scan: ScanArchitecture | None = None
    edt: EdtArchitecture | None = None
    domain_map: ClockDomainMap | None = None
    occ: OccController | None = None
    model: CircuitModel | None = None
    lint_report: object | None = None
    stage_seconds: dict[str, float] = field(default_factory=dict)


#: A pipeline stage: reads the spec, extends the build context.
DesignStage = Callable[[DesignBuild], None]


def stage_build(build: DesignBuild) -> None:
    """Materialize the device under test: generator, Verilog source, or a
    caller-provided :class:`SocDesign` (already present on the context)."""
    if build.soc is not None:
        build.netlist = build.soc.netlist
        return
    spec = build.spec
    if spec.netlist_bench is not None:
        build.soc = _soc_from_bench(spec)
    elif spec.netlist_verilog is not None:
        build.soc = _soc_from_verilog(spec)
    elif spec.hier_cores > 0:
        from repro.circuits.hier_soc import build_hier_soc

        build.soc = build_hier_soc(
            num_cores=spec.hier_cores,
            core_gates=spec.hier_core_gates,
            core_kinds=spec.hier_core_kinds,
            seed=spec.seed,
            fast_mhz=spec.fast_mhz,
            slow_mhz=spec.slow_mhz,
            pll_reference_mhz=spec.pll_reference_mhz,
            name=spec.name.replace("-", "_"),
        )
    else:
        build.soc = build_soc(
            size=spec.size,
            seed=spec.seed,
            fast_mhz=spec.fast_mhz,
            slow_mhz=spec.slow_mhz,
            nonscan_per_domain=spec.nonscan_per_domain,
            ram_address_bits=spec.ram_address_bits,
            ram_width=spec.ram_width,
            extra_domains=spec.extra_domains,
            inter_domain_factor=spec.inter_domain_factor,
            pll_reference_mhz=spec.pll_reference_mhz,
        )
    build.netlist = build.soc.netlist


def _soc_from_verilog(spec: DesignSpec) -> SocDesign:
    """Wrap a parsed structural-Verilog netlist in SocDesign metadata."""
    return _wrap_external_netlist(spec, read_verilog(spec.netlist_verilog or ""))


def _soc_from_bench(spec: DesignSpec) -> SocDesign:
    """Wrap a parsed ISCAS/ITC ``.bench`` netlist in SocDesign metadata.

    The ``.bench`` dialect carries no clock net; flops attach to the first
    declared domain's clock (the single-domain assumption of the suites).
    """
    from repro.netlist.bench import read_bench

    clock = spec.domains[0].clock_net if spec.domains else "clk"
    netlist = read_bench(
        spec.netlist_bench or "",
        name=spec.name.replace("-", "_"),
        clock=clock,
    )
    return _wrap_external_netlist(spec, netlist)


def _wrap_external_netlist(spec: DesignSpec, netlist: Netlist) -> SocDesign:
    """Shared SocDesign wrapping for externally-sourced netlists."""
    for domain in spec.domains:
        if domain.clock_net not in netlist.inputs:
            netlist.add_input(domain.clock_net)
        netlist.declare_clock(domain.clock_net)
    # The at-speed scenarios constrain the reset inactive; give netlists
    # without one a dangling input so those constraints stay satisfiable.
    if spec.reset_net not in netlist.inputs:
        netlist.add_input(spec.reset_net)
    domains = [d.to_clock_domain() for d in spec.domains]
    pll = Pll(reference_mhz=spec.pll_reference_mhz)
    for domain in spec.domains:
        if domain.pll_output is not None:
            pll.add_output(domain.pll_output, domain.frequency_mhz)
    test_domain = spec.test_domain or ""
    test_clock_net = ""
    if spec.test_domain is not None:
        test_clock_net = next(
            d.clock_net for d in spec.domains if d.name == spec.test_domain
        )
    return SocDesign(
        netlist=netlist,
        domains=domains,
        pll=pll,
        reset_net=spec.reset_net,
        test_clock_net=test_clock_net,
        test_clock_domain=test_domain,
        ram_names=sorted(netlist.rams),
        nonscan_flops=sorted(f.name for f in netlist.flops.values() if not f.scannable),
        io_inputs=[
            net
            for net in netlist.inputs
            if net != spec.reset_net and net not in {d.clock_net for d in spec.domains}
        ],
        io_outputs=list(netlist.outputs),
    )


def stage_scan(build: DesignBuild) -> None:
    """Insert mux-D scan and instantiate the design's EDT contract (if any)."""
    assert build.netlist is not None, "build stage must run before scan"
    build.netlist, build.scan = insert_scan(
        build.netlist,
        num_chains=build.spec.num_chains,
        scan_enable_net="scan_en",
        group_by_clock=True,
        in_place=True,
    )
    if build.spec.edt is not None:
        build.edt = build.spec.edt.build(build.scan)


def stage_clocking(build: DesignBuild) -> None:
    """Compute the clock-domain map and the OCC controller for the spec's style."""
    assert build.soc is not None and build.netlist is not None
    build.domain_map = ClockDomainMap.from_netlist(build.netlist, build.soc.domains)
    build.occ = OccController.for_domains(
        [d.name for d in build.soc.functional_domains],
        style=build.spec.occ_style,
        trigger_latency=build.spec.trigger_latency,
    )


def stage_model(build: DesignBuild) -> None:
    """Flatten the scan-inserted netlist into the ATPG circuit model."""
    assert build.netlist is not None, "scan stage must run before model"
    build.model = build_model(build.netlist)


def stage_lint(build: DesignBuild) -> None:
    """Optional stage: run the structural rule registry over the build.

    Not part of ``DESIGN_STAGES``; splice it in where wanted::

        DesignPipeline().with_stage("lint", stage_lint, after="model")

    The report lands on ``build.lint_report``; preparation is not aborted
    on findings — callers gate on ``build.lint_report.ok`` (or call
    ``raise_on_error()``) so a pipeline can still hand back the build for
    inspection.
    """
    from repro.analyze import lint_design

    assert build.netlist is not None, "build stage must run before lint"
    build.lint_report = lint_design(build, categories=("netlist", "scan", "edt"))


DESIGN_STAGES: tuple[tuple[str, DesignStage], ...] = (
    ("build", stage_build),
    ("scan", stage_scan),
    ("clocking", stage_clocking),
    ("model", stage_model),
)


class DesignPipeline:
    """Runs a spec through the staged ``build -> scan -> clocking -> model``
    preparation, producing the :class:`~repro.core.flow.PreparedDesign` every
    scenario executes against."""

    def __init__(self, stages: Iterable[tuple[str, DesignStage]] = DESIGN_STAGES) -> None:
        self._stages = list(stages)

    @property
    def stage_names(self) -> list[str]:
        return [name for name, _ in self._stages]

    def with_stage(
        self, name: str, stage: DesignStage, *, after: str | None = None
    ) -> "DesignPipeline":
        """Splice a custom stage into the pipeline (appended by default)."""
        entry = (name, stage)
        if after is None:
            self._stages.append(entry)
            return self
        for index, (existing, _) in enumerate(self._stages):
            if existing == after:
                self._stages.insert(index + 1, entry)
                return self
        raise KeyError(f"no design stage named {after!r}")

    def run(self, spec: DesignSpec, soc: SocDesign | None = None) -> DesignBuild:
        """Execute every stage; returns the completed build context."""
        build = DesignBuild(spec=spec, soc=soc)
        tracer = active_tracer()
        for name, stage in self._stages:
            started = time.perf_counter()
            with tracer.span(f"design:{name}", design=spec.name):
                stage(build)
            build.stage_seconds[name] = time.perf_counter() - started
        return build

    def prepare(self, spec: DesignSpec, soc: SocDesign | None = None):
        """Execute the pipeline and assemble the prepared design."""
        from repro.core.flow import PreparedDesign

        build = self.run(spec, soc=soc)
        assert build.soc is not None and build.netlist is not None
        assert build.scan is not None and build.model is not None
        assert build.domain_map is not None and build.occ is not None
        return PreparedDesign(
            soc=build.soc,
            netlist=build.netlist,
            scan=build.scan,
            model=build.model,
            domain_map=build.domain_map,
            occ=build.occ,
            edt=build.edt,
            # An externally built SOC is not described by the spec; advertise
            # no declarative identity rather than a wrong one.
            spec=None if soc is not None else spec,
            build_seconds=dict(build.stage_seconds),
        )


def prepare_from_spec(spec: "DesignSpec | str", soc: SocDesign | None = None):
    """Build a (possibly registered) design spec into a ``PreparedDesign``."""
    return DesignPipeline().prepare(resolve_design(spec), soc=soc)


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------
_REGISTRY: dict[str, DesignSpec] = {}


def register_design(spec: DesignSpec, *, replace_existing: bool = False) -> DesignSpec:
    """Register a design under its name; returns the spec for chaining."""
    if spec.name in _REGISTRY and not replace_existing:
        raise ValueError(
            f"design {spec.name!r} is already registered; pass "
            f"replace_existing=True to overwrite it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_design(name: str) -> None:
    """Remove a design from the registry (no-op when absent)."""
    _REGISTRY.pop(name, None)


def get_design(name: str) -> DesignSpec:
    """Look up a registered design by name.

    Raises:
        DesignNotFound: With the list of available names in the message.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY)) or "<registry is empty>"
        raise DesignNotFound(
            f"unknown design {name!r}; available designs: {available}"
        ) from None


def design_names(*, tag: str | None = None) -> list[str]:
    """Sorted names of all registered designs (optionally filtered by tag)."""
    if tag is None:
        return sorted(_REGISTRY)
    return sorted(name for name, spec in _REGISTRY.items() if tag in spec.tags)


def all_designs() -> list[DesignSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def resolve_design(spec_or_name: "DesignSpec | str") -> DesignSpec:
    """Accept either a spec object or a registered name."""
    if isinstance(spec_or_name, DesignSpec):
        return spec_or_name
    return get_design(spec_or_name)


# ------------------------------------------------------------------ built-ins
#: The paper's SoC surrogate, byte-identical to the legacy
#: ``prepare_design()`` defaults (Table 1 rows depend on this).
TABLE1_SOC = register_design(
    DesignSpec(
        name="table1-soc",
        description="Paper SoC surrogate: 2 domains (150/75 MHz), 6 chains",
        size=2,
        seed=2005,
        num_chains=6,
        tags=("paper",),
    )
)

#: Unit-test scale instance of the same family.
TINY = register_design(
    DesignSpec(
        name="tiny",
        description="Unit-test SoC: size 1, 4 chains",
        size=1,
        seed=2005,
        num_chains=4,
        tags=("variant", "small"),
    )
)

#: Wide EDT: many short chains behind a 4-channel decompressor.
WIDE_EDT = register_design(
    DesignSpec(
        name="wide-edt",
        description="Wide-EDT SoC: 12 chains behind a 4-channel EDT",
        size=1,
        seed=2005,
        num_chains=12,
        edt=EdtConfig(input_channels=4),
        tags=("variant", "compression"),
    )
)

#: Many-domain: two auxiliary functional domains beyond the paper's pair.
MANY_DOMAIN = register_design(
    DesignSpec(
        name="many-domain",
        description="Four functional domains (150/75/100/37.5 MHz), 8 chains",
        size=1,
        seed=2005,
        num_chains=8,
        extra_domains=(100.0, 37.5),
        occ_style="enhanced",
        tags=("variant", "multi-domain"),
    )
)

#: Inter-domain-heavy: 4x the cross-domain logic of the paper surrogate.
INTERDOMAIN_HEAVY = register_design(
    DesignSpec(
        name="interdomain-heavy",
        description="4x inter-domain logic between the fast and slow domains",
        size=1,
        seed=2005,
        num_chains=6,
        inter_domain_factor=4.0,
        occ_style="enhanced",
        tags=("variant", "inter-domain"),
    )
)
