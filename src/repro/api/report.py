"""Structured per-scenario results: the :class:`RunReport` of a test session.

A report is plain data — every field survives a ``to_json`` / ``from_json``
round trip losslessly, so reports can be archived next to benchmark output
and diffed across PRs.  ``table()`` renders the classic fixed-width table;
for the built-in Table 1 scenarios it reproduces the legacy
``repro.core.results.format_table1`` output byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.patterns.statistics import TableRow, format_table


@dataclass
class ScenarioOutcome:
    """Everything one scenario run produced, in JSON-safe form.

    Attributes:
        scenario: Registered scenario name.
        description: The scenario's configuration summary.
        fault_model: Fault model the scenario ran ("stuck-at", ...).
        test_coverage: Detected / (total - untestable), percent.
        fault_coverage: Detected / total, percent.
        atpg_effectiveness: Resolved / total, percent.
        pattern_count: Final number of committed patterns.
        cpu_seconds: Total wall time of the scenario's stage pipeline.
        stage_seconds: Per-stage wall time, keyed by stage name.
        legacy_key: Paper experiment letter for Table 1 scenarios, else None.
        extras: Stage-specific data (EDT statistics, compaction deltas,
            per-model sub-results of mixed sweeps, export sizes, ...).
    """

    scenario: str
    description: str
    fault_model: str
    test_coverage: float
    fault_coverage: float
    atpg_effectiveness: float
    pattern_count: int
    cpu_seconds: float
    stage_seconds: dict[str, float] = field(default_factory=dict)
    legacy_key: str | None = None
    extras: dict[str, object] = field(default_factory=dict)

    @property
    def row_key(self) -> str:
        return self.legacy_key or self.scenario

    def table_row(self) -> TableRow:
        return TableRow(
            experiment=self.row_key,
            description=self.description,
            test_coverage=self.test_coverage,
            pattern_count=self.pattern_count,
        )

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioOutcome":
        return cls(**dict(data))  # type: ignore[arg-type]

    def same_results(self, other: "ScenarioOutcome") -> bool:
        """Deterministic-field equality (ignores the timing measurements)."""
        return (
            self.scenario == other.scenario
            and self.fault_model == other.fault_model
            and self.test_coverage == other.test_coverage
            and self.fault_coverage == other.fault_coverage
            and self.atpg_effectiveness == other.atpg_effectiveness
            and self.pattern_count == other.pattern_count
            and self.extras == other.extras
        )


@dataclass
class RunReport:
    """Ordered per-scenario outcomes plus the session configuration."""

    session: dict[str, object] = field(default_factory=dict)
    outcomes: list[ScenarioOutcome] = field(default_factory=list)

    # ------------------------------------------------------------- collection
    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[ScenarioOutcome]:
        return iter(self.outcomes)

    def __getitem__(self, key: str) -> ScenarioOutcome:
        """Look up an outcome by scenario name or legacy experiment letter."""
        for outcome in self.outcomes:
            if key in (outcome.scenario, outcome.legacy_key):
                return outcome
        available = ", ".join(o.scenario for o in self.outcomes) or "<empty report>"
        raise KeyError(f"no outcome for {key!r}; report contains: {available}")

    def __contains__(self, key: str) -> bool:
        return any(key in (o.scenario, o.legacy_key) for o in self.outcomes)

    def scenarios(self) -> list[str]:
        return [outcome.scenario for outcome in self.outcomes]

    @property
    def backend_fallbacks(self) -> list[dict[str, str]]:
        """Execution degradations recorded by the runtime executor.

        Empty for healthy runs.  When a processes fan-out spilled to the
        threads backend (payload or result-transport failure), each record
        carries ``{"requested", "used", "reason"}`` — results are still
        bit-identical, but wall-clock expectations are not, so CI should
        check this instead of trusting the warning stream.
        """
        return list(self.session.get("backend_fallbacks") or [])

    @property
    def degraded(self) -> bool:
        """True when the run did not execute on the requested backend."""
        return bool(self.backend_fallbacks)

    # ------------------------------------------------------------- formatting
    def table(
        self,
        title: str = "Table 1: Experimental Results",
        *,
        show_size: bool = False,
    ) -> str:
        """Fixed-width result table, rows sorted by their row key.

        For a report holding exactly the built-in Table 1 scenarios this is
        byte-for-byte the legacy ``format_table1`` output.  Degraded runs
        (see :attr:`backend_fallbacks`) append one NOTE line per fallback —
        healthy output stays byte-identical.  ``show_size=True`` appends a
        design-size NOTE line (scaling runs; opt-in so the default output
        stays byte-compatible).
        """
        rows = [
            outcome.table_row()
            for outcome in sorted(self.outcomes, key=lambda o: o.row_key)
        ]
        text = format_table(rows, title=title)
        fallbacks = self.backend_fallbacks
        if fallbacks:
            notes = "\n".join(
                f"NOTE: backend fallback {fb.get('requested', '?')} -> "
                f"{fb.get('used', '?')}: {fb.get('reason', 'unknown reason')}"
                for fb in fallbacks
            )
            text = f"{text}\n{notes}"
        if show_size:
            size = self._design_size()
            if size:
                qualifier = "" if size.get("exact") else "~"
                text = (
                    f"{text}\nNOTE: design size {qualifier}"
                    f"{size.get('gates', '?')} gates, {qualifier}"
                    f"{size.get('flops', '?')} flops"
                    f" ({size.get('family', 'unknown')})"
                )
        return text

    def _design_size(self) -> "dict[str, object] | None":
        """The report's design-size metadata, from either metadata shape.

        Campaign-derived reports carry a per-design ``design_sizes`` map;
        session reports carry a single ``design_size`` entry.
        """
        sizes = self.session.get("design_sizes")
        design = self.session.get("design")
        if isinstance(sizes, dict) and isinstance(design, str) and design in sizes:
            entry = sizes[design]
            return dict(entry) if isinstance(entry, dict) else None
        size = self.session.get("design_size")
        return dict(size) if isinstance(size, dict) else None

    def summary(self) -> str:
        """One line per scenario, including CPU time (not in ``table()``)."""
        lines = []
        for outcome in self.outcomes:
            lines.append(
                f"{outcome.scenario:<28} {outcome.fault_model:<10} "
                f"TC={outcome.test_coverage:6.2f}%  "
                f"patterns={outcome.pattern_count:5d}  "
                f"cpu={outcome.cpu_seconds:7.2f}s"
            )
        return "\n".join(lines)

    # ---------------------------------------------------------- serialization
    def to_json(self, indent: int | None = 2) -> str:
        payload = {
            "session": self.session,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        payload = json.loads(text)
        return cls(
            session=dict(payload.get("session", {})),
            outcomes=[
                ScenarioOutcome.from_dict(item)
                for item in payload.get("outcomes", [])
            ],
        )

    # ------------------------------------------------------------- comparison
    def same_results(self, other: "RunReport") -> bool:
        """True when both reports carry identical deterministic results.

        Wall-clock measurements (``cpu_seconds``, ``stage_seconds``) are
        excluded — serial and parallel runs of the same session must compare
        equal under this predicate.
        """
        if self.scenarios() != other.scenarios():
            return False
        return all(
            mine.same_results(theirs)
            for mine, theirs in zip(self.outcomes, other.outcomes)
        )


def merge_reports(reports: Iterable[RunReport]) -> RunReport:
    """Concatenate several reports (e.g. one per SOC size in a sweep)."""
    merged = RunReport()
    for report in reports:
        if not merged.session:
            merged.session = dict(report.session)
        merged.outcomes.extend(report.outcomes)
    return merged
