"""repro.api — the declarative session / scenario / design / campaign front door.

Replaces the hard-coded ``prepare_design() -> run_experiment("a".."e")``
flow with four pieces:

* :class:`~repro.api.scenario.ScenarioSpec` and the scenario registry —
  named, declarative test-generation configurations (the paper's (a)–(e)
  ship pre-registered, alongside extended workloads the old API could not
  express);
* :class:`~repro.api.design.DesignSpec` and the design registry — named,
  declarative device-under-test configurations (the paper's SoC ships as
  ``table1-soc``, alongside variant families: ``tiny``, ``wide-edt``,
  ``many-domain``, ``interdomain-heavy``), built through a staged
  ``build -> scan -> clocking -> model`` pipeline;
* :class:`~repro.api.session.TestSession` — a fluent builder that owns
  design preparation, shares the prepared/instrumented views across
  scenarios, and executes each through a pluggable stage pipeline, serially
  or in parallel;
* :class:`~repro.api.campaign.Campaign` — design×scenario grid sweeps over
  the engine's backends, with per-cell persistent caching (resumable
  campaigns) and a streaming :class:`~repro.api.campaign.CampaignReport`.

Quickstart::

    from repro.api import Campaign, TestSession, scenarios
    from repro.runtime import Executor

    report = (
        TestSession.for_soc(size=1)
        .add_scenarios(*scenarios.table1())
        .run()
    )
    print(report.table())

    sweep = Campaign(
        designs=["table1-soc", "wide-edt"],
        scenarios=["a", "b", "c", "d", "e"],
    ).run(executor=Executor(backend="processes"))
    print(sweep.table("table1-soc"))

Execution itself lives on the :mod:`repro.runtime` plane: ``session.plan()``
and ``campaign.plan()`` / ``campaign.diagnosis_plan()`` expose the compiled
:class:`~repro.runtime.Plan` directly for callers that want streaming
events, cancellation, or cache-aware resume control.
"""

from repro.api import scenarios
from repro.api.campaign import (
    CAMPAIGN_BACKENDS,
    Campaign,
    CampaignCell,
    CampaignHandle,
    CampaignReport,
    resolve_campaign_scenario,
)
from repro.api.design import (
    DESIGN_STAGES,
    DesignBuild,
    DesignNotFound,
    DesignPipeline,
    DesignSpec,
    DesignStage,
    DomainSpec,
    all_designs,
    design_names,
    get_design,
    prepare_from_spec,
    register_design,
    resolve_design,
    stage_lint,
    unregister_design,
)
from repro.api.report import RunReport, ScenarioOutcome, merge_reports
from repro.api.scenario import (
    FAULT_MODELS,
    ProcedureFactory,
    ScenarioNotFound,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register_scenario,
    resolve_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.api.session import (
    DEFAULT_STAGES,
    RUN_BACKENDS,
    ScenarioRun,
    Stage,
    TestSession,
    outcome_of,
    stage_atpg,
    stage_compaction,
    stage_compression,
    stage_export,
    stage_setup,
)

__all__ = [
    "CAMPAIGN_BACKENDS",
    "DEFAULT_STAGES",
    "DESIGN_STAGES",
    "FAULT_MODELS",
    "RUN_BACKENDS",
    "Campaign",
    "CampaignCell",
    "CampaignHandle",
    "CampaignReport",
    "DesignBuild",
    "DesignNotFound",
    "DesignPipeline",
    "DesignSpec",
    "DesignStage",
    "DomainSpec",
    "ProcedureFactory",
    "RunReport",
    "ScenarioNotFound",
    "ScenarioOutcome",
    "ScenarioRun",
    "ScenarioSpec",
    "Stage",
    "TestSession",
    "all_designs",
    "all_scenarios",
    "design_names",
    "get_design",
    "get_scenario",
    "merge_reports",
    "outcome_of",
    "prepare_from_spec",
    "register_design",
    "register_scenario",
    "resolve_campaign_scenario",
    "resolve_design",
    "resolve_scenario",
    "scenario_names",
    "scenarios",
    "stage_atpg",
    "stage_compaction",
    "stage_compression",
    "stage_export",
    "stage_lint",
    "stage_setup",
    "unregister_design",
    "unregister_scenario",
]
