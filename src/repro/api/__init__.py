"""repro.api — the declarative session / scenario-registry front door.

Replaces the hard-coded ``prepare_design() -> run_experiment("a".."e")``
flow with three pieces:

* :class:`~repro.api.scenario.ScenarioSpec` and the scenario registry —
  named, declarative test-generation configurations (the paper's (a)–(e)
  ship pre-registered, alongside extended workloads the old API could not
  express);
* :class:`~repro.api.session.TestSession` — a fluent builder that owns
  design preparation, shares the prepared/instrumented views across
  scenarios, and executes each through a pluggable stage pipeline, serially
  or in parallel;
* :class:`~repro.api.report.RunReport` — structured, JSON-round-trippable
  per-scenario results with the classic Table 1 formatter.

Quickstart::

    from repro.api import TestSession, scenarios

    report = (
        TestSession.for_soc(size=1)
        .add_scenarios(*scenarios.table1())
        .run()
    )
    print(report.table())
"""

from repro.api import scenarios
from repro.api.report import RunReport, ScenarioOutcome, merge_reports
from repro.api.scenario import (
    FAULT_MODELS,
    ProcedureFactory,
    ScenarioNotFound,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register_scenario,
    resolve_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.api.session import (
    DEFAULT_STAGES,
    RUN_BACKENDS,
    ScenarioRun,
    Stage,
    TestSession,
    stage_atpg,
    stage_compaction,
    stage_compression,
    stage_export,
    stage_setup,
)

__all__ = [
    "DEFAULT_STAGES",
    "FAULT_MODELS",
    "RUN_BACKENDS",
    "ProcedureFactory",
    "RunReport",
    "ScenarioNotFound",
    "ScenarioOutcome",
    "ScenarioRun",
    "ScenarioSpec",
    "Stage",
    "TestSession",
    "all_scenarios",
    "get_scenario",
    "merge_reports",
    "register_scenario",
    "resolve_scenario",
    "scenario_names",
    "scenarios",
    "stage_atpg",
    "stage_compaction",
    "stage_compression",
    "stage_export",
    "stage_setup",
    "unregister_scenario",
]
