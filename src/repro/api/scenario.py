"""Declarative scenario specifications and the scenario registry.

A :class:`ScenarioSpec` captures everything the legacy
``repro.core.experiments.experiment_setup`` hand-coded per experiment key —
fault model, capture-procedure factory, output observability, input holding,
pin constraints, ATPG options — plus the post-ATPG stage knobs (static
compaction, EDT compression, pattern export) the old ``if/elif`` ladder could
not express at all.

Scenarios are *named executable configurations*: registering one makes it
runnable by name through :class:`repro.api.session.TestSession` without any
call site learning a new code path.  The registry is the extension point for
new workloads — a new fault-model mix or clocking scheme is one
``register_scenario(ScenarioSpec(...))`` away.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.atpg.config import AtpgOptions, TestSetup
from repro.clocking.named_capture import NamedCaptureProcedure
from repro.simulation.logic import Logic

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.core.flow import PreparedDesign

#: Builds the capture procedures a scenario offers, given the prepared design
#: (so procedure factories can reference the design's actual domain names).
ProcedureFactory = Callable[["PreparedDesign"], Sequence[NamedCaptureProcedure]]

#: Fault models a scenario may select.
FAULT_MODELS = ("stuck-at", "transition", "path-delay", "mixed")


class ScenarioNotFound(KeyError):
    """Raised when a scenario name is not in the registry."""


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, declarative test-generation scenario.

    Attributes:
        name: Registry key ("table1-a", "stuck-at-edt", ...).
        description: Human-readable configuration summary (the Table row text).
        procedures: Factory producing the named capture procedures from the
            prepared design.
        fault_model: One of :data:`FAULT_MODELS`.  "mixed" runs stuck-at and
            transition ATPG back to back under the same constraint environment.
        observe_pos: Whether the tester may strobe primary outputs during
            capture (False == "mask outputs").
        hold_pis: Whether primary inputs keep one value over all capture frames.
        constrain_scan_enable: Force scan-enable to functional mode during
            capture.
        constrain_reset: Hold the design's reset net inactive during capture.
        pin_constraints: Extra fixed primary-input values during capture.
        options: Per-scenario :class:`AtpgOptions` override (None == use the
            session's options).
        legacy_key: The paper experiment letter ("a".."e") when the scenario
            is one of the Table 1 configurations; used for report row labels.
        static_compaction: Run the static compaction stage on the generated
            pattern set.
        edt_channels: When set, run the EDT compression stage with this many
            external channels and record the compression statistics.
        export_patterns: Run the export stage (STIL serialization).
        path_count: Number of critical paths to target (path-delay only).
        rng_seed: Explicit RNG seed for this scenario's ATPG run (overrides
            ``AtpgOptions.random_seed``); with a fixed seed the run is
            bit-reproducible across engine backends and shard counts.
        backend: Engine execution backend for this scenario's fault
            simulation (one of :data:`repro.engine.scheduler.BACKENDS`;
            ``None`` == use the options' ``sim_backend``).
        tags: Free-form labels ("paper", "compression", ...) for filtering.
    """

    name: str
    description: str
    procedures: ProcedureFactory
    fault_model: str = "transition"
    observe_pos: bool = True
    hold_pis: bool = True
    constrain_scan_enable: bool = True
    constrain_reset: bool = True
    pin_constraints: Mapping[str, Logic] = field(default_factory=dict)
    options: AtpgOptions | None = None
    legacy_key: str | None = None
    static_compaction: bool = False
    edt_channels: int | None = None
    export_patterns: bool = False
    path_count: int = 12
    rng_seed: int | None = None
    backend: str | None = None
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.fault_model not in FAULT_MODELS:
            raise ValueError(
                f"unknown fault model {self.fault_model!r} "
                f"(expected one of {FAULT_MODELS})"
            )
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if self.backend is not None:
            from repro.engine.scheduler import BACKENDS

            if self.backend not in BACKENDS:
                raise ValueError(
                    f"unknown engine backend {self.backend!r} "
                    f"(expected one of {BACKENDS})"
                )

    # ------------------------------------------------------------------ labels
    @property
    def row_key(self) -> str:
        """Report row label: the paper letter for Table 1 rows, else the name."""
        return self.legacy_key or self.name

    @property
    def setup_name(self) -> str:
        """The :class:`TestSetup` display name (legacy-compatible for a–e)."""
        if self.legacy_key:
            return f"({self.legacy_key}) {self.description}"
        return f"{self.name}: {self.description}"

    # ----------------------------------------------------------------- builder
    def build_setup(
        self, prepared: "PreparedDesign", options: AtpgOptions | None = None
    ) -> TestSetup:
        """Materialize the constraint environment against a prepared design.

        Field-for-field equivalent to what the legacy ``experiment_setup``
        produced for the built-in (a)–(e) scenarios.
        """
        constraints: dict[str, Logic] = {}
        if self.constrain_reset:
            constraints[prepared.soc.reset_net] = Logic.ZERO
        constraints.update(self.pin_constraints)
        effective = self.options or options or AtpgOptions()
        overrides: dict[str, object] = {}
        if self.rng_seed is not None:
            overrides["random_seed"] = self.rng_seed
        if self.backend is not None:
            overrides["sim_backend"] = self.backend
        if overrides:
            effective = replace(effective, **overrides)  # type: ignore[arg-type]
        return TestSetup(
            name=self.setup_name,
            procedures=list(self.procedures(prepared)),
            observe_pos=self.observe_pos,
            hold_pis=self.hold_pis,
            pin_constraints=constraints,
            scan_enable_net=prepared.scan_enable_net,
            constrain_scan_enable=self.constrain_scan_enable,
            options=effective,
        )

    def with_overrides(self, **changes: object) -> "ScenarioSpec":
        """A copy of the spec with the given fields replaced (not registered)."""
        return replace(self, **changes)  # type: ignore[arg-type]


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------
_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, replace_existing: bool = False) -> ScenarioSpec:
    """Register a scenario under its name; returns the spec for chaining.

    Raises:
        ValueError: When the name is already taken and ``replace_existing``
            is not set.
    """
    if spec.name in _REGISTRY and not replace_existing:
        raise ValueError(
            f"scenario {spec.name!r} is already registered; pass "
            f"replace_existing=True to overwrite it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_scenario(name: str) -> None:
    """Remove a scenario from the registry (no-op when absent)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name.

    Raises:
        ScenarioNotFound: With the list of available names in the message.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY)) or "<registry is empty>"
        raise ScenarioNotFound(
            f"unknown scenario {name!r}; available scenarios: {available}"
        ) from None


def scenario_names(*, tag: str | None = None) -> list[str]:
    """Sorted names of all registered scenarios (optionally filtered by tag)."""
    if tag is None:
        return sorted(_REGISTRY)
    return sorted(name for name, spec in _REGISTRY.items() if tag in spec.tags)


def all_scenarios() -> list[ScenarioSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def resolve_scenario(spec_or_name: "ScenarioSpec | str") -> ScenarioSpec:
    """Accept either a spec object or a registered name."""
    if isinstance(spec_or_name, ScenarioSpec):
        return spec_or_name
    return get_scenario(spec_or_name)


def resolve_scenarios(
    specs_or_names: Iterable["ScenarioSpec | str"],
) -> list[ScenarioSpec]:
    return [resolve_scenario(item) for item in specs_or_names]
