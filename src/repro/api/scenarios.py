"""Built-in scenario catalog: the paper's Table 1 set plus extended workloads.

The five configurations of Beck et al. Section 5.1 are registered as
``table1-a`` .. ``table1-e``; :func:`table1` returns them in order for
``TestSession.add_scenarios(*table1())``.  The extended scenarios exercise
combinations the legacy hard-coded experiment ladder could not express —
path-delay test under the simple CPF, stuck-at with EDT compression,
a mixed stuck-at+transition sweep, inter-domain-only transition test, and a
compressed-and-exported CPF pattern set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.api.scenario import (
    ScenarioSpec,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.clocking.named_capture import (
    NamedCaptureProcedure,
    enhanced_cpf_procedures,
    external_clock_procedures,
    simple_cpf_procedures,
    stuck_at_procedures,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.flow import PreparedDesign

#: The paper's experiment letters, in Table 1 order.
TABLE1_KEYS = ("a", "b", "c", "d", "e")

#: The paper's per-experiment configuration summaries (the Table 1 row text).
TABLE1_DESCRIPTIONS: Mapping[str, str] = {
    "a": "Stuck-at test, single external clock",
    "b": "Transition test, single external clock (reference)",
    "c": "Transition test, simple 2-pulse CPF per domain",
    "d": "Transition test, enhanced CPF (2-4 pulses, inter-domain)",
    "e": "Transition test, external clock with ATE constraints/masking",
}


# ------------------------------------------------------------------ factories
def _procs_a(prepared: "PreparedDesign") -> Sequence[NamedCaptureProcedure]:
    return stuck_at_procedures(prepared.all_domain_names, max_pulses=2)


def _procs_b(prepared: "PreparedDesign") -> Sequence[NamedCaptureProcedure]:
    return external_clock_procedures(prepared.all_domain_names, max_pulses=4)


def _procs_c(prepared: "PreparedDesign") -> Sequence[NamedCaptureProcedure]:
    return simple_cpf_procedures(prepared.functional_domain_names)


def _procs_d(prepared: "PreparedDesign") -> Sequence[NamedCaptureProcedure]:
    return enhanced_cpf_procedures(
        prepared.functional_domain_names, max_pulses=4, inter_domain=True
    )


def _procs_e(prepared: "PreparedDesign") -> Sequence[NamedCaptureProcedure]:
    return external_clock_procedures(
        prepared.functional_domain_names, max_pulses=4, name_prefix="extc"
    )


def _procs_interdomain_only(prepared: "PreparedDesign") -> Sequence[NamedCaptureProcedure]:
    """Only the launch-in-A / capture-in-B procedures of the enhanced CPF."""
    return [
        procedure
        for procedure in enhanced_cpf_procedures(
            prepared.functional_domain_names, max_pulses=3, inter_domain=True
        )
        if procedure.is_inter_domain
    ]


# ----------------------------------------------------------- Table 1 built-ins
TABLE1_A = register_scenario(
    ScenarioSpec(
        name="table1-a",
        description=TABLE1_DESCRIPTIONS["a"],
        procedures=_procs_a,
        fault_model="stuck-at",
        observe_pos=True,
        hold_pis=False,
        constrain_scan_enable=False,
        legacy_key="a",
        tags=("paper", "table1"),
    )
)

TABLE1_B = register_scenario(
    ScenarioSpec(
        name="table1-b",
        description=TABLE1_DESCRIPTIONS["b"],
        procedures=_procs_b,
        fault_model="transition",
        observe_pos=True,
        hold_pis=False,
        constrain_scan_enable=False,
        legacy_key="b",
        tags=("paper", "table1"),
    )
)

TABLE1_C = register_scenario(
    ScenarioSpec(
        name="table1-c",
        description=TABLE1_DESCRIPTIONS["c"],
        procedures=_procs_c,
        fault_model="transition",
        observe_pos=False,
        hold_pis=True,
        constrain_scan_enable=True,
        legacy_key="c",
        tags=("paper", "table1"),
    )
)

TABLE1_D = register_scenario(
    ScenarioSpec(
        name="table1-d",
        description=TABLE1_DESCRIPTIONS["d"],
        procedures=_procs_d,
        fault_model="transition",
        observe_pos=False,
        hold_pis=True,
        constrain_scan_enable=True,
        legacy_key="d",
        tags=("paper", "table1"),
    )
)

TABLE1_E = register_scenario(
    ScenarioSpec(
        name="table1-e",
        description=TABLE1_DESCRIPTIONS["e"],
        procedures=_procs_e,
        fault_model="transition",
        observe_pos=False,
        hold_pis=True,
        constrain_scan_enable=True,
        legacy_key="e",
        tags=("paper", "table1"),
    )
)


# --------------------------------------------------------- extended scenarios
PATH_DELAY_SIMPLE_CPF = register_scenario(
    ScenarioSpec(
        name="path-delay-simple-cpf",
        description="Path-delay test on critical paths, simple 2-pulse CPF",
        procedures=_procs_c,
        fault_model="path-delay",
        observe_pos=False,
        hold_pis=True,
        constrain_scan_enable=True,
        path_count=12,
        tags=("extended", "path-delay"),
    )
)

STUCK_AT_EDT = register_scenario(
    ScenarioSpec(
        name="stuck-at-edt",
        description="Stuck-at test with EDT compression (2 channels)",
        procedures=_procs_a,
        fault_model="stuck-at",
        observe_pos=True,
        hold_pis=False,
        constrain_scan_enable=False,
        static_compaction=True,
        edt_channels=2,
        tags=("extended", "compression"),
    )
)

MIXED_CONSTRAINED_SWEEP = register_scenario(
    ScenarioSpec(
        name="mixed-constrained-sweep",
        description="Mixed stuck-at + transition sweep under ATE constraints",
        procedures=_procs_e,
        fault_model="mixed",
        observe_pos=False,
        hold_pis=True,
        constrain_scan_enable=True,
        tags=("extended", "mixed"),
    )
)

TRANSITION_INTERDOMAIN_ONLY = register_scenario(
    ScenarioSpec(
        name="transition-interdomain-only",
        description="Transition test restricted to inter-domain launch/capture",
        procedures=_procs_interdomain_only,
        fault_model="transition",
        observe_pos=False,
        hold_pis=True,
        constrain_scan_enable=True,
        tags=("extended", "inter-domain"),
    )
)

TRANSITION_CPF_EDT_EXPORT = register_scenario(
    ScenarioSpec(
        name="transition-cpf-edt-export",
        description="Simple-CPF transition test, EDT-compressed, STIL export",
        procedures=_procs_c,
        fault_model="transition",
        observe_pos=False,
        hold_pis=True,
        constrain_scan_enable=True,
        edt_channels=2,
        export_patterns=True,
        tags=("extended", "compression", "export"),
    )
)


# ----------------------------------------------------------------- accessors
def table1() -> tuple[ScenarioSpec, ...]:
    """The five Table 1 scenarios (a)–(e), in paper order."""
    return (TABLE1_A, TABLE1_B, TABLE1_C, TABLE1_D, TABLE1_E)


def table1_scenario(key: str) -> ScenarioSpec:
    """The Table 1 scenario for one paper experiment letter ("a".."e")."""
    key = key.lower()
    if key not in TABLE1_KEYS:
        raise KeyError(
            f"unknown experiment {key!r} (expected one of {TABLE1_KEYS})"
        )
    return get_scenario(f"table1-{key}")


def extended() -> tuple[ScenarioSpec, ...]:
    """The registered non-paper scenarios, sorted by name."""
    return tuple(get_scenario(name) for name in scenario_names(tag="extended"))


def resolve_scenario_or_letter(spec_or_name: "ScenarioSpec | str") -> ScenarioSpec:
    """Scenario lookup that also accepts the paper's experiment letters.

    The shared resolver behind campaign and diagnosis front doors: a
    :class:`ScenarioSpec` passes through unchanged (registered or not), a
    letter "a".."e" maps to its ``table1-*`` scenario, anything else is a
    registry name.
    """
    from repro.api.scenario import resolve_scenario

    if isinstance(spec_or_name, str) and spec_or_name.lower() in TABLE1_KEYS:
        return table1_scenario(spec_or_name)
    return resolve_scenario(spec_or_name)
