"""`Campaign` — design×scenario sweeps over the engine's backends.

A campaign is the grid product of registered (or ad-hoc) designs and
registered scenarios::

    from repro.api import Campaign

    report = (
        Campaign(designs=["table1-soc", "wide-edt"], scenarios=["a", "b", "c"])
        .with_cache(True)
        .run(backend="processes")
    )
    print(report.table("table1-soc"))   # byte-compatible with format_table1

Each cell (one design, one scenario) executes the same stage pipeline a
:class:`~repro.api.session.TestSession` runs, so a one-design campaign and a
session produce identical outcomes.  What the campaign adds:

* **declarative device axis** — designs are
  :class:`~repro.api.design.DesignSpec` values resolved from the design
  registry, built through the staged design pipeline once per design (and
  once per worker on the process backend);
* **cache-backed resume** — with :meth:`with_cache`, every cell's engine
  cache key is derived from the *spec* fingerprint
  (:func:`repro.engine.cache.campaign_cell_key`), so a re-run of an
  interrupted campaign serves completed cells from disk without even
  building their designs;
* **streaming report** — :class:`CampaignReport` grows cell by cell
  (cache hits immediately, then executed cells: one at a time on the serial
  backend, per fan-out batch on the pooled ones) and an ``on_cell``
  callback observes each cell as it lands; per-design ``table()`` output
  stays byte-compatible with the legacy ``format_table1``.

Scenario names accept the paper's experiment letters ("a".."e") as
shorthand for the registered ``table1-*`` scenarios.
"""

from __future__ import annotations

import json
import pickle
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Sequence

from repro.api.design import DesignSpec, prepare_from_spec, resolve_design
from repro.api.report import RunReport, ScenarioOutcome
from repro.api.scenario import ScenarioSpec
from repro.api.scenarios import resolve_scenario_or_letter
from repro.api.session import (
    DEFAULT_STAGES,
    ScenarioRun,
    TestSession,
    _is_result_transport_error,
    outcome_of,
)
from repro.atpg.config import AtpgOptions
from repro.atpg.generator import AtpgResult
from repro.core.flow import PreparedDesign
from repro.engine.cache import (
    ResultCache,
    campaign_cell_key,
    coerce_cache,
    design_fingerprint,
    design_spec_fingerprint,
)
from repro.engine.scheduler import BACKENDS, ProcessBackend, ThreadBackend

#: Cell fan-out backends ``Campaign.run`` accepts (the PR 2 backend set
#: minus ``compiled``, which only makes sense inside fault simulation).
CAMPAIGN_BACKENDS = ("serial", "threads", "processes")


def resolve_campaign_scenario(spec_or_name: "ScenarioSpec | str") -> ScenarioSpec:
    """Scenario lookup that also accepts the paper's experiment letters."""
    return resolve_scenario_or_letter(spec_or_name)


# --------------------------------------------------------------------------
# Design entries
# --------------------------------------------------------------------------
@dataclass
class _DesignEntry:
    """One design axis entry: a declarative spec or an already built design."""

    name: str
    spec: DesignSpec | None = None
    prepared: PreparedDesign | None = None

    @property
    def fingerprint(self) -> str:
        if self.spec is not None:
            return design_spec_fingerprint(self.spec)
        assert self.prepared is not None
        return design_fingerprint(self.prepared.model)

    def materialize(self) -> PreparedDesign:
        """The built design (cached on the entry for the campaign's lifetime)."""
        if self.prepared is None:
            assert self.spec is not None
            self.prepared = prepare_from_spec(self.spec)
        return self.prepared


def _design_entry(design: "DesignSpec | str | PreparedDesign") -> _DesignEntry:
    if isinstance(design, PreparedDesign):
        if design.spec is not None:
            # A spec-built design keeps its declarative identity, so cells
            # computed from the prepared object and from the bare spec share
            # cache entries.
            return _DesignEntry(name=design.spec.name, spec=design.spec, prepared=design)
        return _DesignEntry(name=design.netlist.name, prepared=design)
    spec = resolve_design(design)
    return _DesignEntry(name=spec.name, spec=spec)


# --------------------------------------------------------------------------
# Report
# --------------------------------------------------------------------------
@dataclass
class CampaignCell:
    """One completed (design, scenario) grid cell, in JSON-safe form."""

    design: str
    scenario: str
    outcome: ScenarioOutcome
    cell_key: str | None = None
    cache_hit: bool = False
    wall_seconds: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "design": self.design,
            "scenario": self.scenario,
            "outcome": self.outcome.to_dict(),
            "cell_key": self.cell_key,
            "cache_hit": self.cache_hit,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignCell":
        payload = dict(data)
        payload["outcome"] = ScenarioOutcome.from_dict(payload["outcome"])  # type: ignore[arg-type]
        return cls(**payload)  # type: ignore[arg-type]


@dataclass
class CampaignReport:
    """Streaming per-cell campaign results.

    Cells are appended as they complete (:meth:`add_cell`); per-design views
    reshape them into the session-level :class:`~repro.api.report.RunReport`,
    whose ``table()`` is byte-compatible with ``format_table1`` for the
    built-in Table 1 scenarios.
    """

    campaign: dict[str, object] = field(default_factory=dict)
    cells: list[CampaignCell] = field(default_factory=list)

    # ------------------------------------------------------------- collection
    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def add_cell(self, cell: CampaignCell) -> CampaignCell:
        self.cells.append(cell)
        return cell

    def designs(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.design not in seen:
                seen.append(cell.design)
        return seen

    def scenarios(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.scenario not in seen:
                seen.append(cell.scenario)
        return seen

    def cell(self, design: str, scenario: str) -> CampaignCell:
        """Look up one cell (scenario accepts name or experiment letter)."""
        for cell in self.cells:
            if cell.design == design and scenario in (
                cell.scenario, cell.outcome.legacy_key
            ):
                return cell
        raise KeyError(f"no campaign cell for design={design!r} scenario={scenario!r}")

    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cache_hit)

    # ------------------------------------------------------------- formatting
    def run_report(self, design: str) -> RunReport:
        """One design's row of the grid as a session-level RunReport."""
        outcomes = [cell.outcome for cell in self.cells if cell.design == design]
        if not outcomes:
            available = ", ".join(self.designs()) or "<empty report>"
            raise KeyError(f"no cells for design {design!r}; report has: {available}")
        session = dict(self.campaign)
        session["design"] = design
        return RunReport(session=session, outcomes=outcomes)

    def table(self, design: str, title: str = "Table 1: Experimental Results") -> str:
        """One design's fixed-width result table (format_table1-compatible)."""
        return self.run_report(design).table(title=title)

    def summary(self) -> str:
        """One line per cell, in completion order."""
        lines = []
        for cell in self.cells:
            origin = "cache" if cell.cache_hit else "run"
            lines.append(
                f"{cell.design:<20} {cell.scenario:<28} "
                f"TC={cell.outcome.test_coverage:6.2f}%  "
                f"patterns={cell.outcome.pattern_count:5d}  "
                f"{origin:<5} {cell.wall_seconds:8.2f}s"
            )
        return "\n".join(lines)

    # ---------------------------------------------------------- serialization
    def to_json(self, indent: int | None = 2) -> str:
        payload = {
            "campaign": self.campaign,
            "cells": [cell.to_dict() for cell in self.cells],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        payload = json.loads(text)
        return cls(
            campaign=dict(payload.get("campaign", {})),
            cells=[CampaignCell.from_dict(item) for item in payload.get("cells", [])],
        )

    # ------------------------------------------------------------- comparison
    def same_results(self, other: "CampaignReport") -> bool:
        """Deterministic-field equality over the full grid (ignores timing
        and cache provenance — a cache-resumed campaign must compare equal
        to the run that populated the cache)."""
        mine = {(c.design, c.scenario): c for c in self.cells}
        theirs = {(c.design, c.scenario): c for c in other.cells}
        if mine.keys() != theirs.keys():
            return False
        return all(
            mine[key].outcome.same_results(theirs[key].outcome) for key in mine
        )


# --------------------------------------------------------------------------
# Process-worker plumbing (module level: must be picklable by reference)
# --------------------------------------------------------------------------
#: Worker-global built designs, keyed by design fingerprint — each worker
#: builds (or unpickles) every design at most once per campaign.
_WORKER_DESIGNS: dict[str, PreparedDesign] = {}

#: Worker-global scenario executions for diagnosis cells, keyed by (design
#: fingerprint, scenario name) — a worker regenerates each cell's pattern
#: set at most once, no matter how many defects it diagnoses against it.
_WORKER_DIAGNOSIS_RUNS: dict[tuple[str, str], tuple] = {}


def _execute_campaign_cell(payload: bytes) -> ScenarioRun:
    """Process-pool entry point: build/fetch the design, run one scenario.

    The design rides along as a nested pickle blob (cheap to transfer, made
    once per design in the parent); it is only deserialized — and, for
    spec-backed designs, built — the first time this worker sees its
    fingerprint.
    """
    fingerprint, design_blob, options, spec = pickle.loads(payload)
    prepared = _WORKER_DESIGNS.get(fingerprint)
    if prepared is None:
        design = pickle.loads(design_blob)
        prepared = prepare_from_spec(design) if isinstance(design, DesignSpec) else design
        _WORKER_DESIGNS[fingerprint] = prepared
    session = TestSession.from_prepared(prepared, options)
    return session._execute_stages(spec)


def _execute_diagnosis_cell(payload: bytes):
    """Process-pool entry point: diagnose one (design, scenario, defect) cell.

    Designs and scenario pattern sets are cached worker-globally, so a
    worker pays for each design build and each ATPG run at most once per
    campaign regardless of how many defects land on it; with a campaign
    cache attached, pattern sets additionally resume from the persistent
    store instead of re-running ATPG.
    """
    from repro.diagnose import run_diagnosis

    (fingerprint, design_blob, options, scenario_spec, diagnosis_spec,
     cache) = pickle.loads(payload)
    prepared = _WORKER_DESIGNS.get(fingerprint)
    if prepared is None:
        design = pickle.loads(design_blob)
        prepared = prepare_from_spec(design) if isinstance(design, DesignSpec) else design
        _WORKER_DESIGNS[fingerprint] = prepared
    run_key = (fingerprint, scenario_spec.name)
    entry = _WORKER_DIAGNOSIS_RUNS.get(run_key)
    if entry is None:
        session = TestSession.from_prepared(prepared, options)
        session._cache = cache
        run = session._execute(scenario_spec)
        entry = (run, scenario_spec.build_setup(prepared, options))
        _WORKER_DIAGNOSIS_RUNS[run_key] = entry
    run, setup = entry
    assert run.patterns is not None, "diagnosis scenarios must produce patterns"
    return run_diagnosis(prepared, setup, run.patterns, diagnosis_spec, options=options)


# --------------------------------------------------------------------------
# The campaign
# --------------------------------------------------------------------------
class Campaign:
    """Fluent builder running a design×scenario grid through the engine."""

    def __init__(
        self,
        designs: Iterable["DesignSpec | str | PreparedDesign"],
        scenarios: Iterable["ScenarioSpec | str"],
        options: AtpgOptions | None = None,
    ) -> None:
        self._designs = [_design_entry(design) for design in designs]
        self._scenarios = [resolve_campaign_scenario(item) for item in scenarios]
        if not self._designs:
            raise ValueError("a campaign needs at least one design")
        if not self._scenarios:
            raise ValueError("a campaign needs at least one scenario")
        names = [entry.name for entry in self._designs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate designs in campaign: {names}")
        scenario_names = [spec.name for spec in self._scenarios]
        if len(set(scenario_names)) != len(scenario_names):
            raise ValueError(f"duplicate scenarios in campaign: {scenario_names}")
        self.options = options or AtpgOptions()
        self._cache: ResultCache | None = None
        #: Raw ScenarioRun per executed/cached cell, keyed (design, scenario).
        self.artifacts: dict[tuple[str, str], ScenarioRun] = {}
        self.report: CampaignReport | None = None
        #: The last :meth:`diagnose` sweep's report (None before the first).
        self.diagnosis_report = None

    # -------------------------------------------------------- fluent builders
    def with_options(
        self, options: AtpgOptions | None = None, **knobs: object
    ) -> "Campaign":
        """Set the campaign's ATPG options, or tweak individual knobs."""
        if options is not None and knobs:
            raise ValueError("pass either an AtpgOptions object or keyword knobs")
        if options is not None:
            self.options = options
        else:
            self.options = replace(self.options, **knobs)  # type: ignore[arg-type]
        return self

    def with_backend(
        self,
        backend: str,
        *,
        shards: int | None = None,
        workers: int | None = None,
    ) -> "Campaign":
        """Select the engine backend fault simulation runs on inside each cell."""
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown engine backend {backend!r} (expected one of {BACKENDS})"
            )
        changes: dict[str, object] = {"sim_backend": backend}
        if shards is not None:
            changes["sim_shards"] = shards
        if workers is not None:
            changes["sim_workers"] = workers
        self.options = replace(self.options, **changes)  # type: ignore[arg-type]
        return self

    def with_cache(self, cache: "ResultCache | str | bool | None" = True) -> "Campaign":
        """Attach the persistent engine result cache (cell-level resume).

        Every cell is keyed on (design fingerprint, scenario+options
        fingerprint, engine version); re-running a campaign after an
        interruption serves all previously completed cells from disk —
        without rebuilding their designs, because spec-backed fingerprints
        are computed from the declarative spec alone.
        """
        self._cache = coerce_cache(cache)
        return self

    # --------------------------------------------------------------- queries
    @property
    def design_names(self) -> list[str]:
        return [entry.name for entry in self._designs]

    @property
    def scenario_names(self) -> list[str]:
        return [spec.name for spec in self._scenarios]

    def grid(self) -> list[tuple[str, str]]:
        """The (design, scenario) cell grid, design-major."""
        return [
            (entry.name, spec.name)
            for entry in self._designs
            for spec in self._scenarios
        ]

    def result_of(self, design: str, scenario: str) -> AtpgResult:
        """The raw AtpgResult of one executed fault-model cell."""
        for (design_name, scenario_name), run in self.artifacts.items():
            if design_name == design and scenario in (
                scenario_name, run.spec.legacy_key
            ):
                if run.result is None:
                    raise ValueError(
                        f"cell ({design!r}, {scenario!r}) produced no AtpgResult "
                        f"(fault model {run.spec.fault_model!r})"
                    )
                return run.result
        raise KeyError(
            f"cell ({design!r}, {scenario!r}) has not been executed; "
            f"executed: {sorted(self.artifacts) or '<none>'}"
        )

    # ----------------------------------------------------------------- running
    def run(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        on_cell: "Callable[[CampaignCell], None] | None" = None,
    ) -> CampaignReport:
        """Execute the grid and return the streaming campaign report.

        Args:
            backend: Cell fan-out backend — ``"serial"``, ``"threads"`` or
                ``"processes"`` (cells run in worker interpreters through the
                engine's process backend; each worker builds every design at
                most once).  Results are deterministic and identical across
                backends.
            max_workers: Worker-pool size (defaults to the engine's auto
                sizing for processes, one thread per cell for threads).
            on_cell: Callback observing each :class:`CampaignCell` as it
                lands in the report: cache hits first, then — on the serial
                backend — each executed cell as it completes; the pooled
                backends deliver their executed cells together when the
                fan-out finishes.
        """
        if backend not in CAMPAIGN_BACKENDS:
            raise ValueError(
                f"unknown campaign backend {backend!r} "
                f"(expected one of {CAMPAIGN_BACKENDS})"
            )
        report = CampaignReport(campaign=self._metadata(backend))
        merged: dict[tuple[str, str], CampaignCell] = {}
        misses: list[tuple[_DesignEntry, ScenarioSpec, str | None]] = []
        # Cache probe pass: completed cells of an earlier (possibly
        # interrupted) run stream into the report immediately, and never
        # trigger a design build.
        for entry in self._designs:
            for spec in self._scenarios:
                key = self._cell_key(entry, spec)
                cached = self._cache_lookup(key)
                if cached is not None:
                    cell = self._merge(entry, spec, cached, key, report,
                                       cache_hit=True, on_cell=on_cell)
                    merged[(entry.name, spec.name)] = cell
                else:
                    misses.append((entry, spec, key))
        if misses:
            if backend != "serial" and len(misses) > 1:
                runs = self._execute_misses(misses, backend, max_workers)
                for (entry, spec, key), run in zip(misses, runs):
                    self._cache_store(key, entry, spec, run)
                    cell = self._merge(entry, spec, run, key, report,
                                       cache_hit=False, on_cell=on_cell)
                    merged[(entry.name, spec.name)] = cell
            else:
                # Serial: execute, cache and stream one cell at a time, so
                # an interrupted run leaves every completed cell resumable.
                sessions: dict[str, TestSession] = {}
                for entry, spec, key in misses:
                    session = sessions.get(entry.name)
                    if session is None:
                        session = sessions[entry.name] = TestSession.from_prepared(
                            entry.materialize(), self.options
                        )
                    run = session._execute_stages(spec)
                    self._cache_store(key, entry, spec, run)
                    cell = self._merge(entry, spec, run, key, report,
                                       cache_hit=False, on_cell=on_cell)
                    merged[(entry.name, spec.name)] = cell
        # Re-order the cells into grid order for the final report (the
        # streaming callback saw completion order).
        report.cells = [merged[cell] for cell in self.grid()]
        self.report = report
        return report

    # --------------------------------------------------------------- diagnosis
    def diagnose(
        self,
        defects: Iterable[object],
        backend: str = "serial",
        max_workers: int | None = None,
        on_cell: "Callable[[object], None] | None" = None,
        **spec_overrides: object,
    ):
        """Sweep a design x scenario x defect diagnosis grid.

        Every cell injects one defect into one design, runs the scenario's
        pattern set against the injected device, captures the fail log and
        ranks the cone-intersection candidates — streaming one
        :class:`~repro.diagnose.DiagnosisCell` per completed cell into a
        :class:`~repro.diagnose.DiagnosisReport` (rank of the true defect,
        resolution, candidate counts).

        Pattern sets are generated once per (design, scenario) and shared by
        every defect on that cell row; with :meth:`with_cache` attached both
        the pattern sets and the diagnosis results resume from the
        persistent engine cache.

        Args:
            defects: The :class:`~repro.diagnose.DefectSpec` values to
                inject (the defect axis of the grid).
            backend: Cell fan-out backend — ``"serial"``, ``"threads"`` or
                ``"processes"``.  Results are deterministic and identical
                across backends.
            max_workers: Worker-pool size for the pooled backends.
            on_cell: Callback observing each cell as it lands in the report.
            **spec_overrides: Extra :class:`~repro.diagnose.DiagnosisSpec`
                fields applied to every cell (``candidate_kinds``,
                ``max_sites``, ``rerank_iterations``, ...).
        """
        from repro.diagnose import DiagnosisCell, DiagnosisReport, DiagnosisSpec
        from repro.engine.cache import diagnosis_cell_key

        if backend not in CAMPAIGN_BACKENDS:
            raise ValueError(
                f"unknown campaign backend {backend!r} "
                f"(expected one of {CAMPAIGN_BACKENDS})"
            )
        defect_list = list(defects)
        if not defect_list:
            raise ValueError("a diagnosis campaign needs at least one defect")
        report = DiagnosisReport(
            campaign={
                **self._metadata(backend),
                "defects": [defect.describe() for defect in defect_list],
            }
        )
        sessions: dict[str, TestSession] = {}

        def session_of(entry: _DesignEntry) -> TestSession:
            """One session per design, built lazily (cache misses only)."""
            session = sessions.get(entry.name)
            if session is None:
                session = sessions[entry.name] = TestSession.from_prepared(
                    entry.materialize(), self.options
                )
                session._cache = self._cache
            return session

        cells = [
            (entry, scenario, DiagnosisSpec(
                scenario=scenario.name, defect=defect, **spec_overrides  # type: ignore[arg-type]
            ))
            for entry in self._designs
            for scenario in self._scenarios
            for defect in defect_list
        ]

        def merge(entry: _DesignEntry, diagnosis_spec: "DiagnosisSpec", result) -> None:
            cell = DiagnosisCell(
                design=entry.name,
                scenario=diagnosis_spec.scenario,
                defect=diagnosis_spec.defect,
                rank_of_defect=result.rank_of_defect,
                resolution=result.resolution,
                candidate_count=result.candidate_count,
                site_count=result.site_count,
                fail_count=result.fail_count,
                pattern_count=result.pattern_count,
                wall_seconds=result.wall_seconds,
                cache_hit=result.cache_hit,
            )
            report.add_cell(cell)
            if on_cell is not None:
                on_cell(cell)

        # Cache probe pass: cell keys derive from the design *fingerprint*
        # (spec-backed entries never need a build), so a resumed campaign
        # streams its completed cells without constructing any design.
        misses: list[tuple] = []
        keys: list[str | None] = []
        for entry, scenario, diagnosis_spec in cells:
            key = None
            if self._cache is not None:
                # Cells run the default stage pipeline; fold it in exactly
                # like TestSession.diagnose does for its own sessions.
                key = diagnosis_cell_key(
                    entry.fingerprint, scenario, diagnosis_spec, self.options,
                    extra=tuple(DEFAULT_STAGES),
                )
                cached = self._cache.get(key)
                if cached is not None:
                    cached.cache_hit = True
                    merge(entry, diagnosis_spec, cached)
                    continue
            misses.append((entry, scenario, diagnosis_spec))
            keys.append(key)

        def finish(entry, scenario, diagnosis_spec, key, result) -> None:
            # The probe pass already established this campaign key is absent,
            # so store unconditionally — even when the result itself came
            # from a session-level cache hit (different key space), the next
            # campaign resume must find it without building the design.
            if self._cache is not None and key is not None:
                self._cache.put(
                    key,
                    result,
                    label=f"diagnose::{entry.name}::{scenario.name}::"
                          f"{diagnosis_spec.defect.describe()}",
                )
            merge(entry, diagnosis_spec, result)

        if not misses:
            pass
        elif backend == "processes" and len(misses) > 1:
            results = self._diagnose_in_processes(misses, session_of, max_workers)
            for (entry, scenario, spec), key, result in zip(misses, keys, results):
                finish(entry, scenario, spec, key, result)
        elif backend == "threads" and len(misses) > 1:
            # Pattern generation is serialized per (design, scenario) so the
            # threaded cells only race on the already-shared artifacts.
            for entry, scenario, _ in misses:
                session = session_of(entry)
                if scenario.name not in session.artifacts:
                    session.artifacts[scenario.name] = session._execute(scenario)
            pool = ThreadBackend(max_workers or len(misses))
            try:
                # The scenario *object* is passed alongside the JSON-safe
                # DiagnosisSpec so unregistered ad-hoc scenarios work.
                results = pool.map(
                    lambda item: session_of(item[0]).diagnose(
                        item[2], scenario=item[1]
                    ),
                    misses,
                )
            finally:
                pool.close()
            for (entry, scenario, spec), key, result in zip(misses, keys, results):
                finish(entry, scenario, spec, key, result)
        else:
            # Serial: execute, cache and stream one cell at a time, so an
            # interrupted sweep leaves every completed cell resumable.
            for (entry, scenario, diagnosis_spec), key in zip(misses, keys):
                result = session_of(entry).diagnose(diagnosis_spec, scenario=scenario)
                finish(entry, scenario, diagnosis_spec, key, result)
        self.diagnosis_report = report
        return report

    def _diagnose_in_processes(
        self,
        misses: Sequence[tuple],
        session_of: "Callable[[_DesignEntry], TestSession]",
        max_workers: int | None,
    ) -> list:
        """Fan cache-missing diagnosis cells out over the process backend.

        Ships one design blob per design (specs stay unbuilt until a worker
        needs them); the campaign cache rides along so workers resume
        pattern sets from the persistent store.  Returns one result per
        miss, order-preserving; transport failures fall back in-process.
        """
        try:
            design_blobs: dict[str, bytes] = {}
            payloads = []
            for entry, scenario, diagnosis_spec in misses:
                blob = design_blobs.get(entry.name)
                if blob is None:
                    blob = pickle.dumps(
                        entry.spec if entry.spec is not None else entry.prepared
                    )
                    design_blobs[entry.name] = blob
                payloads.append(
                    pickle.dumps(
                        (entry.fingerprint, blob, self.options, scenario,
                         diagnosis_spec, self._cache)
                    )
                )
        except (pickle.PickleError, TypeError, AttributeError) as exc:
            self._warn_fallback(f"diagnosis cell payloads are not picklable ({exc})")
            return [
                session_of(entry).diagnose(diagnosis_spec, scenario=scenario)
                for entry, scenario, diagnosis_spec in misses
            ]
        pool = ProcessBackend(max_workers)
        try:
            return pool.map(_execute_diagnosis_cell, payloads)
        except Exception as exc:
            if not _is_result_transport_error(exc):
                raise
            self._warn_fallback(
                f"a diagnosis cell result could not be returned from a worker ({exc})"
            )
            return [
                session_of(entry).diagnose(diagnosis_spec, scenario=scenario)
                for entry, scenario, diagnosis_spec in misses
            ]
        finally:
            pool.close()

    # -------------------------------------------------------------- internals
    def _metadata(self, backend: str) -> dict[str, object]:
        return {
            "designs": self.design_names,
            "scenarios": self.scenario_names,
            "backend": backend,
            "cached": self._cache is not None,
        }

    def _cell_key(self, entry: _DesignEntry, spec: ScenarioSpec) -> str | None:
        if self._cache is None:
            return None
        # The default stage pipeline is folded in exactly like TestSession
        # does.  Spec-backed designs key on the spec fingerprint (computable
        # without a build); only spec-less prepared designs key on the model
        # fingerprint and can therefore share entries with default-pipeline
        # session runs.
        return campaign_cell_key(
            entry.fingerprint, spec, self.options, extra=tuple(DEFAULT_STAGES)
        )

    def _cache_lookup(self, key: str | None) -> ScenarioRun | None:
        if self._cache is None or key is None:
            return None
        run = self._cache.get(key)
        if run is None:
            return None
        run.cache_info = {"hit": True, "key": key}
        return run

    def _cache_store(
        self, key: str | None, entry: _DesignEntry, spec: ScenarioSpec, run: ScenarioRun
    ) -> None:
        if self._cache is None or key is None:
            return
        run.cache_info = {"hit": False, "key": key}
        self._cache.put(key, run, label=f"{entry.name}::{spec.name}")

    def _merge(
        self,
        entry: _DesignEntry,
        spec: ScenarioSpec,
        run: ScenarioRun,
        key: str | None,
        report: CampaignReport,
        *,
        cache_hit: bool,
        on_cell: "Callable[[CampaignCell], None] | None",
    ) -> CampaignCell:
        self.artifacts[(entry.name, spec.name)] = run
        cell = CampaignCell(
            design=entry.name,
            scenario=spec.name,
            outcome=outcome_of(run),
            cell_key=key,
            cache_hit=cache_hit,
            wall_seconds=sum(run.stage_seconds.values()),
        )
        report.add_cell(cell)
        if on_cell is not None:
            on_cell(cell)
        return cell

    def _execute_misses(
        self,
        misses: Sequence[tuple[_DesignEntry, ScenarioSpec, str | None]],
        backend: str,
        max_workers: int | None,
    ) -> list[ScenarioRun]:
        """Pooled fan-out of the cache-missing cells (order-preserving)."""
        if backend == "processes":
            runs = self._run_in_processes(misses, max_workers)
            if runs is not None:
                return runs
            # transport failure fallback to threads (already warned)
        sessions = self._sessions_for(misses)
        pool = ThreadBackend(max_workers or len(misses))
        try:
            return pool.map(
                lambda item: sessions[item[0].name]._execute_stages(item[1]),
                list(misses),
            )
        finally:
            pool.close()

    def _sessions_for(
        self, misses: Sequence[tuple[_DesignEntry, ScenarioSpec, str | None]]
    ) -> dict[str, TestSession]:
        """One in-process session per distinct design (built once each)."""
        sessions: dict[str, TestSession] = {}
        for entry, _, _ in misses:
            if entry.name not in sessions:
                sessions[entry.name] = TestSession.from_prepared(
                    entry.materialize(), self.options
                )
        return sessions

    def _run_in_processes(
        self,
        misses: Sequence[tuple[_DesignEntry, ScenarioSpec, str | None]],
        max_workers: int | None,
    ) -> "list[ScenarioRun] | None":
        """Fan cells out over the engine process backend (None == fall back)."""
        try:
            # The (potentially heavy) design is pickled once per design and
            # embedded as a bytes blob; cells of the same design reuse it.
            design_blobs: dict[str, bytes] = {}
            payloads = []
            for entry, spec, _ in misses:
                blob = design_blobs.get(entry.name)
                if blob is None:
                    blob = pickle.dumps(
                        entry.spec if entry.spec is not None else entry.prepared
                    )
                    design_blobs[entry.name] = blob
                payloads.append(
                    pickle.dumps((entry.fingerprint, blob, self.options, spec))
                )
        except (pickle.PickleError, TypeError, AttributeError) as exc:
            self._warn_fallback(f"campaign cell payloads are not picklable ({exc})")
            return None
        pool = ProcessBackend(max_workers)
        try:
            return pool.map(_execute_campaign_cell, payloads)
        except Exception as exc:
            if not _is_result_transport_error(exc):
                raise
            self._warn_fallback(
                f"a campaign cell result could not be returned from a worker ({exc})"
            )
            return None
        finally:
            pool.close()

    @staticmethod
    def _warn_fallback(reason: str) -> None:
        warnings.warn(
            f"{reason}; falling back to the threads backend",
            RuntimeWarning,
            stacklevel=4,
        )
