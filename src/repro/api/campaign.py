"""`Campaign` — design×scenario sweeps on the unified execution plane.

A campaign is the grid product of registered (or ad-hoc) designs and
registered scenarios::

    from repro.api import Campaign
    from repro.runtime import Executor

    report = (
        Campaign(designs=["table1-soc", "wide-edt"], scenarios=["a", "b", "c"])
        .with_cache(True)
        .run(executor=Executor(backend="processes"))
    )
    print(report.table("table1-soc"))   # byte-compatible with format_table1

Each cell (one design, one scenario) executes the same stage pipeline a
:class:`~repro.api.session.TestSession` runs, so a one-design campaign and a
session produce identical outcomes.  The campaign itself is a *plan
compiler*: :meth:`Campaign.plan` and :meth:`Campaign.diagnosis_plan` lower
the grid into declarative :class:`~repro.runtime.Plan` graphs and
``run()``/``diagnose()`` hand them to a :class:`~repro.runtime.Executor`.
What the campaign layer adds:

* **declarative device axis** — designs are
  :class:`~repro.api.design.DesignSpec` values resolved from the design
  registry, built through the staged design pipeline once per design (and
  once per worker on the process backend);
* **cache-backed resume** — with :meth:`with_cache`, every cell job carries
  an engine cache key derived from the *spec* fingerprint
  (:func:`repro.engine.cache.campaign_cell_key`), so a re-run of an
  interrupted campaign serves completed cells from disk without even
  building their designs (the executor skips those jobs outright);
* **streaming report** — :class:`CampaignReport` grows cell by cell as the
  executor's events land (cache hits first, then executed cells in
  completion order) and an ``on_cell`` callback observes each one;
  per-design ``table()`` output stays byte-compatible with the legacy
  ``format_table1``.

Scenario names accept the paper's experiment letters ("a".."e") as
shorthand for the registered ``table1-*`` scenarios.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Sequence

from repro.api.design import DesignSpec, prepare_from_spec, resolve_design
from repro.api.report import RunReport, ScenarioOutcome
from repro.api.scenario import ScenarioSpec
from repro.api.scenarios import resolve_scenario_or_letter
from repro.api.session import DEFAULT_STAGES, ScenarioRun, outcome_of
from repro.atpg.config import AtpgOptions
from repro.atpg.generator import AtpgResult
from repro.core.flow import PreparedDesign
from repro.engine.cache import (
    ResultCache,
    campaign_cell_key,
    coerce_cache,
    design_fingerprint,
    design_spec_fingerprint,
)
from repro.engine.scheduler import BACKENDS, validate_pool_size
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, coerce_telemetry
from repro.patterns.store import PatternStore
from repro.runtime import EXECUTOR_BACKENDS, Event, Executor, Job, Plan, PlanCancelled

#: Cell fan-out backends ``Campaign.run`` accepts — the executor backend
#: set (engine set minus ``compiled``), aliased so the front door and the
#: executor can never drift.
CAMPAIGN_BACKENDS = EXECUTOR_BACKENDS


def resolve_campaign_scenario(spec_or_name: "ScenarioSpec | str") -> ScenarioSpec:
    """Scenario lookup that also accepts the paper's experiment letters."""
    return resolve_scenario_or_letter(spec_or_name)


# --------------------------------------------------------------------------
# Design entries
# --------------------------------------------------------------------------
@dataclass
class _DesignEntry:
    """One design axis entry: a declarative spec or an already built design."""

    name: str
    spec: DesignSpec | None = None
    prepared: PreparedDesign | None = None

    @property
    def fingerprint(self) -> str:
        if self.spec is not None:
            return design_spec_fingerprint(self.spec)
        assert self.prepared is not None
        return design_fingerprint(self.prepared.model)

    def materialize(self) -> PreparedDesign:
        """The built design (cached on the entry for the campaign's lifetime)."""
        if self.prepared is None:
            assert self.spec is not None
            self.prepared = prepare_from_spec(self.spec)
        return self.prepared


def _design_entry(design: "DesignSpec | str | PreparedDesign") -> _DesignEntry:
    if isinstance(design, PreparedDesign):
        if design.spec is not None:
            # A spec-built design keeps its declarative identity, so cells
            # computed from the prepared object and from the bare spec share
            # cache entries.
            return _DesignEntry(name=design.spec.name, spec=design.spec, prepared=design)
        return _DesignEntry(name=design.netlist.name, prepared=design)
    spec = resolve_design(design)
    return _DesignEntry(name=spec.name, spec=spec)


# --------------------------------------------------------------------------
# Report
# --------------------------------------------------------------------------
@dataclass
class CampaignCell:
    """One completed (design, scenario) grid cell, in JSON-safe form."""

    design: str
    scenario: str
    outcome: ScenarioOutcome
    cell_key: str | None = None
    cache_hit: bool = False
    wall_seconds: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "design": self.design,
            "scenario": self.scenario,
            "outcome": self.outcome.to_dict(),
            "cell_key": self.cell_key,
            "cache_hit": self.cache_hit,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignCell":
        payload = dict(data)
        payload["outcome"] = ScenarioOutcome.from_dict(payload["outcome"])  # type: ignore[arg-type]
        return cls(**payload)  # type: ignore[arg-type]


@dataclass
class CampaignReport:
    """Streaming per-cell campaign results.

    Cells are appended as they complete (:meth:`add_cell`); per-design views
    reshape them into the session-level :class:`~repro.api.report.RunReport`,
    whose ``table()`` is byte-compatible with ``format_table1`` for the
    built-in Table 1 scenarios.
    """

    campaign: dict[str, object] = field(default_factory=dict)
    cells: list[CampaignCell] = field(default_factory=list)

    # ------------------------------------------------------------- collection
    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def add_cell(self, cell: CampaignCell) -> CampaignCell:
        self.cells.append(cell)
        return cell

    def designs(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.design not in seen:
                seen.append(cell.design)
        return seen

    def scenarios(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.scenario not in seen:
                seen.append(cell.scenario)
        return seen

    def cell(self, design: str, scenario: str) -> CampaignCell:
        """Look up one cell (scenario accepts name or experiment letter)."""
        for cell in self.cells:
            if cell.design == design and scenario in (
                cell.scenario, cell.outcome.legacy_key
            ):
                return cell
        raise KeyError(f"no campaign cell for design={design!r} scenario={scenario!r}")

    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cache_hit)

    # ------------------------------------------------------------- formatting
    def run_report(self, design: str) -> RunReport:
        """One design's row of the grid as a session-level RunReport."""
        outcomes = [cell.outcome for cell in self.cells if cell.design == design]
        if not outcomes:
            available = ", ".join(self.designs()) or "<empty report>"
            raise KeyError(f"no cells for design {design!r}; report has: {available}")
        session = dict(self.campaign)
        session["design"] = design
        return RunReport(session=session, outcomes=outcomes)

    def table(
        self,
        design: str,
        title: str = "Table 1: Experimental Results",
        *,
        show_size: bool = False,
    ) -> str:
        """One design's fixed-width result table (format_table1-compatible).

        ``show_size=True`` appends the design's size-estimate NOTE line
        (from the campaign's ``design_sizes`` metadata); the default output
        stays byte-compatible with ``format_table1``.
        """
        return self.run_report(design).table(title=title, show_size=show_size)

    def summary(self) -> str:
        """One line per cell, in completion order."""
        lines = []
        for cell in self.cells:
            origin = "cache" if cell.cache_hit else "run"
            lines.append(
                f"{cell.design:<20} {cell.scenario:<28} "
                f"TC={cell.outcome.test_coverage:6.2f}%  "
                f"patterns={cell.outcome.pattern_count:5d}  "
                f"{origin:<5} {cell.wall_seconds:8.2f}s"
            )
        return "\n".join(lines)

    # ---------------------------------------------------------- serialization
    def to_json(self, indent: int | None = 2) -> str:
        payload = {
            "campaign": self.campaign,
            "cells": [cell.to_dict() for cell in self.cells],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        payload = json.loads(text)
        return cls(
            campaign=dict(payload.get("campaign", {})),
            cells=[CampaignCell.from_dict(item) for item in payload.get("cells", [])],
        )

    # ------------------------------------------------------------- comparison
    def same_results(self, other: "CampaignReport") -> bool:
        """Deterministic-field equality over the full grid (ignores timing
        and cache provenance — a cache-resumed campaign must compare equal
        to the run that populated the cache)."""
        mine = {(c.design, c.scenario): c for c in self.cells}
        theirs = {(c.design, c.scenario): c for c in other.cells}
        if mine.keys() != theirs.keys():
            return False
        return all(
            mine[key].outcome.same_results(theirs[key].outcome) for key in mine
        )


# --------------------------------------------------------------------------
# The campaign
# --------------------------------------------------------------------------
class Campaign:
    """Fluent builder running a design×scenario grid through the engine."""

    def __init__(
        self,
        designs: Iterable["DesignSpec | str | PreparedDesign"],
        scenarios: Iterable["ScenarioSpec | str"],
        options: AtpgOptions | None = None,
    ) -> None:
        self._designs = [_design_entry(design) for design in designs]
        self._scenarios = [resolve_campaign_scenario(item) for item in scenarios]
        if not self._designs:
            raise ValueError("a campaign needs at least one design")
        if not self._scenarios:
            raise ValueError("a campaign needs at least one scenario")
        names = [entry.name for entry in self._designs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate designs in campaign: {names}")
        scenario_names = [spec.name for spec in self._scenarios]
        if len(set(scenario_names)) != len(scenario_names):
            raise ValueError(f"duplicate scenarios in campaign: {scenario_names}")
        self.options = options or AtpgOptions()
        self._cache: ResultCache | None = None
        self._pattern_store: "PatternStore | None" = None
        self._pattern_store_stream = False
        self._telemetry: Telemetry = NULL_TELEMETRY
        self._lint = False
        self._lint_waivers: tuple = ()
        #: LintReport per design from the last pre-flight gate (if enabled).
        self.lint_reports: dict[str, object] = {}
        #: Raw ScenarioRun per executed/cached cell, keyed (design, scenario).
        self.artifacts: dict[tuple[str, str], ScenarioRun] = {}
        self.report: CampaignReport | None = None
        #: The last :meth:`diagnose` sweep's report (None before the first).
        self.diagnosis_report = None
        #: The last :meth:`diagnose_volume` run's report (None before the first).
        self.volume_report = None

    # -------------------------------------------------------- fluent builders
    def with_options(
        self, options: AtpgOptions | None = None, **knobs: object
    ) -> "Campaign":
        """Set the campaign's ATPG options, or tweak individual knobs."""
        if options is not None and knobs:
            raise ValueError("pass either an AtpgOptions object or keyword knobs")
        if options is not None:
            self.options = options
        else:
            self.options = replace(self.options, **knobs)  # type: ignore[arg-type]
        return self

    def with_backend(
        self,
        backend: str,
        *,
        shards: int | None = None,
        workers: int | None = None,
    ) -> "Campaign":
        """Select the engine backend fault simulation runs on inside each cell."""
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown engine backend {backend!r} (expected one of {BACKENDS})"
            )
        validate_pool_size("shards", shards)
        validate_pool_size("workers", workers)
        changes: dict[str, object] = {"sim_backend": backend}
        if shards is not None:
            changes["sim_shards"] = shards
        if workers is not None:
            changes["sim_workers"] = workers
        self.options = replace(self.options, **changes)  # type: ignore[arg-type]
        return self

    def with_cache(self, cache: "ResultCache | str | bool | None" = True) -> "Campaign":
        """Attach the persistent engine result cache (cell-level resume).

        Every cell is keyed on (design fingerprint, scenario+options
        fingerprint, engine version); re-running a campaign after an
        interruption serves all previously completed cells from disk —
        without rebuilding their designs, because spec-backed fingerprints
        are computed from the declarative spec alone.
        """
        self._cache = coerce_cache(cache)
        return self

    def with_pattern_store(
        self,
        store: "PatternStore | str | None",
        *,
        stream: bool = False,
    ) -> "Campaign":
        """Spill every executed cell's patterns to a disk-backed store.

        Each cell's pattern set lands in the
        :class:`~repro.patterns.store.PatternStore` grouped by
        ``(design, scenario)`` — written once per group, so an interrupted
        campaign resumed over the same store does not duplicate.  With
        ``stream=True`` the runs' in-memory sets are replaced by the
        store's lazy views (memory-bounded at SoC scale; prefer the sqlite
        backend for process fan-out).  Cache-served cells skip their jobs
        entirely and therefore do not spill.
        """
        self._pattern_store = (
            store
            if store is None or isinstance(store, PatternStore)
            else PatternStore(store)
        )
        self._pattern_store_stream = stream
        return self

    def with_telemetry(
        self, telemetry: "Telemetry | bool | None" = True
    ) -> "Campaign":
        """Attach an observability plane to this campaign's executions.

        ``run()``/``diagnose()`` activate it around their plan execution —
        every layer below (executor waves, stage pipelines, ATPG, fault-sim
        shards, the cache) records spans and counters into it, and the
        report's ``campaign["telemetry"]`` carries the metrics snapshot.
        Accepts a :class:`~repro.obs.Telemetry`, ``True`` (fresh enabled)
        or ``False``/``None`` (detach; the default no-op leaves reports
        byte-identical to an un-instrumented campaign).
        """
        self._telemetry = coerce_telemetry(telemetry)
        return self

    @property
    def telemetry(self) -> Telemetry:
        """The campaign's telemetry (the shared no-op unless attached)."""
        return self._telemetry

    def with_lint(self, enabled: bool = True, *, waivers: "Sequence | tuple" = ()) -> "Campaign":
        """Enable the static-analysis pre-flight gate.

        Before any cell executes, every design on the grid is linted
        (:func:`repro.analyze.lint_design`, with the first scenario's
        :class:`~repro.atpg.config.TestSetup` as the constraint
        environment).  Unwaived ERROR findings abort the campaign with a
        :class:`repro.analyze.LintError` before a single pattern is
        generated.  Opt-in because the gate must materialize every design
        up front, which defeats spec-laziness and cache-only resumes.
        """
        self._lint = enabled
        self._lint_waivers = tuple(waivers)
        return self

    def _preflight_lint(self) -> None:
        """Lint every design; raise ``LintError`` on unwaived errors."""
        if not self._lint:
            return
        from repro.analyze import lint_design

        self.lint_reports = {}
        failed: list[str] = []
        for entry in self._designs:
            prepared = entry.materialize()
            setup = self._scenarios[0].build_setup(prepared, self.options)
            report = lint_design(prepared, setup, waivers=self._lint_waivers)
            self.lint_reports[entry.name] = report
            if not report.ok:
                failed.append(
                    f"{entry.name}: " + "; ".join(str(f) for f in report.errors[:3])
                )
        if failed:
            from repro.analyze import LintError

            raise LintError(
                "campaign pre-flight lint failed — " + " | ".join(failed)
            )

    # --------------------------------------------------------------- queries
    @property
    def design_names(self) -> list[str]:
        return [entry.name for entry in self._designs]

    @property
    def scenario_names(self) -> list[str]:
        return [spec.name for spec in self._scenarios]

    def grid(self) -> list[tuple[str, str]]:
        """The (design, scenario) cell grid, design-major."""
        return [
            (entry.name, spec.name)
            for entry in self._designs
            for spec in self._scenarios
        ]

    def result_of(self, design: str, scenario: str) -> AtpgResult:
        """The raw AtpgResult of one executed fault-model cell."""
        for (design_name, scenario_name), run in self.artifacts.items():
            if design_name == design and scenario in (
                scenario_name, run.spec.legacy_key
            ):
                if run.result is None:
                    raise ValueError(
                        f"cell ({design!r}, {scenario!r}) produced no AtpgResult "
                        f"(fault model {run.spec.fault_model!r})"
                    )
                return run.result
        raise KeyError(
            f"cell ({design!r}, {scenario!r}) has not been executed; "
            f"executed: {sorted(self.artifacts) or '<none>'}"
        )

    # ------------------------------------------------------- plan compilation
    def plan(self) -> Plan:
        """Compile the design×scenario grid into a declarative runtime plan.

        One ``"scenario"`` job per cell, no inter-cell dependencies; each
        job's cache key derives from the design *spec* fingerprint (when the
        entry is spec-backed), so an :class:`~repro.runtime.Executor` with
        this campaign's cache skips completed cells of an interrupted run
        without building their designs.
        """
        jobs = tuple(
            Job(
                id=f"cell:{entry.name}:{spec.name}",
                kind="scenario",
                params={"design": entry.name, "scenario": spec.name},
                cache_key=self._cell_key(entry, spec),
                label=f"{entry.name}::{spec.name}",
            )
            for entry in self._designs
            for spec in self._scenarios
        )
        return Plan(
            name="campaign",
            jobs=jobs,
            metadata={"designs": self.design_names, "scenarios": self.scenario_names},
            resources=self._plan_resources(),
        )

    def _plan_resources(self) -> dict[str, object]:
        """Runtime bindings for this campaign's plans.

        Built designs ride along as-is; spec-backed entries stay declarative
        so process workers (and cache-resumed runs) only build the designs
        their jobs actually touch.
        """
        resources: dict[str, object] = {
            "options": self.options,
            "stages": tuple(DEFAULT_STAGES),
            "designs": {
                entry.name: entry.prepared if entry.prepared is not None else entry.spec
                for entry in self._designs
            },
            "scenarios": {spec.name: spec for spec in self._scenarios},
        }
        if self._pattern_store is not None:
            resources["pattern_store"] = str(self._pattern_store.path)
            resources["pattern_store_stream"] = self._pattern_store_stream
        return resources

    def _resolve_executor(
        self,
        backend: str | None,
        max_workers: int | None,
        executor: "Executor | None",
        *,
        deprecate_backend: bool,
    ) -> Executor:
        """One executor-or-knobs resolution for ``run`` and ``diagnose``."""
        if executor is not None:
            if backend is not None or max_workers is not None:
                raise ValueError(
                    "pass either executor= or the backend/max_workers knobs"
                )
            return executor
        if backend is None:
            backend = "serial"
        elif backend not in CAMPAIGN_BACKENDS:
            # Validate before deprecating: a bogus backend must fail with
            # the documented ValueError, never a DeprecationWarning.
            raise ValueError(
                f"unknown campaign backend {backend!r} "
                f"(expected one of {CAMPAIGN_BACKENDS})"
            )
        elif deprecate_backend:
            warnings.warn(
                "Campaign.run(backend=...) is deprecated; pass "
                "executor=Executor(backend=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        return Executor(backend=backend, max_workers=max_workers)

    def _harvest_builds(self, plan: Plan) -> None:
        """Keep designs built in-parent for later runs/diagnoses."""
        built = (plan.resources or {}).get("_materialized", {})
        for entry in self._designs:
            if entry.prepared is None and entry.name in built:
                entry.prepared = built[entry.name]

    # ----------------------------------------------------------------- running
    def run(
        self,
        backend: str | None = None,
        max_workers: int | None = None,
        on_cell: "Callable[[CampaignCell], None] | None" = None,
        *,
        executor: "Executor | None" = None,
        on_event: "Callable[[Event], None] | None" = None,
    ) -> CampaignReport:
        """Execute the grid and return the streaming campaign report.

        The grid compiles to a :class:`~repro.runtime.Plan` (see
        :meth:`plan`) and runs on a :class:`~repro.runtime.Executor`;
        results are deterministic and identical across backends.

        Args:
            backend: Deprecated — pass ``executor=Executor(backend=...)``.
                Kept as a shim that compiles to the same plan and emits a
                :class:`DeprecationWarning`.
            max_workers: Worker-pool size for the shim knobs.
            on_cell: Callback observing each :class:`CampaignCell` as it
                lands in the report: cache hits first (grid order), then
                executed cells in completion order.
            executor: A configured :class:`~repro.runtime.Executor`
                (mutually exclusive with the knobs above).
            on_event: Raw :class:`~repro.runtime.Event` callback (job and
                plan-progress granularity; ``on_cell`` is derived from it).
        """
        executor = self._resolve_executor(
            backend, max_workers, executor, deprecate_backend=True
        )
        self._preflight_lint()
        plan = self.plan()
        cached = executor.effective_cache(self._cache) is not None
        report, handle, finalize = self._report_builder(
            plan, metadata=self._metadata(executor), cached=cached,
            on_cell=on_cell, on_event=on_event,
        )
        with self._telemetry.activate():
            result = executor.execute(plan, cache=self._cache, on_event=handle)
        self._harvest_builds(plan)
        if result.fallbacks:
            report.campaign["backend_fallbacks"] = list(result.fallbacks)
        if self._telemetry:
            report.campaign["telemetry"] = self._telemetry.snapshot()
        return finalize()

    # ------------------------------------------------------------- submission
    def submit(
        self,
        client,
        *,
        tenant: str = "default",
        name: "str | None" = None,
        metadata: "Mapping[str, object] | None" = None,
    ) -> "CampaignHandle":
        """Submit the grid to a running serve server; returns a handle.

        The fire-and-forget counterpart of :meth:`run`: the grid compiles to
        the same plan, ships to the server (declarative plan JSON plus the
        pickled resource bindings) and executes there — on the server's
        remote workers when any are registered, locally otherwise, always
        against the tenant's persistent result cache.  The returned
        :class:`CampaignHandle` can stream progress, cancel, and assemble
        the final :class:`CampaignReport` through the exact same merge path
        ``run()`` uses, so the report is identical to a local run's.

        Args:
            client: A :class:`~repro.serve.ServeClient` connected to the
                server (duck-typed — anything with ``submit``/``wait``/
                ``status``/``cancel``).
            tenant: Result-store tenant the execution is billed to.
            name: Queue display name (defaults to the plan's).
            metadata: Extra submission metadata (e.g. ``{"backend":
                "threads"}`` to pin the server's local backend).
        """
        self._preflight_lint()
        plan = self.plan()
        job_id = client.submit(
            plan, tenant=tenant, name=name or "campaign", metadata=metadata
        )
        return CampaignHandle(campaign=self, client=client, job_id=job_id, plan=plan)

    # --------------------------------------------------------------- diagnosis
    def diagnosis_plan(
        self, defects: Iterable[object], **spec_overrides: object
    ) -> Plan:
        """Compile a design×scenario×defect sweep into one runtime plan.

        Per (design, scenario) row one ``if_needed`` pattern-provider job
        (sharing its cache key with the ordinary :meth:`plan` cells, so
        pattern sets flow between scenario campaigns and diagnosis sweeps);
        per defect one ``"diagnosis"`` job depending on its row's provider.
        A fully cache-resumed sweep therefore prunes every provider — no
        design build, no ATPG.
        """
        from repro.diagnose import DiagnosisSpec
        from repro.engine.cache import diagnosis_cell_key

        defect_list = list(defects)
        if not defect_list:
            raise ValueError("a diagnosis campaign needs at least one defect")
        jobs: list[Job] = []
        for entry in self._designs:
            for scenario in self._scenarios:
                provider = Job(
                    id=f"patterns:{entry.name}:{scenario.name}",
                    kind="scenario",
                    params={"design": entry.name, "scenario": scenario.name},
                    cache_key=self._cell_key(entry, scenario),
                    label=f"{entry.name}::{scenario.name}",
                    if_needed=True,
                )
                jobs.append(provider)
                for index, defect in enumerate(defect_list):
                    diagnosis_spec = DiagnosisSpec(
                        scenario=scenario.name, defect=defect, **spec_overrides  # type: ignore[arg-type]
                    )
                    # Cells run the default stage pipeline; fold it in
                    # exactly like TestSession.diagnose does.  Keys derive
                    # from the design *fingerprint*, so a resumed sweep
                    # probes without constructing any design.
                    key = diagnosis_cell_key(
                        entry.fingerprint, scenario, diagnosis_spec,
                        self.options, extra=tuple(DEFAULT_STAGES),
                    )
                    jobs.append(
                        Job(
                            id=f"diagnose:{entry.name}:{scenario.name}:{index}",
                            kind="diagnosis",
                            params={
                                "design": entry.name,
                                "scenario": scenario.name,
                                "spec": diagnosis_spec.to_dict(),
                                "patterns": provider.id,
                            },
                            deps=(provider.id,),
                            cache_key=key,
                            label=f"diagnose::{entry.name}::{scenario.name}::"
                                  f"{defect.describe()}",
                        )
                    )
        return Plan(
            name="campaign-diagnosis",
            jobs=tuple(jobs),
            metadata={
                "designs": self.design_names,
                "scenarios": self.scenario_names,
                "defects": [defect.describe() for defect in defect_list],
            },
            resources=self._plan_resources(),
        )

    def diagnose(
        self,
        defects: Iterable[object],
        backend: str | None = None,
        max_workers: int | None = None,
        on_cell: "Callable[[object], None] | None" = None,
        *,
        executor: "Executor | None" = None,
        on_event: "Callable[[Event], None] | None" = None,
        **spec_overrides: object,
    ):
        """Sweep a design x scenario x defect diagnosis grid.

        Every cell injects one defect into one design, runs the scenario's
        pattern set against the injected device, captures the fail log and
        ranks the cone-intersection candidates — streaming one
        :class:`~repro.diagnose.DiagnosisCell` per completed cell into a
        :class:`~repro.diagnose.DiagnosisReport` (rank of the true defect,
        resolution, candidate counts).

        The sweep compiles to one plan (see :meth:`diagnosis_plan`): pattern
        sets are generated once per (design, scenario) provider job and
        shared by every defect on that row; with :meth:`with_cache` attached
        both the pattern sets and the diagnosis results resume from the
        persistent engine cache.

        Args:
            defects: The :class:`~repro.diagnose.DefectSpec` values to
                inject (the defect axis of the grid).
            backend: Cell fan-out backend — ``"serial"`` (default),
                ``"threads"`` or ``"processes"``.  Results are deterministic
                and identical across backends.
            max_workers: Worker-pool size for the pooled backends.
            on_cell: Callback observing each cell as it lands in the report.
            executor: A configured :class:`~repro.runtime.Executor`
                (mutually exclusive with backend/max_workers).
            on_event: Raw :class:`~repro.runtime.Event` callback.
            **spec_overrides: Extra :class:`~repro.diagnose.DiagnosisSpec`
                fields applied to every cell (``candidate_kinds``,
                ``max_sites``, ``rerank_iterations``, ...).
        """
        from repro.diagnose import DiagnosisCell, DiagnosisReport, DiagnosisSpec

        executor = self._resolve_executor(
            backend, max_workers, executor, deprecate_backend=False
        )
        self._preflight_lint()
        plan = self.diagnosis_plan(defects, **spec_overrides)
        defect_names = list(plan.metadata["defects"])
        report = DiagnosisReport(
            campaign={
                **self._metadata(executor),
                "defects": defect_names,
            }
        )
        entries = {entry.name: entry for entry in self._designs}
        diagnosis_jobs = {
            job.id: (
                entries[job.params["design"]],
                DiagnosisSpec.from_dict(job.params["spec"]),
            )
            for job in plan.jobs
            if job.kind == "diagnosis"
        }
        landed: dict[str, object] = {}

        def handle(event: Event) -> None:
            target = diagnosis_jobs.get(event.job) if event.job is not None else None
            if target is not None and event.kind in ("job_finished", "job_skipped"):
                entry, diagnosis_spec = target
                result = event.value
                if event.kind == "job_skipped":
                    result.cache_hit = True
                cell = DiagnosisCell.from_result(entry.name, diagnosis_spec, result)
                landed[event.job] = report.add_cell(cell)
                if on_cell is not None:
                    on_cell(cell)
            if on_event is not None:
                on_event(event)

        with self._telemetry.activate():
            outcome = executor.execute(plan, cache=self._cache, on_event=handle)
        self._harvest_builds(plan)
        missing = [job_id for job_id in diagnosis_jobs if job_id not in landed]
        if missing:
            raise PlanCancelled(
                f"diagnosis sweep cancelled before {len(missing)} cell(s) "
                f"completed (first: {missing[0]!r})"
            )
        # Re-order the cells into grid order for the final report (the
        # streaming callback saw completion order) — pooled backends land
        # cells as they finish, and the report must be deterministic and
        # identical across backends.
        report.cells = [landed[job_id] for job_id in diagnosis_jobs]
        if outcome.fallbacks:
            report.campaign["backend_fallbacks"] = list(outcome.fallbacks)
        if self._telemetry:
            report.campaign["telemetry"] = self._telemetry.snapshot()
        self.diagnosis_report = report
        return report

    # ----------------------------------------------------------------- volume
    def volume_plan(
        self,
        store,
        spec=None,
        *,
        scenario: "ScenarioSpec | str | None" = None,
        **spec_overrides: object,
    ) -> Plan:
        """Compile a fail-log store's share of this campaign into one plan.

        Records whose design is not part of this campaign are filtered out
        (one store can hold several campaigns' logs); every surviving log
        becomes one content-addressed ``"bp-diagnosis"`` job (see
        :func:`~repro.volume.run.volume_plan`), so an interrupted run
        resumes from the cache with zero re-runs.
        """
        from repro.volume.run import VolumeSpec
        from repro.volume.run import volume_plan as compile_volume_plan

        records = list(store.records() if hasattr(store, "records") else store)
        known = {entry.name for entry in self._designs}
        records = [record for record in records if record.design in known]
        if not records:
            raise ValueError(
                f"the fail-log store holds no records for this campaign's "
                f"designs ({sorted(known)})"
            )
        if scenario is None:
            scenario_name = self._scenarios[0].name
        else:
            scenario_name = (
                scenario.name if isinstance(scenario, ScenarioSpec)
                else resolve_campaign_scenario(scenario).name
            )
        if spec is None:
            spec = VolumeSpec(scenario=scenario_name, **spec_overrides)  # type: ignore[arg-type]
        elif spec_overrides or scenario is not None:
            spec = spec.with_overrides(scenario=scenario_name, **spec_overrides)
        return compile_volume_plan(
            records,
            {
                entry.name: entry.prepared if entry.prepared is not None else entry.spec
                for entry in self._designs
            },
            {s.name: s for s in self._scenarios},
            spec,
            options=self.options,
            stages=tuple(DEFAULT_STAGES),
        )

    def diagnose_volume(
        self,
        store,
        spec=None,
        backend: str | None = None,
        max_workers: int | None = None,
        on_cell: "Callable[[object], None] | None" = None,
        *,
        scenario: "ScenarioSpec | str | None" = None,
        executor: "Executor | None" = None,
        on_event: "Callable[[Event], None] | None" = None,
        **spec_overrides: object,
    ):
        """Diagnose every stored fail log with loopy BP as one plan.

        The volume counterpart of :meth:`diagnose`: instead of a defect
        grid, the evidence axis is a persistent
        :class:`~repro.volume.FailLogStore` (or any record iterable), and
        each log's verdict is a BP-selected candidate *set* with
        calibrated confidences — streamed into a
        :class:`~repro.volume.BpDiagnosisReport`.  Pattern sets are
        generated once per (design, scenario) row and shared by every log
        on it; with :meth:`with_cache` attached both the pattern sets and
        the per-log BP results resume from the persistent engine cache.

        Args:
            store: A :class:`~repro.volume.FailLogStore` or iterable of
                :class:`~repro.volume.FailLogRecord`.
            spec: A :class:`~repro.volume.VolumeSpec`; built from
                ``scenario``/``spec_overrides`` when omitted.
            backend: Log fan-out backend — ``"serial"`` (default),
                ``"threads"`` or ``"processes"``.  Reports are
                deterministic and identical across backends.
            max_workers: Worker-pool size for the pooled backends.
            on_cell: Callback observing each landed
                :class:`~repro.volume.BpDiagnosisCell`.
            scenario: Pattern-set scenario for records without their own
                label (default: the campaign's first scenario).
            executor: A configured :class:`~repro.runtime.Executor`
                (mutually exclusive with backend/max_workers).
            on_event: Raw :class:`~repro.runtime.Event` callback.
            **spec_overrides: Extra :class:`~repro.volume.VolumeSpec`
                fields (``candidate_kinds``, ``bp``, ...).
        """
        from repro.volume.run import volume_report_builder

        executor = self._resolve_executor(
            backend, max_workers, executor, deprecate_backend=False
        )
        self._preflight_lint()
        plan = self.volume_plan(store, spec, scenario=scenario, **spec_overrides)
        metadata = {
            **self._metadata(executor),
            "logs": len(plan.metadata["logs"]),
        }
        report, handle, finalize = volume_report_builder(
            plan, metadata=metadata, on_cell=on_cell, on_event=on_event
        )
        with self._telemetry.activate():
            result = executor.execute(plan, cache=self._cache, on_event=handle)
        self._harvest_builds(plan)
        if result.fallbacks:
            report.campaign["backend_fallbacks"] = list(result.fallbacks)
        if self._telemetry:
            report.campaign["telemetry"] = self._telemetry.snapshot()
        self.volume_report = finalize()
        return self.volume_report

    def submit_volume(
        self,
        client,
        store,
        spec=None,
        *,
        scenario: "ScenarioSpec | str | None" = None,
        tenant: str = "default",
        name: "str | None" = None,
        metadata: "Mapping[str, object] | None" = None,
        **spec_overrides: object,
    ):
        """Submit a volume-diagnosis plan to a running serve server.

        The fire-and-forget counterpart of :meth:`diagnose_volume`: the
        identical plan ships to the server and executes there against the
        tenant's persistent result cache.  The returned
        :class:`~repro.volume.VolumeHandle` streams progress, cancels, and
        assembles the final :class:`~repro.volume.BpDiagnosisReport`
        through the exact same merge path a local run uses.
        """
        from repro.volume.run import submit_volume as submit_volume_plan

        self._preflight_lint()
        plan = self.volume_plan(store, spec, scenario=scenario, **spec_overrides)
        return submit_volume_plan(
            client, plan, tenant=tenant, name=name or "volume", metadata=metadata
        )

    # -------------------------------------------------------------- internals
    def _metadata(self, executor: Executor) -> dict[str, object]:
        # ``cached`` reflects the *effective* cache — the campaign's own
        # (which wins) or one attached to the executor.
        return {
            "designs": self.design_names,
            "scenarios": self.scenario_names,
            "design_sizes": self._design_sizes(),
            "backend": executor.backend,
            "cached": executor.effective_cache(self._cache) is not None,
        }

    def _design_sizes(self) -> dict[str, dict[str, object]]:
        """Build-free size estimates per design (scaling-report metadata).

        Spec-backed entries use :meth:`DesignSpec.size_estimate`; entries
        already materialized report their exact netlist stats instead.
        """
        sizes: dict[str, dict[str, object]] = {}
        for entry in self._designs:
            if entry.prepared is not None:
                stats = entry.prepared.netlist.stats()
                sizes[entry.name] = {
                    "family": "prepared",
                    "gates": stats.num_gates,
                    "flops": stats.num_flops,
                    "exact": True,
                }
            elif entry.spec is not None:
                sizes[entry.name] = entry.spec.size_estimate()
        return sizes

    def _cell_key(self, entry: _DesignEntry, spec: ScenarioSpec) -> str:
        # The default stage pipeline is folded in exactly like TestSession
        # does.  Spec-backed designs key on the spec fingerprint (computable
        # without a build); only spec-less prepared designs key on the model
        # fingerprint and can therefore share entries with default-pipeline
        # session runs.
        return campaign_cell_key(
            entry.fingerprint, spec, self.options, extra=tuple(DEFAULT_STAGES)
        )

    def _merge(
        self,
        entry: _DesignEntry,
        spec: ScenarioSpec,
        run: ScenarioRun,
        key: str | None,
        report: CampaignReport,
        *,
        cache_hit: bool,
        on_cell: "Callable[[CampaignCell], None] | None",
    ) -> CampaignCell:
        self.artifacts[(entry.name, spec.name)] = run
        cell = CampaignCell(
            design=entry.name,
            scenario=spec.name,
            outcome=outcome_of(run),
            cell_key=key,
            cache_hit=cache_hit,
            wall_seconds=sum(run.stage_seconds.values()),
        )
        report.add_cell(cell)
        if on_cell is not None:
            on_cell(cell)
        return cell

    def _report_builder(
        self,
        plan: Plan,
        *,
        metadata: dict[str, object],
        cached: bool,
        on_cell: "Callable[[CampaignCell], None] | None" = None,
        on_event: "Callable[[Event], None] | None" = None,
    ) -> "tuple[CampaignReport, Callable[[Event], None], Callable[[], CampaignReport]]":
        """Event-driven report assembly shared by :meth:`run` and serve handles.

        Returns ``(report, handle, finalize)``: feed every
        :class:`~repro.runtime.Event` of the plan's execution — live from an
        executor or replayed from a serve journal — to ``handle``, then call
        ``finalize`` for the grid-ordered report.  One code path means a
        remotely executed campaign's report is assembled exactly like a local
        one.  Events seen twice (a requeued serve job replays its journal
        from the start) simply re-merge the same cell; ``finalize`` keeps the
        last merge per cell.
        """
        report = CampaignReport(campaign=metadata)
        # The job -> cell mapping derives from the plan itself (params carry
        # the design/scenario names), so the id format lives only in plan().
        entries = {entry.name: entry for entry in self._designs}
        specs = {spec.name: spec for spec in self._scenarios}
        cells = {
            job.id: (entries[job.params["design"]], specs[job.params["scenario"]])
            for job in plan.jobs
        }
        keys = {job.id: job.cache_key for job in plan.jobs}
        merged: dict[tuple[str, str], CampaignCell] = {}

        def handle(event: Event) -> None:
            target = cells.get(event.job) if event.job is not None else None
            if target is not None and event.kind in ("job_finished", "job_skipped"):
                entry, spec = target
                run = event.value
                if run is None or not hasattr(run, "stage_seconds"):
                    # The event wire degrades unpicklable values to a repr
                    # string and corrupt pickles to None; a journal-replayed
                    # campaign must say so rather than die on an attribute.
                    raise TypeError(
                        f"campaign cell ({entry.name!r}, {spec.name!r}) "
                        f"result did not survive the event wire: expected a "
                        f"scenario run, got {type(run).__name__} "
                        f"({str(run)[:80]!r}) — the scenario result was "
                        f"degraded to a repr string or None by the serve "
                        f"journal encoding (is it picklable?)"
                    )
                key = keys[event.job] if cached else None
                cache_hit = event.kind == "job_skipped"
                if key is not None:
                    run.cache_info = {"hit": cache_hit, "key": key}
                cell = self._merge(entry, spec, run, key, report,
                                   cache_hit=cache_hit, on_cell=on_cell)
                merged[(entry.name, spec.name)] = cell
            if on_event is not None:
                on_event(event)

        def finalize() -> CampaignReport:
            # Re-order the cells into grid order for the final report (the
            # streaming callback saw completion order).
            try:
                report.cells = [merged[cell] for cell in self.grid()]
            except KeyError as exc:
                raise PlanCancelled(
                    f"campaign cancelled before cell {exc.args[0]} completed"
                ) from None
            self.report = report
            return report

        return report, handle, finalize


@dataclass
class CampaignHandle:
    """A campaign submitted to a serve server via :meth:`Campaign.submit`.

    Holds the queue job id plus the compiled plan, which is what lets
    :meth:`report` rebuild the :class:`CampaignReport` client-side from the
    server's event journal — through the same merge path :meth:`Campaign.run`
    uses, so the two reports are identical for identical inputs.
    """

    campaign: Campaign
    client: object
    job_id: int
    plan: Plan

    def status(self) -> dict[str, object]:
        """The job's queue-side status dict (state, attempts, summary...)."""
        return self.client.status(self.job_id)  # type: ignore[attr-defined]

    def cancel(self) -> str:
        """Ask the server to cancel; returns the state after the request."""
        return self.client.cancel(self.job_id)  # type: ignore[attr-defined]

    def report(
        self,
        *,
        timeout: "float | None" = None,
        on_cell: "Callable[[CampaignCell], None] | None" = None,
        on_event: "Callable[[Event], None] | None" = None,
    ) -> CampaignReport:
        """Wait for completion and assemble the campaign report.

        Streams the server's event journal (so ``on_cell``/``on_event`` see
        live progress exactly as with :meth:`Campaign.run`) and finalizes the
        grid-ordered report from the journaled results.  Raises
        :class:`~repro.runtime.PlanCancelled` if the job ended in any state
        but ``done``.
        """
        campaign = self.campaign
        metadata = {
            "designs": campaign.design_names,
            "scenarios": campaign.scenario_names,
            "backend": "serve",
            "cached": True,
        }
        report, handle, finalize = campaign._report_builder(
            self.plan, metadata=metadata, cached=True,
            on_cell=on_cell, on_event=on_event,
        )
        final = self.client.wait(  # type: ignore[attr-defined]
            self.job_id, timeout=timeout, on_event=handle
        )
        if final["state"] != "done":
            detail = f": {final['error']}" if final.get("error") else ""
            raise PlanCancelled(
                f"serve job {self.job_id} ended {final['state']!r}{detail}"
            )
        return finalize()
