"""`TestSession` — the library's front door.

A session binds one device under test (a synthetic SOC or an externally
prepared design) to any number of registered scenarios and executes each
through a pluggable stage pipeline::

    from repro.api import TestSession, scenarios

    report = (
        TestSession.for_soc(size=2)
        .with_chains(8)
        .with_options(backtrack_limit=30)
        .add_scenarios(*scenarios.table1())
        .add_scenario("stuck-at-edt")
        .run(backend="threads")
    )
    print(report.table())

The default pipeline is ``setup -> atpg -> compaction -> compression ->
export``; stages consult the scenario spec and skip themselves when not
requested, and custom stages can be spliced in with :meth:`TestSession.with_stage`.
Sessions bind to their device through the design registry too:
``TestSession.for_design("wide-edt")`` builds a registered
:class:`~repro.api.design.DesignSpec` through the staged design pipeline
(``for_soc`` remains as the ad-hoc shim over the same path).
Design preparation and CPF instrumentation are computed once per session and
shared by every scenario.  Execution runs on the unified
:mod:`repro.runtime` plane: :meth:`TestSession.plan` compiles the queued
scenarios into a declarative :class:`~repro.runtime.Plan` and ``run()`` is a
thin ``Executor(...).execute(plan)`` — pass ``run(backend="processes")`` (or
your own :class:`~repro.runtime.Executor` via ``run(executor=...)``) to fan
scenarios out over worker interpreters; because every scenario owns its
generator, RNG and fault list, every fan-out produces the same deterministic
results as serial.  ``with_backend()`` selects the :mod:`repro.engine`
backend the fault simulation inside each scenario runs on, and
``with_cache()`` attaches the persistent content-addressed result cache so
unchanged scenarios are served from disk (the executor skips their jobs
entirely).
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from repro.api.design import prepare_from_spec, resolve_design
from repro.api.report import RunReport, ScenarioOutcome
from repro.api.scenario import ScenarioSpec, resolve_scenario
from repro.atpg.compaction import compact_pattern_set
from repro.atpg.config import AtpgOptions, TestSetup
from repro.atpg.generator import AtpgResult
from repro.atpg.path_delay import PathDelayAtpg, select_critical_paths
from repro.atpg.podem import PodemStatus
from repro.atpg.stuck_at import StuckAtAtpg
from repro.atpg.transition import TransitionAtpg
from repro.circuits.soc import SocDesign
from repro.core.flow import PreparedDesign, instrument_soc, prepare_design
from repro.dft.edt import EdtArchitecture
from repro.engine.cache import ResultCache, coerce_cache, scenario_key
from repro.engine.scheduler import BACKENDS, validate_pool_size
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    active_tracer,
    coerce_telemetry,
)
from repro.patterns.ate import export_stil
from repro.patterns.pattern import PatternSet
from repro.patterns.store import PatternStore, StoredPatternView
from repro.runtime import EXECUTOR_BACKENDS, Executor, Job, Plan, register_job_kind


@dataclass
class ScenarioRun:
    """Mutable context one scenario's stage pipeline operates on.

    ``cache_info`` is deliberately separate from ``extras``: extras feed the
    scenario outcome (and its ``same_results`` comparison), and a cached
    rerun must compare equal to the run that produced it.
    """

    spec: ScenarioSpec
    setup: TestSetup | None = None
    result: AtpgResult | None = None
    patterns: "PatternSet | StoredPatternView | None" = None
    stil: str | None = None
    extras: dict[str, object] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    cache_info: dict[str, object] | None = None


#: A pipeline stage: reads/extends the run context; may no-op for scenarios
#: that did not request it.
Stage = Callable[["TestSession", ScenarioRun], None]


# --------------------------------------------------------------------------
# Default stages
# --------------------------------------------------------------------------
def stage_setup(session: "TestSession", run: ScenarioRun) -> None:
    """Materialize the scenario's constraint environment for this session."""
    run.setup = run.spec.build_setup(session.prepared, session.options)


def stage_atpg(session: "TestSession", run: ScenarioRun) -> None:
    """Generate (and fault-simulate) patterns for the scenario's fault model."""
    prepared = session.prepared
    spec = run.spec
    assert run.setup is not None, "setup stage must run before atpg"
    if spec.fault_model == "stuck-at":
        run.result = StuckAtAtpg(prepared.model, prepared.domain_map, run.setup).run()
        run.patterns = run.result.patterns
    elif spec.fault_model == "transition":
        run.result = TransitionAtpg(prepared.model, prepared.domain_map, run.setup).run()
        run.patterns = run.result.patterns
    elif spec.fault_model == "mixed":
        _run_mixed(prepared, run)
    elif spec.fault_model == "path-delay":
        _run_path_delay(prepared, run)
    else:  # pragma: no cover - ScenarioSpec.__post_init__ rejects this earlier
        raise ValueError(f"unknown fault model {spec.fault_model!r}")


def _run_mixed(prepared: PreparedDesign, run: ScenarioRun) -> None:
    """Stuck-at and transition ATPG back to back, same constraint environment."""
    stuck = StuckAtAtpg(prepared.model, prepared.domain_map, run.setup).run()
    transition = TransitionAtpg(prepared.model, prepared.domain_map, run.setup).run()
    merged = PatternSet(stuck.patterns.patterns())
    merged.extend(transition.patterns.patterns())
    run.result = transition
    run.patterns = merged
    run.extras["stuck_at"] = stuck.summary()
    run.extras["transition"] = transition.summary()
    detected = stuck.coverage.detected + transition.coverage.detected
    total = stuck.coverage.total_faults + transition.coverage.total_faults
    testable = total - stuck.coverage.untestable - transition.coverage.untestable
    resolved = detected + sum(
        r.coverage.untestable + r.coverage.atpg_untestable for r in (stuck, transition)
    )
    run.extras["combined"] = {
        "test_coverage_percent": round(100.0 * detected / testable, 4) if testable else 100.0,
        "fault_coverage_percent": round(100.0 * detected / total, 4) if total else 100.0,
        "atpg_effectiveness_percent": round(100.0 * resolved / total, 4) if total else 100.0,
        "pattern_count": len(merged),
    }


def _run_path_delay(prepared: PreparedDesign, run: ScenarioRun) -> None:
    """Target the structurally longest paths with non-robust broadside tests."""
    faults = select_critical_paths(prepared.model, count=run.spec.path_count)
    atpg = PathDelayAtpg(prepared.model, prepared.domain_map, run.setup)
    tests = atpg.generate_all(faults)
    patterns = PatternSet(t.pattern for t in tests if t.pattern is not None)
    found = sum(1 for t in tests if t.status is PodemStatus.TEST_FOUND)
    aborted = sum(1 for t in tests if t.status is PodemStatus.ABORTED)
    untestable = sum(1 for t in tests if t.status is PodemStatus.UNTESTABLE)
    run.patterns = patterns
    run.extras["path_delay"] = {
        "paths_targeted": len(faults),
        "tests_found": found,
        "aborted": aborted,
        "untestable": untestable,
    }


def stage_compaction(session: "TestSession", run: ScenarioRun) -> None:
    """Static compaction of the committed pattern set (when requested)."""
    if not run.spec.static_compaction or run.patterns is None:
        return
    before = len(run.patterns)
    run.patterns, stats = compact_pattern_set(run.patterns)
    run.extras["static_compaction"] = {
        "patterns_before": before,
        "patterns_after": len(run.patterns),
        "successful_merges": stats.successful_merges,
    }


def stage_compression(session: "TestSession", run: ScenarioRun) -> None:
    """EDT compression accounting over the final pattern set.

    Runs when the scenario pins a channel count, or — new with the design
    registry — when the design itself declares an EDT contract
    (``DesignSpec.edt``); a scenario's explicit ``edt_channels`` always wins
    over the design default.
    """
    if run.patterns is None:
        return
    if run.spec.edt_channels is not None:
        edt = EdtArchitecture(
            session.prepared.scan, num_input_channels=run.spec.edt_channels
        )
    elif session.prepared.edt is not None:
        edt = session.prepared.edt
    else:
        return
    stats = edt.statistics(run.patterns)
    run.extras["edt"] = {
        "channels": edt.decompressor.num_channels,
        "compression_ratio": round(stats.compression_ratio, 4),
        "encoded_patterns": stats.encoded_patterns,
        "encoding_conflicts": stats.encoding_conflicts,
        "vector_memory_bits": stats.vector_memory_bits,
    }


def stage_export(session: "TestSession", run: ScenarioRun) -> None:
    """Serialize the final pattern set to the STIL-flavoured format."""
    if not run.spec.export_patterns or run.patterns is None:
        return
    prepared = session.prepared
    run.stil = export_stil(
        run.patterns, prepared.scan, prepared.occ, design_name=prepared.netlist.name
    )
    run.extras["export"] = {
        "format": "stil",
        "lines": len(run.stil.splitlines()),
        "characters": len(run.stil),
    }


def stage_store(session: "TestSession", run: ScenarioRun) -> None:
    """Spill the scenario's patterns into the session's pattern store.

    Each ``(design, scenario)`` group is written once — a rerun (or a
    cache-served rerun) finds the group already present and leaves the
    store untouched; delete the store file to refresh it.  In streaming
    mode the in-memory pattern set is then replaced with the store-backed
    lazy view, so downstream consumers hold one batch at a time.
    """
    store = session._pattern_store
    if store is None or run.patterns is None:
        return
    # Campaign jobs label groups with the campaign's design name (distinct
    # even when two entries build the same netlist family); plain sessions
    # fall back to the netlist name.
    design_name = session._pattern_store_label or session.prepared.netlist.name
    present = store.count(design=design_name, scenario=run.spec.name)
    if present:
        count = present
    else:
        count = store.extend(
            iter(run.patterns), design=design_name, scenario=run.spec.name
        )
    run.extras["store"] = {
        "path": str(store.path),
        "kind": store.kind,
        "patterns": count,
    }
    if session._pattern_store_stream:
        run.patterns = store.view(design=design_name, scenario=run.spec.name)


DEFAULT_STAGES: tuple[tuple[str, Stage], ...] = (
    ("setup", stage_setup),
    ("atpg", stage_atpg),
    ("compaction", stage_compaction),
    ("compression", stage_compression),
    ("export", stage_export),
)


#: Scenario fan-out backends ``TestSession.run`` accepts — the executor
#: backend set, aliased so the front door and the executor can never drift.
RUN_BACKENDS = EXECUTOR_BACKENDS


# --------------------------------------------------------------------------
# Runtime job handlers (module level: process-pool workers re-import this
# module, which re-runs the ``register_job_kind`` calls)
# --------------------------------------------------------------------------
#: Serializes design materialization so concurrent thread-wave jobs never
#: build the same design twice.
_MATERIALIZE_LOCK = threading.Lock()


def materialize_design(resources: dict, name: str) -> PreparedDesign:
    """The built design a plan resource entry names (memoised in-place).

    ``resources["designs"]`` maps design names to either an already built
    :class:`~repro.core.flow.PreparedDesign` (the session path — shipped to
    workers once via the pool initializer) or a declarative
    :class:`~repro.api.design.DesignSpec` (the campaign path — each worker
    builds a design the first time one of its jobs touches it).
    """
    built = resources.setdefault("_materialized", {})
    prepared = built.get(name)
    if prepared is None:
        with _MATERIALIZE_LOCK:
            prepared = built.get(name)
            if prepared is None:
                design = resources["designs"][name]
                if not isinstance(design, PreparedDesign):
                    design = prepare_from_spec(design)
                prepared = built[name] = design
    return prepared


@register_job_kind("scenario")
def run_scenario_job(resources: dict, params: Mapping[str, object], deps: dict):
    """Execute one scenario's stage pipeline against one design.

    In-parent executions (serial/threads) run on the compiling session
    itself (``resources["_session"]``), so custom ``with_stage`` stages that
    read caller-session state keep working exactly as before the execution
    plane; ``_``-prefixed resources never ship to process workers, which
    rebuild a session per worker — the historical processes behaviour.
    """
    session = resources.get("_session")
    if session is None:
        prepared = materialize_design(resources, params["design"])
        session = TestSession.from_prepared(prepared, resources.get("options"))
        stages = resources.get("stages")
        if stages is not None:
            # Unconditional when bound — an intentionally emptied pipeline
            # must stay empty in workers, not fall back to the defaults.
            session._stages = list(stages)
        store_path = resources.get("pattern_store")
        if store_path is not None:
            session._pattern_store = PatternStore(store_path)
            session._pattern_store_stream = bool(
                resources.get("pattern_store_stream")
            )
            session._pattern_store_label = str(params["design"])
            if all(name != "store" for name, _ in session._stages):
                session._stages.append(("store", stage_store))
    spec = resources["scenarios"][params["scenario"]]
    return session._execute_stages(spec)


@register_job_kind("diagnosis")
def run_diagnosis_job(resources: dict, params: Mapping[str, object], deps: dict):
    """Diagnose one defect against a dependency-supplied pattern set.

    ``params["patterns"]`` names the scenario job whose
    :class:`ScenarioRun` (with its committed pattern set) arrives through
    ``deps`` — generated once per (design, scenario) no matter how many
    defects the plan diagnoses against it.
    """
    from repro.diagnose import DiagnosisSpec, run_diagnosis

    prepared = materialize_design(resources, params["design"])
    options = resources.get("options") or AtpgOptions()
    scenario_spec = resources["scenarios"][params["scenario"]]
    spec = DiagnosisSpec.from_dict(params["spec"])
    run = deps[params["patterns"]]
    if run is None or run.patterns is None:
        raise ValueError(
            f"scenario {scenario_spec.name!r} produced no patterns to diagnose"
        )
    fail_log = None
    fail_log_key = params.get("fail_log")
    if fail_log_key is not None:
        fail_log = resources["fail_logs"][fail_log_key]
    setup = materialize_setup(
        resources, prepared, scenario_spec, params["design"], options
    )
    return run_diagnosis(
        prepared,
        setup,
        run.patterns,
        spec,
        fail_log=fail_log,
        options=options,
        scheduler=_diagnosis_job_scheduler(resources, prepared, spec, options),
    )


def materialize_setup(
    resources: dict, prepared: PreparedDesign, scenario_spec, design_name, options
):
    """One constraint environment per (design, scenario), memoised in-place.

    Shared by every defect diagnosed against that row — and by the volume
    plane's per-log BP jobs (lock: concurrent thread-wave jobs must not
    each build one).
    """
    setups = resources.setdefault("_setups", {})
    setup_key = (design_name, scenario_spec.name)
    setup = setups.get(setup_key)
    if setup is None:
        with _MATERIALIZE_LOCK:
            setup = setups.get(setup_key)
            if setup is None:
                setup = setups[setup_key] = scenario_spec.build_setup(
                    prepared, options
                )
    return setup


def _diagnosis_job_scheduler(resources, prepared, spec, options):
    """The candidate-scoring scheduler a diagnosis job should use.

    A session-provided scheduler wins — ``resources["_scheduler_factory"]``
    is the session's lazy hook onto its memoised pool (lazy so a fully
    cached diagnosis never compiles kernels it will not use), and a direct
    ``resources["scheduler"]`` object is honoured too.  Otherwise schedulers
    are memoised into the resources dict per (design, backend, sharding) so
    one worker pool serves a whole plan's defect stream; lifecycle is the
    scheduler's own GC finalizer.
    """
    from repro.engine.scheduler import FaultSimScheduler

    factory = resources.get("_scheduler_factory")
    if factory is not None:
        return factory()
    provided = resources.get("scheduler")
    if provided is not None:
        return provided
    memo = resources.setdefault("_schedulers", {})
    backend = spec.backend or options.sim_backend
    key = (id(prepared.model), backend, options.sim_shards, options.sim_workers)
    scheduler = memo.get(key)
    if scheduler is None:
        # Lock: one scheduler (and one worker pool) per key even when a
        # thread wave lands many diagnosis jobs on the same design at once.
        with _MATERIALIZE_LOCK:
            scheduler = memo.get(key)
            if scheduler is None:
                scheduler = memo[key] = FaultSimScheduler(
                    prepared.model,
                    backend=backend,
                    shard_count=options.sim_shards,
                    max_workers=options.sim_workers,
                )
    return scheduler


# --------------------------------------------------------------------------
# The session
# --------------------------------------------------------------------------
class TestSession:
    """Fluent builder binding one device under test to scenario runs."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    def __init__(
        self,
        *,
        size: int = 2,
        seed: int = 2005,
        num_chains: int = 6,
        options: AtpgOptions | None = None,
        soc: SocDesign | None = None,
        prepared: PreparedDesign | None = None,
        design: "DesignSpec | str | None" = None,
    ) -> None:
        self._size = size
        self._seed = seed
        self._num_chains = num_chains
        self._soc = soc
        self._design_spec = resolve_design(design) if design is not None else None
        self._prepared = prepared
        self._external_design = prepared is not None
        self.options = options or AtpgOptions()
        self._scenarios: list[ScenarioSpec] = []
        self._stages: list[tuple[str, Stage]] = list(DEFAULT_STAGES)
        self._pattern_store: PatternStore | None = None
        self._pattern_store_stream = False
        self._pattern_store_label: str | None = None
        self._cache: ResultCache | None = None
        self._telemetry: Telemetry = NULL_TELEMETRY
        self.artifacts: dict[str, ScenarioRun] = {}
        self.report: RunReport | None = None
        # Diagnosis scoring schedulers, keyed (backend, shards, workers):
        # reused across diagnose() calls so one worker pool serves a whole
        # device stream.  Closed explicitly when the design or options
        # change (the remainder by the scheduler's GC finalizer at teardown).
        self._diagnosis_schedulers: dict = {}

    # ----------------------------------------------------------- constructors
    @classmethod
    def for_soc(
        cls,
        size: int = 2,
        *,
        seed: int = 2005,
        num_chains: int = 6,
        soc: SocDesign | None = None,
    ) -> "TestSession":
        """Start a session on the synthetic SOC (or a caller-built one)."""
        return cls(size=size, seed=seed, num_chains=num_chains, soc=soc)

    @classmethod
    def from_prepared(
        cls, prepared: PreparedDesign, options: AtpgOptions | None = None
    ) -> "TestSession":
        """Start a session on an already prepared (scan-inserted) design."""
        return cls(prepared=prepared, options=options)

    @classmethod
    def for_design(
        cls, design: "DesignSpec | str", options: AtpgOptions | None = None
    ) -> "TestSession":
        """Start a session on a registered (or ad-hoc) declarative design spec.

        The spec is built lazily through the staged design pipeline; the
        structural builders (``with_size``/``with_seed``/``with_chains``)
        override the corresponding spec fields instead of raising.
        """
        return cls(design=design, options=options)

    # -------------------------------------------------------- fluent builders
    def _invalidate_design(self) -> None:
        if self._external_design:
            raise RuntimeError(
                "this session was created from an already prepared design; "
                "its structure (size/seed/chains/SOC) cannot be changed"
            )
        self._prepared = None
        # Executed artifacts describe the previous device, not this one.
        self.artifacts.clear()
        self._close_diagnosis_schedulers()

    def _override_design(self, **changes: object) -> bool:
        """Apply a structural change to a design-spec session; False == not one."""
        if self._design_spec is None:
            return False
        self._design_spec = self._design_spec.with_overrides(**changes)
        self._prepared = None
        self.artifacts.clear()
        self._close_diagnosis_schedulers()
        return True

    def _close_diagnosis_schedulers(self) -> None:
        """Release memoised diagnosis schedulers (and their worker pools)."""
        for scheduler in self._diagnosis_schedulers.values():
            scheduler.close()
        self._diagnosis_schedulers.clear()

    def with_size(self, size: int) -> "TestSession":
        if self._override_design(size=size):
            return self
        self._invalidate_design()
        self._size = size
        return self

    def with_seed(self, seed: int) -> "TestSession":
        if self._override_design(seed=seed):
            return self
        self._invalidate_design()
        self._seed = seed
        return self

    def with_chains(self, num_chains: int) -> "TestSession":
        if self._override_design(num_chains=num_chains):
            return self
        self._invalidate_design()
        self._num_chains = num_chains
        return self

    def with_soc(self, soc: SocDesign) -> "TestSession":
        self._invalidate_design()
        self._design_spec = None
        self._soc = soc
        return self

    def with_options(
        self, options: AtpgOptions | None = None, **knobs: object
    ) -> "TestSession":
        """Set the session's ATPG options, or tweak individual knobs.

        Executed scenario artifacts are dropped: they were produced under
        the previous options and no longer describe this session (reusing
        them would, e.g., let ``diagnose()`` pair stale patterns with a
        cache key derived from the new options).
        """
        if options is not None and knobs:
            raise ValueError("pass either an AtpgOptions object or keyword knobs")
        self.options = options if options is not None else replace(self.options, **knobs)
        self.artifacts.clear()
        self._close_diagnosis_schedulers()
        return self

    def with_backend(
        self,
        backend: str,
        *,
        shards: int | None = None,
        workers: int | None = None,
    ) -> "TestSession":
        """Select the engine backend fault simulation runs on.

        Args:
            backend: One of :data:`repro.engine.scheduler.BACKENDS`
                (``serial`` keeps the interpreted reference path).
            shards: Fault shards per batch for the pooled backends
                (omitted == keep the options' current value).
            workers: Worker-pool size for the pooled backends
                (omitted == keep the options' current value).
        """
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown engine backend {backend!r} (expected one of {BACKENDS})"
            )
        validate_pool_size("shards", shards)
        validate_pool_size("workers", workers)
        changes: dict[str, object] = {"sim_backend": backend}
        if shards is not None:
            changes["sim_shards"] = shards
        if workers is not None:
            changes["sim_workers"] = workers
        self.options = replace(self.options, **changes)  # type: ignore[arg-type]
        self.artifacts.clear()
        self._close_diagnosis_schedulers()
        return self

    def with_cache(self, cache: "ResultCache | str | bool | None" = True) -> "TestSession":
        """Attach the persistent engine result cache to this session.

        Scenario executions are stored content-addressed on (design
        fingerprint, scenario+options fingerprint, engine version); a later
        ``run()`` of an unchanged scenario on an unchanged design — in this
        or any future session — returns the cached
        :class:`ScenarioRun` without re-running ATPG or fault simulation.

        Args:
            cache: ``True`` (default cache root, honoring the
                ``REPRO_ENGINE_CACHE`` environment variable), a directory
                path, an existing :class:`~repro.engine.cache.ResultCache`,
                or ``False``/``None`` to detach.
        """
        self._cache = coerce_cache(cache)
        return self

    def with_pattern_store(
        self,
        store: "PatternStore | str | None",
        *,
        stream: bool = False,
    ) -> "TestSession":
        """Spill every executed scenario's patterns to a disk-backed store.

        Adds a ``store`` stage after ``export``: pattern sets are written
        to the :class:`~repro.patterns.store.PatternStore` grouped by
        ``(design, scenario)``.  With ``stream=True`` the in-memory set on
        each :class:`ScenarioRun` is replaced by the store's lazy view, so
        a 10⁵-gate campaign holds one batch of patterns in memory at a
        time instead of every scan load of every scenario.

        Args:
            store: A :class:`PatternStore`, a path (``.jsonl`` or sqlite),
                or ``None`` to detach the store and remove the stage.
            stream: Replace ``run.patterns`` with the disk-backed view
                (memory-bounded; the store file must outlive the run).
        """
        self.without_stage("store")
        if store is None:
            self._pattern_store = None
            self._pattern_store_stream = False
            return self
        self._pattern_store = (
            store if isinstance(store, PatternStore) else PatternStore(store)
        )
        self._pattern_store_stream = stream
        return self.with_stage("store", stage_store, after="export")

    def with_telemetry(
        self, telemetry: "Telemetry | bool | None" = True
    ) -> "TestSession":
        """Attach an observability plane to this session's executions.

        ``run()``/``diagnose()`` activate the telemetry around their plan
        execution, so the executor, the stage pipeline, ATPG, the fault-sim
        scheduler and the result cache all record into it; the report's
        ``session["telemetry"]`` carries the metrics snapshot.

        Args:
            telemetry: A :class:`~repro.obs.Telemetry` (share one across
                sessions to aggregate), ``True`` for a fresh enabled one,
                or ``False``/``None`` to detach (the default no-op leaves
                reports byte-identical to an un-instrumented session).
        """
        self._telemetry = coerce_telemetry(telemetry)
        return self

    @property
    def telemetry(self) -> Telemetry:
        """The session's telemetry (the shared no-op unless attached)."""
        return self._telemetry

    def with_stage(
        self, name: str, stage: Stage, *, after: str | None = None
    ) -> "TestSession":
        """Splice a custom stage into the pipeline (appended by default)."""
        entry = (name, stage)
        if after is None:
            self._stages.append(entry)
            return self
        for index, (existing, _) in enumerate(self._stages):
            if existing == after:
                self._stages.insert(index + 1, entry)
                return self
        raise KeyError(f"no pipeline stage named {after!r}")

    def without_stage(self, name: str) -> "TestSession":
        self._stages = [(n, s) for n, s in self._stages if n != name]
        return self

    def add_scenario(
        self, spec_or_name: ScenarioSpec | str, **overrides: object
    ) -> "TestSession":
        """Queue a scenario (by spec or registered name) for the next run."""
        spec = resolve_scenario(spec_or_name)
        if overrides:
            spec = spec.with_overrides(**overrides)
        if any(existing.name == spec.name for existing in self._scenarios):
            raise ValueError(f"scenario {spec.name!r} is already queued in this session")
        self._scenarios.append(spec)
        return self

    def add_scenarios(self, *specs_or_names: ScenarioSpec | str) -> "TestSession":
        for item in specs_or_names:
            self.add_scenario(item)
        return self

    # --------------------------------------------------------- design views
    @property
    def prepared(self) -> PreparedDesign:
        """The (lazily built, cached) ATPG view of the device under test."""
        if self._prepared is None:
            if self._design_spec is not None:
                self._prepared = prepare_from_spec(self._design_spec)
            else:
                self._prepared = prepare_design(
                    size=self._size,
                    seed=self._seed,
                    num_chains=self._num_chains,
                    soc=self._soc,
                )
        return self._prepared

    @property
    def design_spec(self) -> "DesignSpec | None":
        """The declarative design spec this session builds from (if any)."""
        if self._design_spec is not None:
            return self._design_spec
        return self._prepared.spec if self._prepared is not None else None

    def instrumented(self, enhanced: bool = False):
        """The Figure 1 physical top (memoised per session and CPF flavour)."""
        return instrument_soc(self.prepared, enhanced=enhanced)

    def lint(self, setup: TestSetup | None = None, *, waivers=(), categories=None):
        """Run the static rule registry over the device under test.

        When no explicit ``setup`` is passed and scenarios are queued, the
        first queued scenario's :class:`TestSetup` supplies the constraint
        environment (pin constraints, capture procedures) for the
        constraint-aware rules; with neither, those rules run unconstrained.

        Returns a :class:`repro.analyze.LintReport`.
        """
        from repro.analyze import lint_design

        if setup is None and self._scenarios:
            setup = self._scenarios[0].build_setup(self.prepared, self.options)
        return lint_design(
            self.prepared, setup, waivers=waivers, categories=categories
        )

    @property
    def queued_scenarios(self) -> list[ScenarioSpec]:
        return list(self._scenarios)

    # ------------------------------------------------------- plan compilation
    def plan(self) -> Plan:
        """Compile the queued scenarios into a declarative runtime plan.

        One ``"scenario"`` job per queued spec (no inter-job dependencies —
        every scenario owns its generator, RNG and fault list).  Every job
        carries its engine-cache key unconditionally, so any
        :class:`~repro.runtime.Executor` with a result cache — the
        session's (:meth:`with_cache`, which wins) or the executor's own —
        skips scenarios that already ran, in this session or any earlier
        one.  The plan comes bound to this session's resources;
        ``Executor(...).execute(session.plan())`` is the whole run.
        """
        if not self._scenarios:
            raise RuntimeError("no scenarios queued; call add_scenario() first")
        specs = list(self._scenarios)
        design_name = self.prepared.netlist.name
        jobs = tuple(
            Job(
                id=f"scenario:{spec.name}",
                kind="scenario",
                params={"design": design_name, "scenario": spec.name},
                cache_key=self._cache_key(spec),
                label=spec.name,
            )
            for spec in specs
        )
        return Plan(
            name=f"session:{design_name}",
            jobs=jobs,
            metadata={
                "design": design_name,
                "scenarios": [spec.name for spec in specs],
            },
            resources=self.resources(),
        )

    def resources(self) -> dict[str, object]:
        """The runtime bindings this session's plans execute against.

        ``_session`` binds in-parent scenario jobs to *this* session (so
        custom stages observe caller-session state, exactly like the
        pre-plane serial/threads paths); ``_``-prefixed entries never ship
        to process workers, which rebuild from the picklable remainder.
        """
        prepared = self.prepared
        resources: dict[str, object] = {
            "options": self.options,
            "stages": tuple(self._stages),
            "designs": {prepared.netlist.name: prepared},
            "scenarios": {spec.name: spec for spec in self._scenarios},
            "_session": self,
        }
        if self._pattern_store is not None:
            # Process workers rebuild a session per worker; ship the store
            # by path (sqlite/jsonl handles are per-call, never pickled).
            resources["pattern_store"] = str(self._pattern_store.path)
            resources["pattern_store_stream"] = self._pattern_store_stream
        return resources

    # ----------------------------------------------------------------- running
    def run_scenario(self, spec_or_name: ScenarioSpec | str) -> ScenarioOutcome:
        """Execute one scenario through the stage pipeline immediately."""
        spec = resolve_scenario(spec_or_name)
        run = self._execute(spec)
        outcome = self._outcome(run)
        self.artifacts[spec.name] = run
        return outcome

    def run(
        self,
        parallel: bool = False,
        max_workers: int | None = None,
        backend: str | None = None,
        *,
        executor: "Executor | None" = None,
        on_event: "Callable | None" = None,
    ) -> RunReport:
        """Execute every queued scenario and return the session report.

        The session compiles its scenarios into a :class:`~repro.runtime.Plan`
        and hands it to a :class:`~repro.runtime.Executor`; results are
        deterministic and identical across backends (only the wall-clock
        measurements differ).

        Args:
            parallel: Deprecated — pass ``backend="threads"`` (or an
                executor) instead.  Kept as a shim that compiles to the same
                plan and emits a :class:`DeprecationWarning`.
            max_workers: Worker-pool size for the pooled backends.
            backend: Plan fan-out backend — ``"serial"``, ``"threads"`` or
                ``"processes"`` (each scenario runs in its own interpreter
                through the engine's process backend, so the fan-out is not
                GIL-bound).
            executor: A fully configured :class:`~repro.runtime.Executor`
                to run the plan on (mutually exclusive with the sizing
                knobs above).
            on_event: Streaming :class:`~repro.runtime.Event` callback
                (``job_started`` / ``job_finished`` / ``job_skipped`` /
                ``plan_progress``).
        """
        # Validate before deprecating: bad arguments must surface as the
        # documented ValueError even under warnings-as-errors.
        if executor is not None and (parallel or backend is not None or max_workers is not None):
            raise ValueError(
                "pass either executor= or the parallel/backend/max_workers knobs"
            )
        if backend is not None and backend not in RUN_BACKENDS:
            raise ValueError(
                f"unknown run backend {backend!r} (expected one of {RUN_BACKENDS})"
            )
        if parallel:
            warnings.warn(
                "TestSession.run(parallel=True) is deprecated; use "
                "run(backend='threads') or run(executor=Executor(backend='threads'))",
                DeprecationWarning,
                stacklevel=2,
            )
        if executor is None:
            if backend is None:
                backend = "threads" if parallel else "serial"
            executor = Executor(backend=backend, max_workers=max_workers)
        specs = list(self._scenarios)
        plan = self.plan()
        cached = executor.effective_cache(self._cache) is not None
        with self._telemetry.activate():
            result = executor.execute(plan, cache=self._cache, on_event=on_event)
        outcomes = []
        for spec, job in zip(specs, plan.jobs):
            job_result = result[job.id]
            run = job_result.value
            if cached:
                run.cache_info = {"hit": job_result.skipped, "key": job_result.cache_key}
            self.artifacts[spec.name] = run
            outcomes.append(self._outcome(run))
        metadata = self._session_metadata(specs)
        if result.fallbacks:
            metadata["backend_fallbacks"] = list(result.fallbacks)
        if self._telemetry:
            # Only when enabled: a disabled session's report must stay
            # byte-identical to one that never heard of telemetry.
            metadata["telemetry"] = self._telemetry.snapshot()
        self.report = RunReport(session=metadata, outcomes=outcomes)
        return self.report

    def result_of(self, name: str) -> AtpgResult:
        """The raw :class:`AtpgResult` of an executed fault-model scenario."""
        try:
            run = self.artifacts[name]
        except KeyError:
            raise KeyError(
                f"scenario {name!r} has not been executed in this session; "
                f"executed: {sorted(self.artifacts) or '<none>'}"
            ) from None
        if run.result is None:
            raise ValueError(f"scenario {name!r} produced no AtpgResult "
                             f"(fault model {run.spec.fault_model!r})")
        return run.result

    def exported_patterns(self, name: str) -> str:
        """The STIL text an export-enabled scenario produced."""
        run = self.artifacts[name]
        if run.stil is None:
            raise ValueError(f"scenario {name!r} did not export patterns")
        return run.stil

    def table(self) -> str:
        """The last run's result table."""
        if self.report is None:
            raise RuntimeError("run() has not been called yet")
        return self.report.table()

    # --------------------------------------------------------------- diagnosis
    def diagnose(
        self,
        spec_or_defect: "object",
        *,
        scenario: "ScenarioSpec | str | None" = None,
        fail_log: "object | None" = None,
        executor: "Executor | None" = None,
        on_event: "Callable | None" = None,
        bp: "bool | object" = False,
        defects: "Sequence | None" = None,
        **overrides: object,
    ):
        """Diagnose a failing device against one scenario's pattern set.

        Closes the tester loop: the scenario's patterns are (re)generated
        through the normal stage pipeline (served from the engine cache when
        attached), the defect is injected into the compiled circuit model
        (netlist untouched), an ATE-style fail log is captured, and every
        cone-intersection candidate is fault-simulated — sharded over the
        session's engine backend — and ranked by syndrome match.

        Diagnosis runs as an ordinary two-job plan on the runtime plane
        (compiled by :meth:`diagnosis_plan`): a pattern-provider scenario
        job feeding one diagnosis job.  A persistent-cache hit on the
        diagnosis job prunes the provider entirely — a cached diagnosis
        never pays for an ATPG run it would discard.

        Args:
            spec_or_defect: A full :class:`~repro.diagnose.DiagnosisSpec`, or
                a bare :class:`~repro.diagnose.DefectSpec` (then ``scenario``
                is required).
            scenario: Scenario supplying the pattern set (name, spec, or a
                paper letter "a".."e"); overrides the spec's scenario when
                both are given.
            fail_log: An externally captured
                :class:`~repro.diagnose.FailLog` to diagnose instead of
                injecting ``spec.defect`` (external logs bypass the
                persistent cache — they are not content-addressed).
            executor: A configured :class:`~repro.runtime.Executor` to run
                the plan on (default: a serial one; the heavy lifting is
                sharded by the engine backend inside the diagnosis job).
            on_event: Streaming :class:`~repro.runtime.Event` callback.
            bp: ``True`` (or a :class:`~repro.volume.BpOptions`) routes the
                diagnosis through the loopy-BP multi-defect plane
                (:func:`~repro.volume.run_bp_diagnosis`): union-cone
                candidates, calibrated per-candidate confidences and a
                selected candidate *set*; the plan's BP job is
                content-addressed per fail log, so external logs cache too.
            defects: Several :class:`~repro.diagnose.DefectSpec` values to
                inject into one device (implies the BP plane — the
                classical ranking is single-defect by construction).
            **overrides: Field overrides applied to the diagnosis spec
                (``candidate_kinds``, ``max_sites``, ``backend``, ...).

        Returns:
            The ranked :class:`~repro.diagnose.DiagnosisResult`, or a
            :class:`~repro.volume.BpDiagnosisResult` when ``bp``/``defects``
            select the BP plane.
        """
        if isinstance(spec_or_defect, (list, tuple)):
            # A defect *list* is the multi-defect front door: inject them
            # all into one device and let BP select the explaining set.
            if defects is not None:
                raise ValueError(
                    "pass the defect list either positionally or as "
                    "defects=, not both"
                )
            if not spec_or_defect:
                raise ValueError("the defect list is empty")
            defects = list(spec_or_defect)
            spec_or_defect = defects[0]
        spec, scenario_spec = self._resolve_diagnosis_request(
            spec_or_defect, scenario, overrides
        )
        if bp or defects is not None:
            return self._diagnose_bp(
                spec, scenario_spec, fail_log, defects, bp,
                executor=executor, on_event=on_event,
            )
        plan = self._compile_diagnosis_plan(spec, scenario_spec, fail_log)
        pattern_job, diagnosis_job = plan.jobs

        # An earlier run of the scenario in this session seeds the provider
        # job — reused as-is, exactly like the pre-plan artifact short cut.
        seeds: dict[str, object] = {}
        artifact = self.artifacts.get(scenario_spec.name)
        if artifact is not None and artifact.patterns is not None:
            seeds[pattern_job.id] = artifact

        executor = executor or Executor()
        cached = executor.effective_cache(self._cache) is not None
        with self._telemetry.activate():
            result = executor.execute(
                plan, seeds=seeds, cache=self._cache, on_event=on_event
            )
        pattern_result = result.results.get(pattern_job.id)
        if (
            pattern_result is not None
            and pattern_result.reason in (None, "cache")
            and pattern_result.value is not None
        ):
            run = pattern_result.value
            if cached:
                run.cache_info = {
                    "hit": pattern_result.skipped, "key": pattern_result.cache_key
                }
            self.artifacts[scenario_spec.name] = run
        diagnosis_result = result[diagnosis_job.id]
        value = diagnosis_result.value
        if diagnosis_result.skipped:
            value.cache_hit = True
        return value

    def diagnosis_plan(
        self,
        spec_or_defect: "object",
        *,
        scenario: "ScenarioSpec | str | None" = None,
        fail_log: "object | None" = None,
        **overrides: object,
    ) -> Plan:
        """Compile one diagnosis into a two-job runtime plan.

        Job 1 (``patterns:<scenario>``) generates the scenario's pattern set
        through the session's stage pipeline; it is an ``if_needed``
        provider, pruned when the diagnosis job itself is served from the
        cache.  Job 2 (``diagnose:<scenario>``) consumes the provider's
        :class:`ScenarioRun` and runs the closed-loop (or external fail-log)
        diagnosis.  The plan is bound to this session's resources, including
        its memoised scoring scheduler.
        """
        spec, scenario_spec = self._resolve_diagnosis_request(
            spec_or_defect, scenario, overrides
        )
        return self._compile_diagnosis_plan(spec, scenario_spec, fail_log)

    def _compile_diagnosis_plan(
        self, spec, scenario_spec: ScenarioSpec, fail_log: "object | None"
    ) -> Plan:
        """Lower one already-resolved diagnosis request into its plan."""
        from repro.engine.cache import diagnosis_key

        prepared = self.prepared
        design_name = prepared.netlist.name
        pattern_job = Job(
            id=f"patterns:{scenario_spec.name}",
            kind="scenario",
            params={"design": design_name, "scenario": scenario_spec.name},
            cache_key=self._cache_key(scenario_spec),
            label=scenario_spec.name,
            if_needed=True,
        )
        key = None
        if fail_log is None and spec.defect is not None:
            # The stage pipeline shaped the diagnosed pattern set, so it is
            # part of the key — exactly like the scenario-run cache.
            key = diagnosis_key(
                prepared.model, scenario_spec, spec, self.options,
                extra=tuple(self._stages),
            )
        params: dict[str, object] = {
            "design": design_name,
            "scenario": scenario_spec.name,
            "spec": spec.to_dict(),
            "patterns": pattern_job.id,
        }
        resources = self.resources()
        resources["scenarios"][scenario_spec.name] = scenario_spec
        # Lazy: a cache-served diagnosis must not pay for kernel compilation
        # (the scheduler is only materialised when the job actually runs).
        resources["_scheduler_factory"] = lambda: self._diagnosis_scheduler(spec)
        if fail_log is not None:
            params["fail_log"] = "external"
            resources["fail_logs"] = {"external": fail_log}
        described = spec.defect.describe() if spec.defect is not None else "fail-log"
        diagnosis_job = Job(
            id=f"diagnose:{scenario_spec.name}",
            kind="diagnosis",
            params=params,
            deps=(pattern_job.id,),
            cache_key=key,
            label=f"diagnose::{scenario_spec.name}::{described}",
        )
        return Plan(
            name=f"diagnose:{design_name}:{scenario_spec.name}",
            jobs=(pattern_job, diagnosis_job),
            metadata={
                "design": design_name,
                "scenario": scenario_spec.name,
                "defect": described,
            },
            resources=resources,
        )

    def _diagnose_bp(
        self,
        spec,
        scenario_spec: ScenarioSpec,
        fail_log: "object | None",
        defects: "Sequence | None",
        bp: "bool | object",
        *,
        executor: "Executor | None",
        on_event: "Callable | None",
    ):
        """Run one diagnosis through the loopy-BP volume plane.

        Same two-job plan shape as the classical path (pattern provider
        feeding one ``"bp-diagnosis"`` job), but the diagnosis job is
        content-addressed by :func:`~repro.engine.cache.bp_diagnosis_key` —
        which fingerprints external fail logs, so tester logs cache too.
        """
        import repro.volume.run  # noqa: F401 — registers the "bp-diagnosis" kind
        from repro.volume.bp import BpOptions

        bp_options = bp if isinstance(bp, BpOptions) else BpOptions()
        plan = self._compile_bp_plan(
            spec, scenario_spec, fail_log, defects, bp_options
        )
        pattern_job, bp_job = plan.jobs
        seeds: dict[str, object] = {}
        artifact = self.artifacts.get(scenario_spec.name)
        if artifact is not None and artifact.patterns is not None:
            seeds[pattern_job.id] = artifact
        executor = executor or Executor()
        with self._telemetry.activate():
            result = executor.execute(
                plan, seeds=seeds, cache=self._cache, on_event=on_event
            )
        job_result = result[bp_job.id]
        value = job_result.value
        if job_result.skipped:
            value.cache_hit = True
        return value

    def _compile_bp_plan(
        self, spec, scenario_spec: ScenarioSpec, fail_log: "object | None",
        defects: "Sequence | None", bp_options,
    ) -> Plan:
        """Lower one BP diagnosis request into its two-job plan."""
        from repro.engine.cache import (
            bp_diagnosis_key,
            design_fingerprint,
            fail_log_fingerprint,
        )

        prepared = self.prepared
        design_name = prepared.netlist.name
        pattern_job = Job(
            id=f"patterns:{scenario_spec.name}",
            kind="scenario",
            params={"design": design_name, "scenario": scenario_spec.name},
            cache_key=self._cache_key(scenario_spec),
            label=scenario_spec.name,
            if_needed=True,
        )
        # The injected defect list rides in ``extra`` (the spec only holds
        # one defect); external logs are content-addressed by fingerprint.
        extra: tuple = (tuple(self._stages), tuple(defects or ()))
        log_fp = fail_log_fingerprint(fail_log) if fail_log is not None else None
        key = bp_diagnosis_key(
            design_fingerprint(prepared.model), scenario_spec, spec,
            bp_options, self.options, extra=extra, log_fp=log_fp,
        )
        params: dict[str, object] = {
            "design": design_name,
            "scenario": scenario_spec.name,
            "spec": spec.to_dict(),
            "bp": bp_options.to_dict(),
            "patterns": pattern_job.id,
        }
        resources = self.resources()
        resources["scenarios"][scenario_spec.name] = scenario_spec
        resources["_scheduler_factory"] = lambda: self._diagnosis_scheduler(spec)
        if fail_log is not None:
            params["log"] = "external"
            resources["fail_logs"] = {"external": fail_log}
        if defects:
            params["defects"] = [defect.to_dict() for defect in defects]
        if defects:
            described = " + ".join(defect.describe() for defect in defects)
        elif spec.defect is not None:
            described = spec.defect.describe()
        else:
            described = "fail-log"
        bp_job = Job(
            id=f"bp-diagnose:{scenario_spec.name}",
            kind="bp-diagnosis",
            params=params,
            deps=(pattern_job.id,),
            cache_key=key,
            label=f"bp-diagnose::{scenario_spec.name}::{described}",
        )
        return Plan(
            name=f"bp-diagnose:{design_name}:{scenario_spec.name}",
            jobs=(pattern_job, bp_job),
            metadata={
                "design": design_name,
                "scenario": scenario_spec.name,
                "defect": described,
            },
            resources=resources,
        )

    def _resolve_diagnosis_request(
        self,
        spec_or_defect: "object",
        scenario: "ScenarioSpec | str | None",
        overrides: Mapping[str, object],
    ):
        """Normalize diagnose()'s flexible arguments to (spec, scenario spec).

        The resolved scenario *object* drives execution, so ad-hoc
        (unregistered) ScenarioSpec values work; only its name is stored on
        the JSON-safe DiagnosisSpec.
        """
        from repro.diagnose import DefectSpec, DiagnosisSpec

        scenario_spec = (
            self._resolve_diagnosis_scenario(scenario) if scenario is not None else None
        )
        if isinstance(spec_or_defect, DefectSpec):
            if scenario_spec is None:
                raise ValueError(
                    "diagnosing a bare DefectSpec needs a scenario= argument"
                )
            spec = DiagnosisSpec(scenario=scenario_spec.name, defect=spec_or_defect)
        elif isinstance(spec_or_defect, DiagnosisSpec):
            spec = spec_or_defect
            if scenario_spec is not None:
                spec = spec.with_overrides(scenario=scenario_spec.name)
        else:
            raise TypeError(
                f"diagnose() takes a DiagnosisSpec or DefectSpec, "
                f"not {type(spec_or_defect).__name__}"
            )
        if overrides:
            spec = spec.with_overrides(**overrides)
        if scenario_spec is None:
            scenario_spec = self._resolve_diagnosis_scenario(spec.scenario)
        return spec, scenario_spec

    @staticmethod
    def _resolve_diagnosis_scenario(scenario: "ScenarioSpec | str") -> ScenarioSpec:
        """Scenario lookup that also accepts the paper's experiment letters."""
        from repro.api.scenarios import resolve_scenario_or_letter

        return resolve_scenario_or_letter(scenario)

    def _diagnosis_scheduler(self, spec):
        """The (memoised) candidate-scoring scheduler for one diagnosis spec."""
        from repro.engine.scheduler import FaultSimScheduler

        backend = spec.backend or self.options.sim_backend
        key = (backend, self.options.sim_shards, self.options.sim_workers)
        scheduler = self._diagnosis_schedulers.get(key)
        if scheduler is None or scheduler.model is not self.prepared.model:
            scheduler = FaultSimScheduler(
                self.prepared.model,
                backend=backend,
                shard_count=self.options.sim_shards,
                max_workers=self.options.sim_workers,
            )
            self._diagnosis_schedulers[key] = scheduler
        return scheduler

    # -------------------------------------------------------------- internals
    def _execute(self, spec: ScenarioSpec) -> ScenarioRun:
        cached = self._cache_lookup(spec)
        if cached is not None:
            return cached
        run = self._execute_stages(spec)
        self._cache_store(spec, run)
        return run

    def _execute_stages(self, spec: ScenarioSpec) -> ScenarioRun:
        run = ScenarioRun(spec=spec)
        # Ambient, not self._telemetry: when this session is rebuilt inside
        # a plan job handler (possibly in a worker), the executor's active
        # telemetry is the one that should receive the stage spans.
        tracer = active_tracer()
        for name, stage in self._stages:
            started = time.perf_counter()
            with tracer.span(f"stage:{name}", scenario=spec.name):
                stage(self, run)
            run.stage_seconds[name] = time.perf_counter() - started
        return run

    def _cache_key(self, spec: ScenarioSpec) -> str:
        # The stage pipeline is part of the key: a session with custom
        # stages must never be served a default-pipeline cache entry.
        return scenario_key(
            self.prepared.model, spec, self.options, extra=tuple(self._stages)
        )

    def _cache_lookup(self, spec: ScenarioSpec) -> ScenarioRun | None:
        if self._cache is None:
            return None
        key = self._cache_key(spec)
        run = self._cache.get(key)
        if run is None:
            return None
        run.cache_info = {"hit": True, "key": key}
        return run

    def _cache_store(self, spec: ScenarioSpec, run: ScenarioRun) -> None:
        if self._cache is None:
            return
        key = self._cache_key(spec)
        run.cache_info = {"hit": False, "key": key}
        self._cache.put(key, run, label=spec.name)

    def _outcome(self, run: ScenarioRun) -> ScenarioOutcome:
        return outcome_of(run)

    def _session_metadata(self, specs: Sequence[ScenarioSpec]) -> dict[str, object]:
        meta: dict[str, object] = {
            "design": self.prepared.netlist.name,
            "num_chains": self.prepared.scan.num_chains,
            "scenarios": [spec.name for spec in specs],
        }
        spec = self.design_spec
        if spec is not None:
            meta["design_spec"] = spec.name
            meta["design_size"] = spec.size_estimate()
        if not self._external_design and self._design_spec is None:
            meta["size"] = self._size
            meta["seed"] = self._seed
        return meta


def outcome_of(run: ScenarioRun) -> ScenarioOutcome:
    """Fold one executed scenario run into its JSON-safe outcome record.

    Module-level (not a session method): the campaign runner folds worker-
    and cache-produced runs through the same code path.
    """
    spec = run.spec
    pattern_count = len(run.patterns) if run.patterns is not None else 0
    if spec.fault_model == "mixed":
        combined = run.extras["combined"]
        test_cov = float(combined["test_coverage_percent"])
        fault_cov = float(combined["fault_coverage_percent"])
        effectiveness = float(combined["atpg_effectiveness_percent"])
    elif spec.fault_model == "path-delay":
        info = run.extras["path_delay"]
        targeted = int(info["paths_targeted"]) or 1
        found = int(info["tests_found"])
        test_cov = 100.0 * found / targeted
        fault_cov = test_cov
        effectiveness = 100.0 * (found + int(info["untestable"])) / targeted
    else:
        assert run.result is not None
        test_cov = run.result.coverage.test_coverage
        fault_cov = run.result.coverage.fault_coverage
        effectiveness = run.result.coverage.atpg_effectiveness
    return ScenarioOutcome(
        scenario=spec.name,
        description=spec.description,
        fault_model=spec.fault_model,
        test_coverage=test_cov,
        fault_coverage=fault_cov,
        atpg_effectiveness=effectiveness,
        pattern_count=pattern_count,
        cpu_seconds=sum(run.stage_seconds.values()),
        stage_seconds=dict(run.stage_seconds),
        legacy_key=spec.legacy_key,
        extras=dict(run.extras),
    )
