"""Parametric circuit generators.

These produce reproducible (seeded) synthetic logic used both by the test
suite (small random circuits for property-based checks) and by the synthetic
SOC (:mod:`repro.circuits.soc`), whose combinational "clouds" come from
:func:`random_logic_cloud`.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

_CLOUD_GATES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.MUX2,
]


def random_logic_cloud(
    builder: NetlistBuilder,
    inputs: Sequence[str],
    num_gates: int,
    num_outputs: int,
    rng: random.Random,
    prefix: str = "cloud",
    instance: str | None = None,
) -> list[str]:
    """Grow a random combinational cloud inside an existing builder.

    Gates pick their fanin uniformly from the cloud's inputs and previously
    created gates, which yields reconvergent fanout and a realistic mix of
    easy and hard-to-test structures.

    Args:
        builder: Builder to add gates to.
        inputs: Nets available as cloud inputs (at least one).
        num_gates: Number of gates to create.
        num_outputs: Number of cloud output nets to return.
        rng: Seeded random source.
        prefix: Net-name prefix for the created gates.
        instance: When set, every created gate gets the deterministic
            instance name ``{instance}__{prefix}_g{k}`` instead of the
            builder's globally counted auto-name.  Hierarchical core
            generators rely on this: two cores built with the same ``rng``
            stream then carry identical cell-name suffixes, which is what
            lets :mod:`repro.hier.compile` verify them as copies of one
            kernel.  The default (``None``) keeps the historical
            globally-counted names byte for byte.

    Returns:
        ``num_outputs`` nets selected from the last-created gates.
    """
    if not inputs:
        raise ValueError("a logic cloud needs at least one input")

    # Net names must be globally unique (prefixed by the instance) while the
    # cell-name *suffix* after ``{instance}__`` must be instance-local, so
    # copies of a core carry identical suffixes.
    net_prefix = prefix if instance is None else f"{instance}__{prefix}"

    def gate_name(kind: str, local: int) -> str | None:
        if instance is None:
            return None
        return f"{instance}__{prefix}_{kind}{local}"

    pool: list[str] = list(inputs)
    created: list[str] = []
    # Fanin used inside this cloud.  Gates created before this call cannot
    # reference this cloud's nets (they did not exist yet and net names are
    # unique), so the local set decides "dangling" exactly as a scan over
    # the whole netlist would — without the full-netlist walk that made
    # generation quadratic in design size.
    used: set[str] = set()
    for index in range(num_gates):
        gtype = rng.choice(_CLOUD_GATES)
        if gtype is GateType.NOT:
            chosen = [rng.choice(pool)]
        elif gtype is GateType.MUX2:
            chosen = [rng.choice(pool) for _ in range(3)]
        else:
            fanin = rng.choice((2, 2, 2, 3))
            chosen = [rng.choice(pool) for _ in range(fanin)]
        output = builder.gate(
            gtype, chosen, output=f"{net_prefix}_{index}", name=gate_name("g", index)
        )
        pool.append(output)
        created.append(output)
        used.update(chosen)
    if not created:
        return list(inputs)[:num_outputs]
    outputs: list[str] = []
    for index in range(num_outputs):
        # Bias towards the deepest gates so outputs depend on much of the cloud.
        position = len(created) - 1 - (index % max(1, len(created) // 2))
        outputs.append(created[max(0, position)])

    # Fold otherwise-dangling gates into the outputs so that (nearly) every
    # gate of the cloud is observable — random selection alone would leave a
    # large fraction of the cloud driving nothing, which would show up as
    # structurally untestable faults rather than clocking-related ones.
    used.update(outputs)
    dangling = [net for net in created if net not in used]
    if dangling:
        per_output = max(1, (len(dangling) + num_outputs - 1) // num_outputs)
        fold_counter = 0
        for index in range(len(outputs)):
            chunk = dangling[index * per_output:(index + 1) * per_output]
            if not chunk:
                continue
            if instance is None:
                folded = builder.reduce_tree(GateType.XOR, [outputs[index]] + chunk)
            else:
                folded = outputs[index]
                for net in chunk:
                    folded = builder.gate(
                        GateType.XOR,
                        [folded, net],
                        output=f"{net_prefix}_f{fold_counter}",
                        name=gate_name("f", fold_counter),
                    )
                    fold_counter += 1
            outputs[index] = folded
    return outputs


def random_combinational(
    num_inputs: int,
    num_gates: int,
    num_outputs: int,
    seed: int = 1,
    name: str = "random_comb",
) -> Netlist:
    """A standalone random combinational netlist (no sequential elements)."""
    rng = random.Random(seed)
    builder = NetlistBuilder(name)
    inputs = builder.inputs("in", num_inputs)
    outputs = random_logic_cloud(builder, inputs, num_gates, num_outputs, rng, prefix="g")
    for index, net in enumerate(outputs):
        builder.output_from(net, f"out_{index}")
    return builder.build()


def random_sequential(
    num_inputs: int,
    num_flops: int,
    num_gates: int,
    num_outputs: int,
    seed: int = 1,
    clock: str = "clk",
    name: str = "random_seq",
    nonscan_fraction: float = 0.0,
) -> Netlist:
    """A standalone random sequential netlist with one clock domain.

    Args:
        num_inputs: Primary data inputs.
        num_flops: Flip-flops (their D comes from the random cloud, their Q
            feeds back into it).
        num_gates: Combinational gates in the cloud.
        num_outputs: Primary outputs.
        seed: RNG seed.
        clock: Clock net name.
        name: Netlist name.
        nonscan_fraction: Fraction of flip-flops marked non-scannable.

    Returns:
        The generated netlist.
    """
    rng = random.Random(seed)
    builder = NetlistBuilder(name)
    inputs = builder.inputs("in", num_inputs)
    builder.clock(clock)
    flop_qs = [f"state_{i}" for i in range(num_flops)]
    cloud_outputs = random_logic_cloud(
        builder, inputs + flop_qs, num_gates, num_flops + num_outputs, rng, prefix="g"
    )
    for index in range(num_flops):
        scannable = rng.random() >= nonscan_fraction
        builder.flop(
            cloud_outputs[index],
            clock,
            q=flop_qs[index],
            name=f"ff_{index}",
            scannable=scannable,
        )
    for index in range(num_outputs):
        builder.output_from(cloud_outputs[num_flops + index], f"out_{index}")
    return builder.build()


def pipeline(
    width: int,
    stages: int,
    seed: int = 7,
    clock: str = "clk",
    name: str = "pipeline",
) -> Netlist:
    """A register pipeline with a small random cloud between stages."""
    rng = random.Random(seed)
    builder = NetlistBuilder(name)
    data = builder.inputs("d", width)
    builder.clock(clock)
    current = data
    for stage in range(stages):
        cloud = random_logic_cloud(
            builder, current, num_gates=width * 2, num_outputs=width, rng=rng,
            prefix=f"s{stage}",
        )
        current = [
            builder.flop(net, clock, q=f"p{stage}_{i}_q", name=f"p{stage}_{i}")
            for i, net in enumerate(cloud)
        ]
    for index, net in enumerate(current):
        builder.output_from(net, f"pipe_out_{index}")
    return builder.build()
