"""Benchmark circuits: hand-written blocks, random generators, synthetic SOC."""

from repro.circuits.benchmarks import (
    alu_slice,
    c17,
    loadable_counter,
    ripple_adder,
    s27,
    two_domain_crossing,
)
from repro.circuits.generators import (
    pipeline,
    random_combinational,
    random_logic_cloud,
    random_sequential,
)
from repro.circuits.soc import SocDesign, build_soc

__all__ = [
    "SocDesign",
    "alu_slice",
    "build_soc",
    "c17",
    "loadable_counter",
    "pipeline",
    "random_combinational",
    "random_logic_cloud",
    "random_sequential",
    "ripple_adder",
    "s27",
    "two_domain_crossing",
]
