"""Small hand-written benchmark circuits.

These are the classic teaching circuits used throughout the test suite: the
ISCAS-85 c17 netlist, a small s27-like sequential circuit, a 4-bit ripple
adder, a 4-bit ALU slice and a loadable counter.  They are deliberately tiny
so unit tests and property-based tests stay fast, while still exposing every
structural feature (reconvergence, fanout stems, state feedback) the
algorithms must handle.
"""

from __future__ import annotations

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist


def c17() -> Netlist:
    """The ISCAS-85 c17 benchmark (6 NAND gates, 5 inputs, 2 outputs)."""
    builder = NetlistBuilder("c17")
    n1, n2, n3, n6, n7 = (builder.input(f"N{i}") for i in (1, 2, 3, 6, 7))
    n10 = builder.nand([n1, n3], output="N10")
    n11 = builder.nand([n3, n6], output="N11")
    n16 = builder.nand([n2, n11], output="N16")
    n19 = builder.nand([n11, n7], output="N19")
    builder.nand([n10, n16], output="N22")
    builder.nand([n16, n19], output="N23")
    builder.netlist.add_output("N22")
    builder.netlist.add_output("N23")
    return builder.build()


def s27() -> Netlist:
    """A small sequential benchmark modelled on ISCAS-89 s27 (3 flip-flops)."""
    builder = NetlistBuilder("s27")
    g0, g1, g2, g3 = (builder.input(f"G{i}") for i in range(4))
    clk = builder.clock("clk")
    q0, q1, q2 = "q0", "q1", "q2"
    n10 = builder.inv(g0, output="n10")
    n11 = builder.inv(q2, output="n11")
    n12 = builder.and_([q1, n11], output="n12")
    n13 = builder.or_([n12, g1], output="n13")
    n14 = builder.or_([n10, q0], output="n14")
    n15 = builder.nand([n13, n14], output="n15")
    n16 = builder.nor([n15, g2], output="n16")
    n17 = builder.nor([n16, g3], output="n17")
    n18 = builder.inv(n17, output="n18")
    builder.flop(n16, clk, q=q0, name="ff0")
    builder.flop(n18, clk, q=q1, name="ff1")
    builder.flop(n15, clk, q=q2, name="ff2")
    builder.output_from(n17, "G17")
    return builder.build()


def ripple_adder(width: int = 4) -> Netlist:
    """A ``width``-bit combinational ripple-carry adder."""
    builder = NetlistBuilder(f"adder{width}")
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)
    cin = builder.input("cin")
    sums, carry = builder.ripple_adder(a, b, carry_in=cin)
    for index, net in enumerate(sums):
        builder.output_from(net, f"sum_{index}")
    builder.output_from(carry, "cout")
    return builder.build()


def alu_slice(width: int = 4) -> Netlist:
    """A small ALU: add, AND, OR, XOR selected by two opcode bits."""
    builder = NetlistBuilder(f"alu{width}")
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)
    op = builder.inputs("op", 2)
    sums, carry = builder.ripple_adder(a, b)
    for index in range(width):
        and_net = builder.and_([a[index], b[index]])
        or_net = builder.or_([a[index], b[index]])
        xor_net = builder.xor([a[index], b[index]])
        low = builder.mux(op[0], sums[index], and_net)
        high = builder.mux(op[0], or_net, xor_net)
        out = builder.mux(op[1], low, high)
        builder.output_from(out, f"y_{index}")
    builder.output_from(carry, "cout")
    return builder.build()


def loadable_counter(width: int = 4, clock: str = "clk") -> Netlist:
    """A ``width``-bit counter with synchronous load and enable."""
    builder = NetlistBuilder(f"counter{width}")
    load = builder.input("load")
    enable = builder.input("enable")
    data = builder.inputs("d", width)
    builder.clock(clock)
    state = [f"cnt_{i}" for i in range(width)]
    ones = builder.tie1()
    zeros = [builder.tie0() for _ in range(width - 1)]
    incremented, _ = builder.ripple_adder(state, [ones] + zeros)
    for index in range(width):
        held = builder.mux(enable, state[index], incremented[index])
        next_value = builder.mux(load, held, data[index])
        builder.flop(next_value, clock, q=state[index], name=f"cnt_ff_{index}")
        builder.output_from(state[index], f"q_{index}")
    return builder.build()


def two_domain_crossing(width: int = 4) -> Netlist:
    """A minimal two-clock-domain design with cross-domain data paths.

    Domain A registers feed combinational logic captured in domain B and vice
    versa — the structure that the simple per-domain CPF of experiment (c)
    cannot test and the enhanced CPF of experiment (d) can.
    """
    builder = NetlistBuilder("two_domain")
    clk_a = builder.clock("clk_a")
    clk_b = builder.clock("clk_b")
    din_a = builder.inputs("da", width)
    din_b = builder.inputs("db", width)
    regs_a = [builder.flop(net, clk_a, name=f"a_ff_{i}") for i, net in enumerate(din_a)]
    regs_b = [builder.flop(net, clk_b, name=f"b_ff_{i}") for i, net in enumerate(din_b)]
    # Cross-domain logic: A -> B and B -> A.
    cross_ab = [builder.xor([qa, qb]) for qa, qb in zip(regs_a, regs_b)]
    cross_ba = [builder.and_([qa, qb]) for qa, qb in zip(regs_a, regs_b)]
    capt_b = [builder.flop(net, clk_b, name=f"ab_ff_{i}") for i, net in enumerate(cross_ab)]
    capt_a = [builder.flop(net, clk_a, name=f"ba_ff_{i}") for i, net in enumerate(cross_ba)]
    for index, net in enumerate(capt_b):
        builder.output_from(net, f"yb_{index}")
    for index, net in enumerate(capt_a):
        builder.output_from(net, f"ya_{index}")
    return builder.build()
