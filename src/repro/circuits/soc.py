"""Synthetic micro-controller SOC — the device under test of Section 5.

The paper's experiments ran on a 130nm micro-controller with two synchronous
functional clock domains (75 and 150 MHz), 357 balanced scan chains behind an
EDT controller, non-scan cells, embedded RAM and a test controller.  That
netlist is proprietary, so this module generates a scaled-down surrogate with
the same *structural ingredients* — because it is exactly those ingredients
that interact with the clocking constraints the paper studies:

* a **fast** and a **slow** synchronous functional domain (2:1 frequency
  ratio, mirroring 150/75 MHz) full of random datapath/control logic;
* **cross-domain paths** in both directions (untestable without inter-domain
  launch/capture or a common external clock);
* a sprinkling of **non-scan flip-flops** (need initialization pulses);
* a small synchronous **RAM macro** whose outputs shadow downstream logic
  when RAM-sequential patterns are disabled;
* a **test-controller** domain on its own slow clock that is never pulsed
  at speed once on-chip clock generation is used;
* a **system reset** that the at-speed constraints force inactive.

The generator is seeded and size-parameterized so unit tests can use a tiny
instance while the Table 1 benchmark uses a larger one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuits.generators import random_logic_cloud
from repro.clocking.domains import ClockDomain
from repro.clocking.pll import Pll
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist


@dataclass
class SocDesign:
    """A generated SOC and the metadata the test flow needs."""

    netlist: Netlist
    domains: list[ClockDomain]
    pll: Pll
    reset_net: str
    test_clock_net: str
    test_clock_domain: str
    ram_names: list[str]
    nonscan_flops: list[str]
    io_inputs: list[str]
    io_outputs: list[str]

    @property
    def functional_domains(self) -> list[ClockDomain]:
        return [d for d in self.domains if d.name != self.test_clock_domain]

    @property
    def domain_names(self) -> list[str]:
        return [d.name for d in self.domains]


def build_soc(
    size: int = 2,
    seed: int = 2005,
    fast_mhz: float = 150.0,
    slow_mhz: float = 75.0,
    nonscan_per_domain: int = 3,
    ram_address_bits: int = 3,
    ram_width: int = 4,
    name: str = "soc",
    extra_domains: tuple[float, ...] = (),
    inter_domain_factor: float = 1.0,
    pll_reference_mhz: float = 25.0,
) -> SocDesign:
    """Generate the synthetic SOC.

    Args:
        size: Scale factor; the gate count grows roughly linearly with it
            (size=1 is a few hundred gates, size=4 a few thousand).
        seed: RNG seed for the random logic clouds.
        fast_mhz: Fast functional domain frequency.
        slow_mhz: Slow functional domain frequency.
        nonscan_per_domain: Non-scannable flip-flops per functional domain.
        ram_address_bits: Address width of the embedded RAM.
        ram_width: Data width of the embedded RAM.
        name: Netlist name.
        extra_domains: Frequencies of additional synchronous functional
            domains (``aux0``, ``aux1``, ...), each a PLL output clocking its
            own logic cloud with cross paths back into the fast domain.
        inter_domain_factor: Scale factor for the fast<->slow cross-domain
            logic cloud (1.0 reproduces the paper surrogate, where
            inter-domain tests recover only a few tenths of a percent).
        pll_reference_mhz: External reference (tester) clock frequency.

    Returns:
        The :class:`SocDesign` (scan not yet inserted, clocks still the raw
        PLL outputs — the experiment flow inserts scan and CPFs).
    """
    if size < 1:
        raise ValueError("size must be at least 1")
    if inter_domain_factor <= 0:
        raise ValueError("inter_domain_factor must be positive")
    rng = random.Random(seed)
    builder = NetlistBuilder(name)

    clk_fast = builder.clock("clk_fast")
    clk_slow = builder.clock("clk_slow")
    tck = builder.clock("tck")
    reset = builder.input("reset")

    width = 4 * size
    io_in = builder.inputs("io_in", width)
    ctrl_in = builder.inputs("ctrl_in", max(2, size))

    nonscan: list[str] = []

    # Input registers: pads are captured into registers before any logic sees
    # them, as on a real SOC.  This keeps the "held primary inputs" constraint
    # of on-chip clocking from shadowing large parts of the design.
    io_regs = [
        builder.flop(net, clk_fast, q=f"io_reg_{i}_q", name=f"io_reg_{i}", reset=reset)
        for i, net in enumerate(io_in)
    ]
    ctrl_regs = [
        builder.flop(net, clk_slow, q=f"ctrl_reg_{i}_q", name=f"ctrl_reg_{i}", reset=reset)
        for i, net in enumerate(ctrl_in)
    ]

    # ----------------------------------------------------------- fast domain
    fast_regs: list[str] = []
    stage_inputs = list(io_regs) + list(ctrl_regs)
    for stage in range(2 * size):
        cloud = random_logic_cloud(
            builder,
            stage_inputs + fast_regs,
            num_gates=22 * size,
            num_outputs=width,
            rng=rng,
            prefix=f"fcloud{stage}",
        )
        regs = []
        for index, net in enumerate(cloud):
            flop_name = f"fast_r{stage}_{index}"
            scannable = True
            # Non-scan cells sit in the last pipeline stage so their unknown
            # launch-frame values shadow a realistic (small) slice of logic.
            if (
                len(nonscan) < nonscan_per_domain
                and stage == 2 * size - 1
                and index < nonscan_per_domain
            ):
                scannable = False
            q = builder.flop(
                net, clk_fast, q=f"{flop_name}_q", name=flop_name,
                reset=reset, scannable=scannable,
            )
            if not scannable:
                nonscan.append(flop_name)
            regs.append(q)
        fast_regs.extend(regs)
        stage_inputs = regs

    # A small ALU inside the fast domain exercises arithmetic structures.
    alu_a = fast_regs[:width]
    alu_b = fast_regs[width:2 * width] if len(fast_regs) >= 2 * width else list(io_regs)
    alu_sum, alu_carry = builder.ripple_adder(alu_a, alu_b[: len(alu_a)])
    alu_regs = [
        builder.flop(net, clk_fast, name=f"fast_alu_{i}") for i, net in enumerate(alu_sum)
    ]
    fast_regs.extend(alu_regs)

    # ----------------------------------------------------------- slow domain
    # The slow domain is (almost) self-contained: apart from the dedicated
    # cross-domain cloud below, only a couple of fast registers feed it, so
    # the amount of inter-domain logic stays a small fraction of the design —
    # as on the paper's device, where inter-domain tests recover only a few
    # tenths of a percent of coverage.
    slow_regs: list[str] = []
    nonscan_slow = 0
    stage_inputs = list(ctrl_regs) + list(io_regs[: width // 2])
    for stage in range(size):
        cloud = random_logic_cloud(
            builder,
            stage_inputs + slow_regs + fast_regs[:2],
            num_gates=18 * size,
            num_outputs=width,
            rng=rng,
            prefix=f"scloud{stage}",
        )
        regs = []
        for index, net in enumerate(cloud):
            flop_name = f"slow_r{stage}_{index}"
            scannable = True
            if (
                nonscan_slow < nonscan_per_domain
                and stage == size - 1
                and index < nonscan_per_domain
            ):
                scannable = False
                nonscan_slow += 1
            q = builder.flop(
                net, clk_slow, q=f"{flop_name}_q", name=flop_name,
                reset=reset, scannable=scannable,
            )
            if not scannable:
                nonscan.append(flop_name)
            regs.append(q)
        slow_regs.extend(regs)
        stage_inputs = regs

    # Embedded RAM in the slow domain: address/data from slow registers, read
    # data consumed by more slow-domain logic.
    ram_address = slow_regs[:ram_address_bits]
    ram_data_in = slow_regs[ram_address_bits:ram_address_bits + ram_width]
    if len(ram_data_in) < ram_width:
        ram_data_in = (ram_data_in + list(io_in))[:ram_width]
    ram_we = builder.and_([ctrl_regs[0], slow_regs[-1]], output="ram_we")
    ram_out = builder.ram(
        clock=clk_slow,
        write_enable=ram_we,
        address=ram_address,
        data_in=ram_data_in,
        name="uram0",
    )
    ram_consumers = random_logic_cloud(
        builder, ram_out + slow_regs[:4], num_gates=6 * size, num_outputs=ram_width,
        rng=rng, prefix="ramcloud",
    )
    ram_regs = [
        builder.flop(net, clk_slow, name=f"slow_ram_{i}") for i, net in enumerate(ram_consumers)
    ]
    slow_regs.extend(ram_regs)

    # ------------------------------------------------------- cross-domain paths
    cross_fs = random_logic_cloud(
        builder, fast_regs[:width] + slow_regs[:width],
        num_gates=max(1, int(5 * size * inter_domain_factor)),
        num_outputs=max(2, int(width * inter_domain_factor)),
        rng=rng, prefix="xfs",
    )
    cross_to_slow = [
        builder.flop(net, clk_slow, name=f"xds_{i}") for i, net in enumerate(cross_fs[: width // 2])
    ]
    cross_to_fast = [
        builder.flop(net, clk_fast, name=f"xdf_{i}")
        for i, net in enumerate(cross_fs[width // 2:])
    ]

    # --------------------------------------------------- test controller (tck)
    tc_cloud = random_logic_cloud(
        builder, list(ctrl_regs) + slow_regs[:2], num_gates=3 * size, num_outputs=max(2, size),
        rng=rng, prefix="tc",
    )
    tc_regs = [builder.flop(net, tck, name=f"tc_{i}") for i, net in enumerate(tc_cloud)]

    # ------------------------------------------------ extra functional domains
    # Each auxiliary domain is a self-contained cloud on its own PLL output,
    # with a small cross path registered back into the fast domain (so the
    # many-domain design families exercise multi-domain CPF scheduling and
    # inter-domain launch/capture beyond the paper's two-domain device).
    aux_specs: list[tuple[str, str, float]] = []
    aux_out_regs: list[str] = []
    for aux_index, aux_mhz in enumerate(extra_domains):
        aux_name = f"aux{aux_index}"
        clk_aux = builder.clock(f"clk_{aux_name}")
        aux_cloud = random_logic_cloud(
            builder,
            list(ctrl_regs) + io_regs[:2] + fast_regs[:2],
            num_gates=8 * size,
            num_outputs=max(2, width // 2),
            rng=rng,
            prefix=f"{aux_name}c",
        )
        aux_regs = [
            builder.flop(net, clk_aux, q=f"{aux_name}_r{i}_q", name=f"{aux_name}_r{i}",
                         reset=reset)
            for i, net in enumerate(aux_cloud)
        ]
        xback = random_logic_cloud(
            builder, aux_regs + fast_regs[:2], num_gates=3 * size, num_outputs=2,
            rng=rng, prefix=f"x{aux_name}",
        )
        for i, net in enumerate(xback):
            builder.flop(net, clk_fast, name=f"x{aux_name}_{i}")
        aux_specs.append((aux_name, f"clk_{aux_name}", aux_mhz))
        aux_out_regs.append(aux_regs[0])

    # ----------------------------------------------------------------- outputs
    # Keep the pad count small relative to the flip-flop count, as on a real
    # SOC: almost all observation happens through the scan chains.
    io_outputs: list[str] = []
    out_sources = (
        fast_regs[:2]
        + slow_regs[:2]
        + cross_to_slow[:1]
        + cross_to_fast[:1]
        + tc_regs[:1]
        + [alu_carry]
        + aux_out_regs
    )
    for index, net in enumerate(out_sources):
        io_outputs.append(builder.output_from(net, f"io_out_{index}"))

    netlist = builder.build()

    pll = Pll(reference_mhz=pll_reference_mhz)
    pll.add_output("clk_fast", fast_mhz)
    pll.add_output("clk_slow", slow_mhz)

    domains = [
        ClockDomain(name="fast", clock_net="clk_fast", frequency_mhz=fast_mhz,
                    pll_output="clk_fast"),
        ClockDomain(name="slow", clock_net="clk_slow", frequency_mhz=slow_mhz,
                    pll_output="clk_slow"),
        ClockDomain(name="tc", clock_net="tck", frequency_mhz=10.0, pll_output=None),
    ]
    for aux_name, aux_clock_net, aux_mhz in aux_specs:
        pll.add_output(aux_clock_net, aux_mhz)
        domains.append(
            ClockDomain(name=aux_name, clock_net=aux_clock_net,
                        frequency_mhz=aux_mhz, pll_output=aux_clock_net)
        )

    return SocDesign(
        netlist=netlist,
        domains=domains,
        pll=pll,
        reset_net=reset,
        test_clock_net=tck,
        test_clock_domain="tc",
        ram_names=["uram0"],
        nonscan_flops=nonscan,
        io_inputs=list(io_in) + list(ctrl_in),
        io_outputs=io_outputs,
    )
