"""Hierarchical SoC generator — repeated cores, table1-compatible glue.

The paper's device is an industrial SoC; real SoCs at the 10⁴–10⁶ gate
scale are not one flat random cloud but a fabric of *repeated core
instances* (CPU clusters, DSP lanes, memory controllers) stamped out from a
handful of unique cores, stitched together with a thin layer of glue logic.
:func:`build_hier_soc` generates exactly that shape:

* ``num_cores`` core instances of ``core_kinds`` unique kinds, each a small
  two-stage register pipeline around seeded random clouds
  (:func:`~repro.circuits.generators.random_logic_cloud`) — every instance
  of a kind replays the same RNG stream, so instances are structurally
  identical and the hierarchical kernel compiler
  (:mod:`repro.hier.compile`) can verify and share one kernel per kind;
* cores talk to each other only through their output registers (flip-flop
  Q nets), never gate-to-gate, which keeps every instance *closed* — the
  property the shared-kernel schedule relies on;
* the glue keeps the structural ingredients of the paper surrogate
  (:func:`repro.circuits.soc.build_soc`): two synchronous functional
  domains (fast/slow) plus a test-controller domain, cross-domain paths in
  both directions, non-scan cells, and a small embedded RAM — so every
  Table-1 scenario runs unchanged at any size.

The returned :class:`~repro.circuits.soc.SocDesign` carries a
:class:`~repro.netlist.netlist.DesignHierarchy` on its netlist, which
``build_model`` forwards to the engine.
"""

from __future__ import annotations

import random

from repro.circuits.generators import random_logic_cloud
from repro.circuits.soc import SocDesign
from repro.clocking.domains import ClockDomain
from repro.clocking.pll import Pll
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import DesignHierarchy

#: Output-register width of every core (its PPI-level interface).
CORE_WIDTH = 8


def build_hier_soc(
    num_cores: int,
    core_gates: int = 160,
    core_kinds: int = 3,
    seed: int = 2005,
    fast_mhz: float = 150.0,
    slow_mhz: float = 75.0,
    pll_reference_mhz: float = 25.0,
    name: str = "hier_soc",
) -> SocDesign:
    """Generate a hierarchical SoC of ``num_cores`` stamped-out cores.

    Args:
        num_cores: Core instances; the gate count is roughly
            ``num_cores * core_gates`` plus a small constant glue.
        core_gates: Combinational gates per core (split over two pipeline
            stages; scan muxes come on top after scan insertion).
        core_kinds: Unique core types; instance ``c`` is of kind
            ``c % core_kinds``.  The last kind lives in the slow domain,
            all others in the fast domain.
        seed: RNG seed (per-kind streams are derived from it).
        fast_mhz / slow_mhz / pll_reference_mhz: Clocking, as in
            :func:`~repro.circuits.soc.build_soc`.
        name: Netlist name.

    Returns:
        The :class:`~repro.circuits.soc.SocDesign` (scan not yet inserted),
        with hierarchy metadata attached to the netlist.
    """
    if num_cores < 1:
        raise ValueError("num_cores must be at least 1")
    if core_kinds < 1 or core_kinds > num_cores:
        raise ValueError("core_kinds must be in 1..num_cores")
    if core_gates < 8:
        raise ValueError("core_gates must be at least 8")

    builder = NetlistBuilder(name)
    glue_rng = random.Random(seed)

    clk_fast = builder.clock("clk_fast")
    clk_slow = builder.clock("clk_slow")
    tck = builder.clock("tck")
    reset = builder.input("reset")

    width = CORE_WIDTH
    io_in = builder.inputs("io_in", width)
    ctrl_in = builder.inputs("ctrl_in", 4)

    io_regs = [
        builder.flop(net, clk_fast, q=f"io_reg_{i}_q", name=f"io_reg_{i}", reset=reset)
        for i, net in enumerate(io_in)
    ]
    ctrl_regs = [
        builder.flop(net, clk_slow, q=f"ctrl_reg_{i}_q", name=f"ctrl_reg_{i}", reset=reset)
        for i, net in enumerate(ctrl_in)
    ]

    # ------------------------------------------------------------------- cores
    # Cores form a ring-like pipeline: each reads four output registers of
    # the previous core (pads for core 0) plus two control registers — a
    # fixed-arity interface, so every instance of a kind sees the same
    # *local* structure no matter where it sits in the chain.
    half = core_gates // 2
    instances: list[tuple[str, str]] = []
    feed: list[str] = list(io_regs)
    last_fast_feed: list[str] = list(io_regs)
    last_slow_feed: list[str] = list(ctrl_regs)
    for c in range(num_cores):
        prefix = f"core{c}"
        kind = c % core_kinds
        slow_kind = core_kinds > 1 and kind == core_kinds - 1
        clk = clk_slow if slow_kind else clk_fast
        # One fresh stream per (seed, kind): every instance of a kind
        # replays it, making the copies structurally identical.
        rng = random.Random(f"{seed}|hier|{kind}")
        ext = feed[:4] + ctrl_regs[:2]
        r1_qs = [f"{prefix}__r1_{i}_q" for i in range(width)]
        stage0 = random_logic_cloud(
            builder, ext + r1_qs, num_gates=half, num_outputs=width,
            rng=rng, prefix="c0", instance=prefix,
        )
        r0_qs = [
            builder.flop(net, clk, q=f"{prefix}__r0_{i}_q",
                         name=f"{prefix}__r0_{i}", reset=reset)
            for i, net in enumerate(stage0)
        ]
        stage1 = random_logic_cloud(
            builder, r0_qs + ext[:2], num_gates=core_gates - half,
            num_outputs=width, rng=rng, prefix="c1", instance=prefix,
        )
        for i, net in enumerate(stage1):
            builder.flop(net, clk, q=r1_qs[i], name=f"{prefix}__r1_{i}", reset=reset)
        instances.append((prefix, f"kind{kind}"))
        feed = r1_qs
        if slow_kind:
            last_slow_feed = r1_qs
        else:
            last_fast_feed = r1_qs

    # -------------------------------------------------------------- glue logic
    # Table-1 structural ingredients, all residual (unprefixed) so the flat
    # tape owns them: non-scan cells, embedded RAM, cross-domain paths and a
    # test-controller domain.
    nonscan: list[str] = []
    for i in range(2):
        flop_name = f"nonscan_f{i}"
        builder.flop(last_fast_feed[i], clk_fast, q=f"{flop_name}_q",
                     name=flop_name, scannable=False)
        nonscan.append(flop_name)
    for i in range(2):
        flop_name = f"nonscan_s{i}"
        builder.flop(last_slow_feed[i], clk_slow, q=f"{flop_name}_q",
                     name=flop_name, scannable=False)
        nonscan.append(flop_name)

    ram_we = builder.and_([ctrl_regs[0], last_slow_feed[-1]], output="ram_we")
    ram_out = builder.ram(
        clock=clk_slow,
        write_enable=ram_we,
        address=last_slow_feed[:3],
        data_in=(last_slow_feed[3:7] + ctrl_regs)[:4],
        name="uram0",
    )
    ram_consumers = random_logic_cloud(
        builder, ram_out + list(ctrl_regs), num_gates=12, num_outputs=4,
        rng=glue_rng, prefix="ramcloud",
    )
    slow_ram_regs = [
        builder.flop(net, clk_slow, name=f"slow_ram_{i}")
        for i, net in enumerate(ram_consumers)
    ]

    cross = random_logic_cloud(
        builder, last_fast_feed[:4] + last_slow_feed[:4], num_gates=16,
        num_outputs=4, rng=glue_rng, prefix="xfs",
    )
    cross_to_slow = [
        builder.flop(net, clk_slow, name=f"xds_{i}") for i, net in enumerate(cross[:2])
    ]
    cross_to_fast = [
        builder.flop(net, clk_fast, name=f"xdf_{i}") for i, net in enumerate(cross[2:])
    ]

    tc_cloud = random_logic_cloud(
        builder, list(ctrl_regs) + last_slow_feed[:2], num_gates=8,
        num_outputs=2, rng=glue_rng, prefix="tc",
    )
    tc_regs = [builder.flop(net, tck, name=f"tc_{i}") for i, net in enumerate(tc_cloud)]

    io_outputs: list[str] = []
    out_sources = (
        feed[:2] + cross_to_slow[:1] + cross_to_fast[:1] + tc_regs[:1]
        + slow_ram_regs[:1]
    )
    for index, net in enumerate(out_sources):
        io_outputs.append(builder.output_from(net, f"io_out_{index}"))

    netlist = builder.build()
    netlist.hierarchy = DesignHierarchy(instances=tuple(instances))

    pll = Pll(reference_mhz=pll_reference_mhz)
    pll.add_output("clk_fast", fast_mhz)
    pll.add_output("clk_slow", slow_mhz)
    domains = [
        ClockDomain(name="fast", clock_net="clk_fast", frequency_mhz=fast_mhz,
                    pll_output="clk_fast"),
        ClockDomain(name="slow", clock_net="clk_slow", frequency_mhz=slow_mhz,
                    pll_output="clk_slow"),
        ClockDomain(name="tc", clock_net="tck", frequency_mhz=10.0, pll_output=None),
    ]

    return SocDesign(
        netlist=netlist,
        domains=domains,
        pll=pll,
        reset_net=reset,
        test_clock_net=tck,
        test_clock_domain="tc",
        ram_names=["uram0"],
        nonscan_flops=nonscan,
        io_inputs=list(io_in) + list(ctrl_in),
        io_outputs=io_outputs,
    )
