"""Volume fault diagnosis: score candidate defects against a fail log.

The diagnosis loop is the inverse of test generation: given the syndrome a
failing device produced on the tester (a :class:`~repro.diagnose.faillog.FailLog`),
rank the candidate defects that best explain it.  The structure mirrors
iterative message-passing inference: every candidate *predicts* a syndrome
(one fault simulation through the engine's compiled kernels), prediction and
observation exchange evidence (per-bit match/miss/false-alarm counts), and
tied candidates are re-ranked by reweighting each observed failing bit by
how many of its explaining candidates remain — rare evidence counts for
more, exactly like a belief-propagation message.

This is the engine's first high-traffic *inner-loop* workload: one diagnosis
fans hundreds of candidate fault simulations over the
serial/compiled/threads/processes backends of
:class:`~repro.engine.scheduler.FaultSimScheduler` (per-observation-node
``syndrome_batch``), and results flow through the persistent engine cache so
re-diagnosing an unchanged (design, scenario, defect) cell is a disk read.

Every backend and shard count produces bit-identical syndrome scores and
therefore identical rankings — ``tests/test_diagnose_backends.py`` holds the
four backends to exactly that.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.atpg.config import AtpgOptions, TestSetup
from repro.diagnose.candidates import (
    Candidate,
    CandidateSet,
    extract_candidates,
    observed_fail_pairs,
)
from repro.diagnose.defects import DEFECT_KINDS, DefectSpec
from repro.diagnose.faillog import FailLog, capture_fail_log
from repro.engine.scheduler import BACKENDS, FaultSimScheduler
from repro.fault_sim.transition import FrameSimulator
from repro.obs.telemetry import active_metrics, active_tracer
from repro.patterns.pattern import PatternSet, TestPattern
from repro.simulation.model import CircuitModel
from repro.simulation.parallel_sim import mask_to_indices


@dataclass(frozen=True)
class DiagnosisSpec:
    """One declarative diagnosis configuration (JSON-round-trippable).

    Attributes:
        scenario: Name of the registered scenario whose pattern set the
            failing device ran (the paper letters "a".."e" are accepted by
            the API front doors).
        defect: The defect to inject for closed-loop experiments; ``None``
            when diagnosing an externally captured fail log.
        candidate_kinds: Defect families to hypothesize per candidate site.
        max_sites: Optional cap on candidate sites (None == exhaustive).
        rerank_iterations: Evidence-reweighting rounds applied to tied
            candidates (0 == plain match/miss ordering).
        batch_size: Patterns per bit-parallel scoring batch.
        backend: Engine backend override for candidate simulation (``None``
            == follow ``AtpgOptions.sim_backend``).
    """

    scenario: str
    defect: DefectSpec | None = None
    candidate_kinds: tuple[str, ...] = DEFECT_KINDS
    max_sites: int | None = None
    rerank_iterations: int = 2
    batch_size: int = 256
    backend: str | None = None

    def __post_init__(self) -> None:
        if not self.scenario:
            raise ValueError("a diagnosis needs a scenario name")
        for kind in self.candidate_kinds:
            if kind not in DEFECT_KINDS:
                raise ValueError(
                    f"unknown candidate kind {kind!r} "
                    f"(expected a subset of {DEFECT_KINDS})"
                )
        if not self.candidate_kinds:
            raise ValueError("a diagnosis needs at least one candidate kind")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.rerank_iterations < 0:
            raise ValueError("rerank_iterations must be non-negative")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"unknown engine backend {self.backend!r} "
                f"(expected one of {BACKENDS})"
            )
        if isinstance(self.candidate_kinds, list):
            object.__setattr__(self, "candidate_kinds", tuple(self.candidate_kinds))

    def with_overrides(self, **changes: object) -> "DiagnosisSpec":
        return replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "defect": self.defect.to_dict() if self.defect is not None else None,
            "candidate_kinds": list(self.candidate_kinds),
            "max_sites": self.max_sites,
            "rerank_iterations": self.rerank_iterations,
            "batch_size": self.batch_size,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DiagnosisSpec":
        payload = dict(data)
        defect = payload.get("defect")
        if isinstance(defect, Mapping):
            payload["defect"] = DefectSpec.from_dict(defect)
        payload["candidate_kinds"] = tuple(payload.get("candidate_kinds") or DEFECT_KINDS)
        return cls(**payload)  # type: ignore[arg-type]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DiagnosisSpec":
        return cls.from_dict(json.loads(text))


@dataclass
class ScoredCandidate:
    """One ranked defect hypothesis (JSON-safe).

    ``rank`` is competition-style: 1 plus the number of candidates with a
    strictly better (misses+false_alarms, hits) key, so equivalent
    candidates — ones predicting the identical syndrome — share a rank.
    """

    rank: int
    kind: str
    net: str
    pin: int | None
    value: int | None
    polarity: str | None
    hits: int
    misses: int
    false_alarms: int
    score: float

    @property
    def errors(self) -> int:
        """Symmetric difference between predicted and observed syndromes."""
        return self.misses + self.false_alarms

    @property
    def is_perfect(self) -> bool:
        return self.errors == 0

    def describe(self) -> str:
        terminal = self.net if self.pin is None else f"{self.net}.in{self.pin}"
        if self.kind == "stuck-at":
            what = f"{terminal} stuck-at-{self.value}"
        else:
            what = f"{terminal} {self.kind} {self.polarity}"
        return (
            f"#{self.rank} {what}  hits={self.hits} "
            f"miss={self.misses} fa={self.false_alarms}"
        )

    def matches(self, defect: DefectSpec) -> bool:
        """Is this candidate exactly the given defect hypothesis?"""
        if self.kind != defect.kind or self.net != defect.net or self.pin != defect.pin:
            return False
        if defect.kind == "stuck-at":
            return self.value == defect.value
        return self.polarity == defect.polarity

    def to_dict(self) -> dict[str, object]:
        return {
            "rank": self.rank,
            "kind": self.kind,
            "net": self.net,
            "pin": self.pin,
            "value": self.value,
            "polarity": self.polarity,
            "hits": self.hits,
            "misses": self.misses,
            "false_alarms": self.false_alarms,
            "score": self.score,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScoredCandidate":
        return cls(**dict(data))  # type: ignore[arg-type]


@dataclass
class DiagnosisResult:
    """The ranked outcome of one diagnosis run (JSON-round-trippable)."""

    design: str
    scenario: str
    backend: str
    pattern_count: int
    fail_count: int
    site_count: int
    candidate_count: int
    truncated_sites: int
    candidates: list[ScoredCandidate] = field(default_factory=list)
    defect: DefectSpec | None = None
    #: Size of the rank-1 tie group — the classical diagnosis "resolution".
    resolution: int = 0
    #: Rank of the injected/known defect (None when unknown or not found).
    rank_of_defect: int | None = None
    wall_seconds: float = 0.0
    cache_hit: bool = False

    @property
    def recovered_at_rank_1(self) -> bool:
        return self.rank_of_defect == 1

    def top(self, count: int = 5) -> list[ScoredCandidate]:
        return self.candidates[:count]

    def summary(self) -> str:
        lines = [
            f"diagnosis of {self.design} / {self.scenario}: "
            f"{self.fail_count} failing bits over {self.pattern_count} patterns, "
            f"{self.candidate_count} candidates at {self.site_count} sites "
            f"(backend={self.backend}, {self.wall_seconds:.2f}s)"
        ]
        if self.defect is not None:
            where = "NOT FOUND" if self.rank_of_defect is None else f"rank {self.rank_of_defect}"
            lines.append(f"  injected defect {self.defect.describe()}: {where} "
                         f"(resolution {self.resolution})")
        for row in self.top():
            lines.append(f"  {row.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "design": self.design,
            "scenario": self.scenario,
            "backend": self.backend,
            "pattern_count": self.pattern_count,
            "fail_count": self.fail_count,
            "site_count": self.site_count,
            "candidate_count": self.candidate_count,
            "truncated_sites": self.truncated_sites,
            "candidates": [row.to_dict() for row in self.candidates],
            "defect": self.defect.to_dict() if self.defect is not None else None,
            "resolution": self.resolution,
            "rank_of_defect": self.rank_of_defect,
            "wall_seconds": self.wall_seconds,
            "cache_hit": self.cache_hit,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DiagnosisResult":
        payload = dict(data)
        payload["candidates"] = [
            ScoredCandidate.from_dict(item) for item in payload.get("candidates", [])
        ]
        defect = payload.get("defect")
        if isinstance(defect, Mapping):
            payload["defect"] = DefectSpec.from_dict(defect)
        return cls(**payload)  # type: ignore[arg-type]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DiagnosisResult":
        return cls.from_dict(json.loads(text))

    def same_ranking(self, other: "DiagnosisResult") -> bool:
        """Deterministic-field equality of the full ranking (ignores timing,
        backend and cache provenance — the backend-equivalence contract)."""
        if len(self.candidates) != len(other.candidates):
            return False
        return all(
            mine.to_dict() == theirs.to_dict()
            for mine, theirs in zip(self.candidates, other.candidates)
        )


# --------------------------------------------------------------------------
# Campaign-facing report
# --------------------------------------------------------------------------
@dataclass
class DiagnosisCell:
    """One completed (design, scenario, defect) diagnosis grid cell."""

    design: str
    scenario: str
    defect: DefectSpec
    rank_of_defect: int | None
    resolution: int
    candidate_count: int
    site_count: int
    fail_count: int
    pattern_count: int
    wall_seconds: float = 0.0
    cache_hit: bool = False
    #: Calibrated BP marginal of the injected defect's candidate (None for
    #: the legacy syndrome ranking, which produces no marginals).
    confidence: float | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "design": self.design,
            "scenario": self.scenario,
            "defect": self.defect.to_dict(),
            "rank_of_defect": self.rank_of_defect,
            "resolution": self.resolution,
            "candidate_count": self.candidate_count,
            "site_count": self.site_count,
            "fail_count": self.fail_count,
            "pattern_count": self.pattern_count,
            "wall_seconds": self.wall_seconds,
            "cache_hit": self.cache_hit,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DiagnosisCell":
        payload = dict(data)
        payload["defect"] = DefectSpec.from_dict(payload["defect"])  # type: ignore[arg-type]
        return cls(**payload)  # type: ignore[arg-type]

    @classmethod
    def from_result(
        cls, design: str, spec: DiagnosisSpec, result: DiagnosisResult
    ) -> "DiagnosisCell":
        """Fold one streamed :class:`DiagnosisResult` into its grid cell.

        The campaign runner builds every cell — executed or served from the
        cache — through this one constructor, so cell fields can never
        drift from the result they summarize.
        """
        assert spec.defect is not None, "diagnosis grid cells inject a defect"
        return cls(
            design=design,
            scenario=spec.scenario,
            defect=spec.defect,
            rank_of_defect=result.rank_of_defect,
            resolution=result.resolution,
            candidate_count=result.candidate_count,
            site_count=result.site_count,
            fail_count=result.fail_count,
            pattern_count=result.pattern_count,
            wall_seconds=result.wall_seconds,
            cache_hit=result.cache_hit,
            confidence=getattr(result, "confidence_of_defect", None),
        )


@dataclass
class DiagnosisReport:
    """Streaming design x scenario x defect diagnosis sweep results."""

    campaign: dict[str, object] = field(default_factory=dict)
    cells: list[DiagnosisCell] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def add_cell(self, cell: DiagnosisCell) -> DiagnosisCell:
        self.cells.append(cell)
        return cell

    def cell(self, design: str, scenario: str, defect: DefectSpec) -> DiagnosisCell:
        for cell in self.cells:
            if (
                cell.design == design
                and cell.scenario == scenario
                and cell.defect == defect
            ):
                return cell
        raise KeyError(
            f"no diagnosis cell for ({design!r}, {scenario!r}, {defect.describe()!r})"
        )

    def rank_one_count(self) -> int:
        return sum(1 for cell in self.cells if cell.rank_of_defect == 1)

    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cache_hit)

    @property
    def backend_fallbacks(self) -> list[dict[str, str]]:
        """Execution degradations recorded by the runtime executor.

        Same contract as :attr:`RunReport.backend_fallbacks`: empty for
        healthy sweeps, ``{"requested", "used", "reason"}`` per spill when a
        processes fan-out fell back to threads.  Rankings are bit-identical
        either way, but wall-clock expectations are not.
        """
        return list(self.campaign.get("backend_fallbacks") or [])

    @property
    def degraded(self) -> bool:
        """True when the sweep did not execute on the requested backend."""
        return bool(self.backend_fallbacks)

    def summary(self) -> str:
        lines = []
        for cell in self.cells:
            rank = "-" if cell.rank_of_defect is None else str(cell.rank_of_defect)
            origin = "cache" if cell.cache_hit else "run"
            conf = "-" if cell.confidence is None else f"{cell.confidence:.3f}"
            lines.append(
                f"{cell.design:<20} {cell.scenario:<12} "
                f"{cell.defect.describe():<40} rank={rank:<3} "
                f"conf={conf:<6} res={cell.resolution:<3} "
                f"cands={cell.candidate_count:<5} "
                f"{origin:<5} {cell.wall_seconds:7.2f}s"
            )
        lines.append(
            f"recovered at rank 1: {self.rank_one_count()}/{len(self.cells)}"
        )
        for fb in self.backend_fallbacks:
            lines.append(
                f"NOTE: backend fallback {fb.get('requested', '?')} -> "
                f"{fb.get('used', '?')}: {fb.get('reason', 'unknown reason')}"
            )
        return "\n".join(lines)

    def to_json(self, indent: int | None = 2) -> str:
        payload = {
            "campaign": self.campaign,
            "cells": [cell.to_dict() for cell in self.cells],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DiagnosisReport":
        payload = json.loads(text)
        return cls(
            campaign=dict(payload.get("campaign", {})),
            cells=[DiagnosisCell.from_dict(item) for item in payload.get("cells", [])],
        )


# --------------------------------------------------------------------------
# Scoring
# --------------------------------------------------------------------------
def _rerank_scores(
    group: list[int],
    hit_pairs: list[set[tuple[int, int]]],
    iterations: int,
) -> dict[int, float]:
    """Message-passing style evidence reweighting for one tie group.

    This is the *cheap path* of candidate inference: only candidates inside
    one already-tied rank group exchange messages, so the cost is a few
    dict sweeps over the group's evidence instead of full factor-graph
    inference over every candidate.  The actual kernel lives in
    :func:`repro.volume.bp.rerank_tied_scores` — one implementation shared
    with the volume subsystem's loopy-BP schedule (imported lazily here
    because :mod:`repro.volume` layers on top of the diagnosis plane).
    """
    from repro.volume.bp import rerank_tied_scores

    return rerank_tied_scores(group, hit_pairs, iterations)


@dataclass
class SyndromeEvidence:
    """Per-candidate syndrome/fail-log agreement for one pattern set.

    The shared evidence layer between the legacy single-defect ranking
    (:func:`score_candidates`) and the volume subsystem's factor graph
    (:mod:`repro.volume.graph`): both consume the identical engine-produced
    bit sets, so their verdicts can never disagree about the data.

    Attributes:
        observed: Every ``(pattern, node)`` failing bit of the log.
        hit_pairs: Per candidate, the observed bits its predicted syndrome
            explains.
        false_alarms: Per candidate, the number of predicted-but-unobserved
            failing bits.
    """

    observed: set[tuple[int, int]]
    hit_pairs: list[set[tuple[int, int]]]
    false_alarms: list[int]

    @property
    def total_observed(self) -> int:
        return len(self.observed)


def simulate_candidate_syndromes(
    model: CircuitModel,
    domain_map,
    setup: TestSetup,
    patterns: "PatternSet | Sequence[TestPattern]",
    candidate_set: CandidateSet,
    fail_log: FailLog,
    *,
    backend: str = "compiled",
    shard_count: int | None = None,
    max_workers: int | None = None,
    batch_size: int = 256,
    scheduler: FaultSimScheduler | None = None,
) -> SyndromeEvidence:
    """Simulate every candidate's syndrome and tally it against the log.

    Every candidate's predicted syndrome is computed with the engine's
    per-observation-node kernels (:meth:`FaultSimScheduler.syndrome_batch`),
    sharded over the chosen backend; the resulting evidence is bit-identical
    across backends and shard counts.  Pass an externally owned
    ``scheduler`` to amortize one worker pool over many diagnoses (volume
    diagnosis) — it is then the caller's to close, and ``backend``/
    ``shard_count``/``max_workers`` are ignored.
    """
    items = list(patterns)
    candidates: list[Candidate] = candidate_set.candidates
    observed = observed_fail_pairs(model, fail_log)
    hit_pairs: list[set[tuple[int, int]]] = [set() for _ in candidates]
    false_alarms = [0] * len(candidates)

    po_nodes = {idx for _, idx in model.po_nodes}
    element_by_name = {e.name: e for e in model.state_elements}
    owns_scheduler = scheduler is None
    if scheduler is None:
        scheduler = FaultSimScheduler(
            model, backend=backend, shard_count=shard_count, max_workers=max_workers
        )
    frames_sim = FrameSimulator(model, domain_map, setup, scheduler)
    try:
        current_procedure: str | None = None
        po_only: list[bool] = []
        active: list[tuple[int, Candidate]] = []
        faults: list = []
        for procedure, observation, chunk, batch, launch, final in (
            frames_sim.iter_batches(items, batch_size)
        ):
            if not observation:
                continue
            if procedure.name != current_procedure:
                current_procedure = procedure.name
                captured_d = {
                    element_by_name[name].d_node
                    for name in frames_sim.observed_scan_flops(procedure)
                    if element_by_name[name].d_node is not None
                }
                # PO-only observation nodes are gated per pattern by
                # observe_pos, mirroring what the tester (and
                # capture_fail_log) compares.
                po_only = [
                    obs in po_nodes and obs not in captured_d for obs in observation
                ]
                active = [
                    (index, candidate)
                    for index, candidate in enumerate(candidates)
                    if candidate.kind != "inter-domain" or procedure.is_inter_domain
                ]
                faults = [candidate.fault for _, candidate in active]
            if not active:
                continue
            full = final.full_mask
            po_gate = 0
            for local, pattern in enumerate(batch):
                if pattern.observe_pos:
                    po_gate |= 1 << local
            observed_masks = []
            for obs in observation:
                mask = 0
                for local, pattern_index in enumerate(chunk):
                    if (pattern_index, obs) in observed:
                        mask |= 1 << local
                observed_masks.append(mask)
            syndromes = scheduler.syndrome_batch(
                final, faults, observation, launch=launch
            )
            for (cand_index, _), masks in zip(active, syndromes):
                hits = hit_pairs[cand_index]
                for obs_index, mask in enumerate(masks):
                    if po_only[obs_index]:
                        mask &= po_gate
                    if not mask:
                        continue
                    obs_mask = observed_masks[obs_index]
                    matched = mask & obs_mask
                    false_alarms[cand_index] += (mask & ~obs_mask & full).bit_count()
                    if matched:
                        obs = observation[obs_index]
                        for local in mask_to_indices(matched):
                            hits.add((chunk[local], obs))
    finally:
        if owns_scheduler:
            scheduler.close()
    return SyndromeEvidence(
        observed=observed, hit_pairs=hit_pairs, false_alarms=false_alarms
    )


def score_candidates(
    model: CircuitModel,
    domain_map,
    setup: TestSetup,
    patterns: "PatternSet | Sequence[TestPattern]",
    candidate_set: CandidateSet,
    fail_log: FailLog,
    *,
    backend: str = "compiled",
    shard_count: int | None = None,
    max_workers: int | None = None,
    batch_size: int = 256,
    rerank_iterations: int = 2,
    scheduler: FaultSimScheduler | None = None,
) -> list[ScoredCandidate]:
    """Rank candidate defects by syndrome match against the fail log.

    The evidence layer (:func:`simulate_candidate_syndromes`) is shared
    with volume BP diagnosis; scores are bit-identical across backends and
    shard counts.  Pass an externally owned ``scheduler`` to amortize one
    worker pool over many diagnoses — it is then the caller's to close,
    and ``backend``/``shard_count``/``max_workers`` are ignored.
    """
    score_started = time.perf_counter()
    items = list(patterns)
    candidates: list[Candidate] = candidate_set.candidates
    evidence = simulate_candidate_syndromes(
        model,
        domain_map,
        setup,
        items,
        candidate_set,
        fail_log,
        backend=backend,
        shard_count=shard_count,
        max_workers=max_workers,
        batch_size=batch_size,
        scheduler=scheduler,
    )
    hit_pairs = evidence.hit_pairs
    false_alarms = evidence.false_alarms
    total_observed = evidence.total_observed

    # ------------------------------------------------------------------ ranking
    order = sorted(
        range(len(candidates)),
        key=lambda index: (
            (total_observed - len(hit_pairs[index])) + false_alarms[index],
            -len(hit_pairs[index]),
            index,
        ),
    )
    keyed = [
        (
            (total_observed - len(hit_pairs[index])) + false_alarms[index],
            -len(hit_pairs[index]),
        )
        for index in order
    ]
    # Competition ranks over the primary key, then message-passing re-ranking
    # inside each tie group.
    rows: list[ScoredCandidate] = []
    position = 0
    while position < len(order):
        end = position
        while end < len(order) and keyed[end] == keyed[position]:
            end += 1
        group = order[position:end]
        if len(group) > 1 and rerank_iterations > 0:
            scores = _rerank_scores(group, hit_pairs, rerank_iterations)
            group = sorted(group, key=lambda index: (-scores[index], index))
        else:
            scores = {index: float(len(hit_pairs[index])) for index in group}
        rank = position + 1
        for index in group:
            spec = candidates[index].spec(model)
            rows.append(
                ScoredCandidate(
                    rank=rank,
                    kind=spec.kind,
                    net=spec.net,
                    pin=spec.pin,
                    value=spec.value,
                    polarity=spec.polarity,
                    hits=len(hit_pairs[index]),
                    misses=total_observed - len(hit_pairs[index]),
                    false_alarms=false_alarms[index],
                    score=round(scores[index], 9),
                )
            )
        position = end
    metrics = active_metrics()
    if metrics is not None:
        metrics.inc("diagnose.score_runs")
        metrics.inc("diagnose.candidates_scored", len(candidates))
    active_tracer().record(
        "diagnose:score",
        start=score_started,
        candidates=len(candidates),
        patterns=len(items),
    )
    return rows


def run_diagnosis(
    prepared,
    setup: TestSetup,
    patterns: "PatternSet | Sequence[TestPattern]",
    spec: DiagnosisSpec,
    fail_log: FailLog | None = None,
    options: AtpgOptions | None = None,
    scheduler: FaultSimScheduler | None = None,
) -> DiagnosisResult:
    """Execute one full diagnosis: capture (if needed), extract, score, rank.

    Args:
        prepared: The :class:`~repro.core.flow.PreparedDesign` under test.
        setup: The constraint environment the patterns were generated under.
        patterns: The pattern set the failing device ran on the tester.
        spec: The declarative diagnosis configuration.
        fail_log: An externally captured fail log; ``None`` injects
            ``spec.defect`` and captures one (the closed-loop experiment).
        options: Engine execution knobs (``sim_backend``/``sim_shards``/
            ``sim_workers``); ``spec.backend`` overrides the backend.
        scheduler: An externally owned scoring scheduler, reused across
            diagnoses to amortize one worker pool over a whole device stream
            (volume diagnosis); overrides the backend knobs and stays open.
    """
    started = time.perf_counter()
    options = options or setup.options
    backend = (
        scheduler.backend_name if scheduler is not None
        else spec.backend or options.sim_backend
    )
    model = prepared.model
    items = list(patterns)
    if fail_log is None:
        if spec.defect is None:
            raise ValueError(
                "run_diagnosis needs either a fail log or a defect to inject"
            )
        fail_log = capture_fail_log(
            model,
            prepared.domain_map,
            prepared.scan,
            setup,
            items,
            spec.defect,
            batch_size=spec.batch_size,
        )
    candidate_set = extract_candidates(
        model, fail_log, kinds=spec.candidate_kinds, max_sites=spec.max_sites
    )
    rows = score_candidates(
        model,
        prepared.domain_map,
        setup,
        items,
        candidate_set,
        fail_log,
        backend=backend,
        shard_count=options.sim_shards,
        max_workers=options.sim_workers,
        batch_size=spec.batch_size,
        rerank_iterations=spec.rerank_iterations,
        scheduler=scheduler,
    )
    resolution = sum(1 for row in rows if row.rank == 1)
    defect = spec.defect or fail_log.defect
    rank_of_defect = None
    if defect is not None:
        for row in rows:
            if row.matches(defect):
                rank_of_defect = row.rank
                break
    metrics = active_metrics()
    if metrics is not None:
        metrics.inc("diagnose.runs")
        metrics.observe("diagnose.run_seconds", time.perf_counter() - started)
    active_tracer().record(
        "diagnose:run",
        start=started,
        design=model.name,
        scenario=spec.scenario,
        backend=backend,
        fails=fail_log.num_fails,
    )
    return DiagnosisResult(
        design=model.name,
        scenario=spec.scenario,
        backend=backend,
        pattern_count=len(items),
        fail_count=fail_log.num_fails,
        site_count=candidate_set.site_count,
        candidate_count=candidate_set.candidate_count,
        truncated_sites=candidate_set.truncated_sites,
        candidates=rows,
        defect=defect,
        resolution=resolution,
        rank_of_defect=rank_of_defect,
        wall_seconds=time.perf_counter() - started,
    )
