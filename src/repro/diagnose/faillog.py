"""ATE fail-log capture: run an injected device against a pattern set.

When a failing part hits the tester, the only data diagnosis gets back is
the *fail log*: which patterns miscompared, on which scan chain, at which
unload cycle.  :func:`capture_fail_log` produces exactly that artifact for a
defect injected with :class:`~repro.diagnose.defects.DefectInjector` — the
good machine and the injected device are simulated frame for frame through
the same :class:`~repro.fault_sim.transition.FrameSimulator` the fault
simulators use, so the log is bit-consistent with what candidate scoring
will later predict.

A :class:`FailLog` is plain data: JSON-round-trippable, and serializable
to/from the same STIL-flavoured text family as
:func:`repro.patterns.ate.export_stil` (``to_text`` / ``parse_fail_log``),
so logs can be archived next to exported pattern sets and replayed later.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.atpg.config import TestSetup
from repro.diagnose.defects import DefectInjector, DefectSpec
from repro.dft.scan import ScanArchitecture
from repro.engine.scheduler import FaultSimScheduler
from repro.fault_sim.transition import FrameSimulator
from repro.patterns.pattern import PatternSet, TestPattern
from repro.simulation.parallel_sim import mask_to_indices, unpack_value

#: Chain label fail bits on primary outputs carry (POs have no scan chain).
PO_CHAIN = "po"


@dataclass(frozen=True, order=True)
class FailBit:
    """One miscomparing bit of the tester comparator.

    Attributes:
        pattern: Index of the failing pattern in the applied set.
        chain: Scan chain name, or :data:`PO_CHAIN` for a primary output.
        cycle: Unload cycle at which the bit appears (0 == first bit shifted
            out); 0 for primary outputs, which are strobed, not shifted.
        signal: Scan cell instance name, or the primary output net.
        expected: Good-machine value ("0"/"1").
        observed: Value the injected device produced ("0"/"1").
    """

    pattern: int
    chain: str
    cycle: int
    signal: str
    expected: str
    observed: str

    def to_dict(self) -> dict[str, object]:
        return {
            "pattern": self.pattern,
            "chain": self.chain,
            "cycle": self.cycle,
            "signal": self.signal,
            "expected": self.expected,
            "observed": self.observed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FailBit":
        return cls(**dict(data))  # type: ignore[arg-type]


@dataclass
class FailLog:
    """Per-pattern, per-chain, per-cycle failing bits of one tester run."""

    design: str
    pattern_count: int
    fails: list[FailBit] = field(default_factory=list)
    #: Every injected defect (empty for real silicon).  Multi-defect captures
    #: list one spec per defect present in the device.
    defects: list[DefectSpec] = field(default_factory=list)

    def __init__(
        self,
        design: str,
        pattern_count: int,
        fails: "list[FailBit] | None" = None,
        defect: DefectSpec | None = None,
        defects: "Sequence[DefectSpec] | None" = None,
    ) -> None:
        self.design = design
        self.pattern_count = pattern_count
        self.fails = list(fails) if fails is not None else []
        if defects:
            self.defects = list(defects)
        elif defect is not None:
            self.defects = [defect]
        else:
            self.defects = []

    @property
    def defect(self) -> DefectSpec | None:
        """Provenance for injected-defect experiments (None for real silicon).

        With several injected defects this is the first of ``defects``; both
        spellings stay assignable for single-defect callers.
        """
        return self.defects[0] if self.defects else None

    @defect.setter
    def defect(self, value: DefectSpec | None) -> None:
        self.defects = [] if value is None else [value]

    # ----------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.fails)

    def __iter__(self):
        return iter(self.fails)

    @property
    def num_fails(self) -> int:
        return len(self.fails)

    def failing_patterns(self) -> list[int]:
        """Indices of patterns with at least one miscompare, ascending."""
        return sorted({bit.pattern for bit in self.fails})

    def fails_of(self, pattern: int) -> list[FailBit]:
        return [bit for bit in self.fails if bit.pattern == pattern]

    def observed_bits(self) -> set[tuple[int, str]]:
        """The ``(pattern, signal)`` syndrome set diagnosis matches against."""
        return {(bit.pattern, bit.signal) for bit in self.fails}

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict[str, object]:
        return {
            "design": self.design,
            "pattern_count": self.pattern_count,
            "fails": [bit.to_dict() for bit in self.fails],
            "defect": self.defect.to_dict() if self.defect is not None else None,
            "defects": [spec.to_dict() for spec in self.defects],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FailLog":
        payload = dict(data)
        payload["fails"] = [FailBit.from_dict(item) for item in payload.get("fails", [])]
        defect = payload.get("defect")
        if isinstance(defect, Mapping):
            payload["defect"] = DefectSpec.from_dict(defect)
        payload["defects"] = [
            DefectSpec.from_dict(item) if isinstance(item, Mapping) else item
            for item in payload.get("defects", [])
        ]
        return cls(**payload)  # type: ignore[arg-type]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FailLog":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------- text format
    def to_text(self) -> str:
        """Serialize to the STIL-flavoured fail-log text format.

        Same dialect family as :func:`repro.patterns.ate.export_stil`; the
        inverse is :func:`parse_fail_log`.
        """
        lines: list[str] = []
        lines.append(
            f'FailLog 1.0; // written by repro.diagnose.faillog for "{self.design}"'
        )
        lines.append(
            f"Header {{ Design {self.design}; Patterns {self.pattern_count}; "
            f"Fails {self.num_fails}; }}"
        )
        for spec in self.defects:
            pin = "-" if spec.pin is None else str(spec.pin)
            value = "-" if spec.value is None else str(spec.value)
            polarity = spec.polarity or "-"
            lines.append(
                f"Defect {{ Kind {spec.kind}; Net {spec.net}; Pin {pin}; "
                f"Value {value}; Polarity {polarity}; }}"
            )
        for pattern in self.failing_patterns():
            lines.append(f"Pattern p{pattern} {{")
            for bit in self.fails_of(pattern):
                lines.append(
                    f"  Fail {bit.chain} cycle {bit.cycle} signal {bit.signal} "
                    f"expect {bit.expected} got {bit.observed};"
                )
            lines.append("}")
        return "\n".join(lines) + "\n"


_HEADER_RE = re.compile(
    r"Header \{ Design (?P<design>\S+); Patterns (?P<patterns>\d+); Fails (?P<fails>\d+); \}"
)
_DEFECT_RE = re.compile(
    r"Defect \{ Kind (?P<kind>\S+); Net (?P<net>\S+); Pin (?P<pin>\S+); "
    r"Value (?P<value>\S+); Polarity (?P<polarity>\S+); \}"
)
_PATTERN_RE = re.compile(r"Pattern p(?P<pattern>\d+) \{")
_FAIL_RE = re.compile(
    r"Fail (?P<chain>\S+) cycle (?P<cycle>\d+) signal (?P<signal>\S+) "
    r"expect (?P<expected>[01]) got (?P<observed>[01]);"
)


def parse_fail_log(text: str) -> FailLog:
    """Parse the STIL-flavoured fail-log text back into a :class:`FailLog`.

    Inverse of :meth:`FailLog.to_text`: ``parse_fail_log(log.to_text()) ==
    log`` for any captured log.
    """
    design = ""
    pattern_count = 0
    defects: list[DefectSpec] = []
    fails: list[FailBit] = []
    current_pattern: int | None = None
    declared_fails: int | None = None
    for raw in text.splitlines():
        line = raw.strip()
        match = _HEADER_RE.match(line)
        if match:
            design = match["design"]
            pattern_count = int(match["patterns"])
            declared_fails = int(match["fails"])
            continue
        match = _DEFECT_RE.match(line)
        if match:
            defects.append(
                DefectSpec(
                    kind=match["kind"],
                    net=match["net"],
                    pin=None if match["pin"] == "-" else int(match["pin"]),
                    value=None if match["value"] == "-" else int(match["value"]),
                    polarity=None if match["polarity"] == "-" else match["polarity"],
                )
            )
            continue
        match = _PATTERN_RE.match(line)
        if match:
            current_pattern = int(match["pattern"])
            continue
        match = _FAIL_RE.match(line)
        if match:
            if current_pattern is None:
                raise ValueError(f"fail bit outside a Pattern block: {line!r}")
            fails.append(
                FailBit(
                    pattern=current_pattern,
                    chain=match["chain"],
                    cycle=int(match["cycle"]),
                    signal=match["signal"],
                    expected=match["expected"],
                    observed=match["observed"],
                )
            )
    if not design:
        raise ValueError("not a fail log: missing Header block")
    if declared_fails is not None and declared_fails != len(fails):
        raise ValueError(
            f"corrupt fail log: header declares {declared_fails} fails, "
            f"found {len(fails)}"
        )
    return FailLog(
        design=design, pattern_count=pattern_count, fails=fails, defects=defects
    )


# --------------------------------------------------------------------------
# Tester-side capture
# --------------------------------------------------------------------------
def _unload_position(scan: ScanArchitecture) -> dict[str, tuple[str, int]]:
    """Map every scan cell to its (chain, unload-cycle) tester coordinates.

    The first bit to appear at a chain's scan-out is the content of its
    *last* cell (see :meth:`~repro.dft.scan.ScanChain.unload_values`).
    """
    position: dict[str, tuple[str, int]] = {}
    for chain in scan.chains:
        for index, cell in enumerate(chain.cells):
            position[cell] = (chain.name, chain.length - 1 - index)
    return position


def capture_fail_log(
    model,
    domain_map,
    scan: ScanArchitecture,
    setup: TestSetup,
    patterns: "PatternSet | Sequence[TestPattern]",
    defect: "DefectSpec | Sequence[DefectSpec]",
    batch_size: int = 256,
    design_name: str | None = None,
) -> FailLog:
    """Run the injected device against a pattern set and log its miscompares.

    The good machine and the injected device share the frame simulation of
    :class:`~repro.fault_sim.transition.FrameSimulator` (bit-parallel, one
    batch per capture procedure), so every emitted fail bit corresponds to a
    known-value difference an ATE comparator would flag — per pattern, per
    chain, per unload cycle.

    ``defect`` may be a sequence of specs: every defect is injected into the
    same device in one pass and the log records their unioned miscompares
    (the multi-defect die of volume diagnosis).
    """
    items = list(patterns)
    injector = DefectInjector(model, defect)
    scheduler = FaultSimScheduler(model, backend="compiled")
    frames_sim = FrameSimulator(model, domain_map, setup, scheduler)
    position = _unload_position(scan)
    po_nets_of_node: dict[int, list[str]] = {}
    for net, idx in model.po_nodes:
        po_nets_of_node.setdefault(idx, []).append(net)
    element_by_name = {e.name: e for e in model.state_elements}

    fails: list[FailBit] = []
    cells_of_node: dict[int, list[str]] = {}
    current_procedure: str | None = None
    for procedure, observation, chunk, batch, launch, final in frames_sim.iter_batches(
        items, batch_size
    ):
        if procedure.name != current_procedure:
            current_procedure = procedure.name
            cells_of_node = {}
            for name in frames_sim.observed_scan_flops(procedure):
                node = element_by_name[name].d_node
                if node is not None:
                    cells_of_node.setdefault(node, []).append(name)
        masks = injector.syndrome(
            final, observation, launch=launch, procedure=procedure
        )
        for obs, mask in zip(observation, masks):
            if not mask:
                continue
            for local in mask_to_indices(mask):
                pattern_index = chunk[local]
                expected = unpack_value(final, obs, local)
                assert expected.is_known, "detection requires a known good value"
                exp, got = str(expected), "1" if str(expected) == "0" else "0"
                for cell in cells_of_node.get(obs, ()):
                    chain, cycle = position[cell]
                    fails.append(
                        FailBit(
                            pattern=pattern_index,
                            chain=chain,
                            cycle=cycle,
                            signal=cell,
                            expected=exp,
                            observed=got,
                        )
                    )
                if batch[local].observe_pos:
                    for net in po_nets_of_node.get(obs, ()):
                        fails.append(
                            FailBit(
                                pattern=pattern_index,
                                chain=PO_CHAIN,
                                cycle=0,
                                signal=net,
                                expected=exp,
                                observed=got,
                            )
                        )
    fails.sort()
    return FailLog(
        design=design_name or model.name,
        pattern_count=len(items),
        fails=fails,
        defects=list(injector.defects),
    )
