"""Defect specifications and netlist-preserving defect injection.

A :class:`DefectSpec` is the diagnosis-side analogue of the declarative
:class:`~repro.api.scenario.ScenarioSpec` / :class:`~repro.api.design.DesignSpec`
pair: a frozen, JSON-round-trippable description of one physical defect
hypothesis, located by *net name* (not node index) so a spec survives design
rebuilds and travels between processes and sessions.  Three defect families
are modelled, matching the fault universes of the ATPG flow:

* ``stuck-at`` — the terminal is permanently 0 or 1;
* ``transition`` — a gross gate-delay defect: slow-to-rise or slow-to-fall,
  visible to every at-speed launch/capture pair;
* ``inter-domain`` — a delay defect on a cross-domain path that only
  manifests when launch and capture happen in *different* clock domains (the
  defect class the enhanced CPF's inter-domain procedures exist to catch).

A :class:`DefectInjector` evaluates the *injected device* — the machine with
the defect present — against good-machine planes.  Nothing is mutated: the
injection happens in the compiled kernels' versioned scratch planes
(:mod:`repro.engine.compile`), so the same :class:`~repro.simulation.model.CircuitModel`
keeps serving fault-free ATPG, fault simulation and diagnosis concurrently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.clocking.named_capture import NamedCaptureProcedure
from repro.engine.compile import CompiledCircuit, compile_circuit
from repro.faults.models import (
    FaultSite,
    StuckAtFault,
    TransitionFault,
    TransitionKind,
)
from repro.simulation.model import CircuitModel
from repro.simulation.parallel_sim import PackedPatterns

#: Recognised defect families.
DEFECT_KINDS = ("stuck-at", "transition", "inter-domain")

#: Transition polarities a delay defect may carry.
POLARITIES = ("slow-to-rise", "slow-to-fall")

_KIND_OF_POLARITY = {
    "slow-to-rise": TransitionKind.SLOW_TO_RISE,
    "slow-to-fall": TransitionKind.SLOW_TO_FALL,
}
_POLARITY_OF_KIND = {v: k for k, v in _KIND_OF_POLARITY.items()}


@dataclass(frozen=True)
class DefectSpec:
    """One declarative, injectable defect hypothesis.

    Attributes:
        kind: One of :data:`DEFECT_KINDS`.
        net: Name of the net whose driving node owns the defective terminal.
        pin: ``None`` for the node's output terminal, otherwise the input pin
            index on that (gate) node.
        value: Stuck value (0/1) — ``stuck-at`` defects only.
        polarity: One of :data:`POLARITIES` — delay defects only.
    """

    kind: str
    net: str
    pin: int | None = None
    value: int | None = None
    polarity: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in DEFECT_KINDS:
            raise ValueError(
                f"unknown defect kind {self.kind!r} (expected one of {DEFECT_KINDS})"
            )
        if not self.net:
            raise ValueError("a defect needs a non-empty net name")
        if self.kind == "stuck-at":
            if self.value not in (0, 1):
                raise ValueError("a stuck-at defect needs value 0 or 1")
            if self.polarity is not None:
                raise ValueError("a stuck-at defect carries no polarity")
        else:
            if self.polarity not in POLARITIES:
                raise ValueError(
                    f"a {self.kind} defect needs a polarity "
                    f"(one of {POLARITIES})"
                )
            if self.value is not None:
                raise ValueError(f"a {self.kind} defect carries no stuck value")

    # ------------------------------------------------------------------ labels
    def describe(self) -> str:
        terminal = self.net if self.pin is None else f"{self.net}.in{self.pin}"
        if self.kind == "stuck-at":
            return f"{terminal} stuck-at-{self.value}"
        return f"{terminal} {self.kind} {self.polarity}"

    @property
    def is_delay(self) -> bool:
        return self.kind != "stuck-at"

    def with_overrides(self, **changes: object) -> "DefectSpec":
        """A copy of the spec with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------ model binding
    def site(self, model: CircuitModel) -> FaultSite:
        """Resolve the defective terminal against a circuit model."""
        try:
            node = model.node_of_net[self.net]
        except KeyError:
            raise KeyError(
                f"defect net {self.net!r} does not exist in design {model.name!r}"
            ) from None
        if self.pin is not None:
            fanin = model.nodes[node].fanin
            if not 0 <= self.pin < len(fanin):
                raise ValueError(
                    f"defect pin {self.pin} out of range for {self.net!r} "
                    f"({len(fanin)} input pins)"
                )
        return FaultSite(node=node, pin=self.pin)

    def as_fault(self, model: CircuitModel) -> StuckAtFault | TransitionFault:
        """The classical fault the injected device behaves as.

        Inter-domain defects reduce to a transition fault; their "only on
        inter-domain procedures" activation is applied by the caller
        (:class:`DefectInjector` / the diagnosis scorer), not by the fault.
        """
        site = self.site(model)
        if self.kind == "stuck-at":
            assert self.value is not None
            return StuckAtFault(site=site, value=self.value)
        assert self.polarity is not None
        return TransitionFault(site=site, kind=_KIND_OF_POLARITY[self.polarity])

    @classmethod
    def from_fault(
        cls,
        model: CircuitModel,
        fault: StuckAtFault | TransitionFault,
        *,
        inter_domain: bool = False,
    ) -> "DefectSpec":
        """Build the spec describing a classical fault (site -> net name).

        ``inter_domain=True`` lifts a transition fault into the
        inter-domain-only defect family.
        """
        net = model.nodes[fault.site.node].net
        if isinstance(fault, StuckAtFault):
            if inter_domain:
                raise ValueError("an inter-domain defect must be a delay defect")
            return cls(kind="stuck-at", net=net, pin=fault.site.pin, value=fault.value)
        kind = "inter-domain" if inter_domain else "transition"
        return cls(
            kind=kind,
            net=net,
            pin=fault.site.pin,
            polarity=_POLARITY_OF_KIND[fault.kind],
        )

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "net": self.net,
            "pin": self.pin,
            "value": self.value,
            "polarity": self.polarity,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DefectSpec":
        return cls(**dict(data))  # type: ignore[arg-type]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DefectSpec":
        return cls.from_dict(json.loads(text))


def _coerce_defects(
    defect: "DefectSpec | Sequence[DefectSpec]",
) -> tuple[DefectSpec, ...]:
    """Normalise the single-defect and multi-defect spellings to a tuple."""
    if isinstance(defect, DefectSpec):
        return (defect,)
    defects = tuple(defect)
    if not defects:
        raise ValueError("a defect injector needs at least one DefectSpec")
    for spec in defects:
        if not isinstance(spec, DefectSpec):
            raise TypeError(f"expected DefectSpec, got {type(spec).__name__}")
    return defects


class DefectInjector:
    """Evaluates the defect-injected device against good-machine planes.

    The netlist and circuit model are never mutated: the injector resolves
    each defect to its classical fault once and reuses the compiled kernels'
    scratch-plane propagation (:class:`~repro.engine.compile.CompiledCircuit`)
    for every batch, so injection costs one integer version bump per fault
    per call.

    A *list* of specs injects every defect into the same device in one
    capture pass (the multi-defect die volume diagnosis faces): the device's
    miscompares are the union of each defect's syndromes, with inter-domain
    gating applied per defect.  ``.defect`` / ``.fault`` keep pointing at the
    first spec for single-defect callers.
    """

    def __init__(
        self, model: CircuitModel, defect: "DefectSpec | Sequence[DefectSpec]"
    ) -> None:
        self.model = model
        self.defects = _coerce_defects(defect)
        self.defect = self.defects[0]
        self.faults = tuple(spec.as_fault(model) for spec in self.defects)
        self.fault = self.faults[0]
        self._compiled: CompiledCircuit = compile_circuit(model)

    def active_for(self, procedure: NamedCaptureProcedure) -> bool:
        """Does any injected defect manifest under this capture procedure?

        Inter-domain delay defects stay silent unless launch and capture
        pulse different domains; the other families are always active.
        """
        return any(
            spec.kind != "inter-domain" or procedure.is_inter_domain
            for spec in self.defects
        )

    def syndrome(
        self,
        final: PackedPatterns,
        observation: list[int],
        launch: PackedPatterns | None = None,
        procedure: NamedCaptureProcedure | None = None,
    ) -> list[int]:
        """Per-observation-node miscompare masks of the injected device.

        Bit *p* of entry *i* is set when pattern *p* of the batch observes a
        known-value difference between the injected device and the good
        machine at ``observation[i]`` — exactly the bits an ATE comparator
        flags while unloading.  With several defects injected the masks are
        the OR of each defect's syndromes (independent-defect superposition),
        each defect gated by its own procedure activation.
        """
        merged = [0] * len(observation)
        for spec, fault in zip(self.defects, self.faults):
            if (
                procedure is not None
                and spec.kind == "inter-domain"
                and not procedure.is_inter_domain
            ):
                continue
            if isinstance(fault, TransitionFault):
                if launch is None:
                    raise ValueError("delay-defect syndromes need launch-frame planes")
                masks = self._compiled.syndrome_transition(
                    launch, final, fault, observation
                )
            else:
                masks = self._compiled.syndrome_stuck_at(final, fault, observation)
            for index, mask in enumerate(masks):
                merged[index] |= mask
        return merged
