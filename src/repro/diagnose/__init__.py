"""repro.diagnose — defect injection, fail-log capture and fault diagnosis.

Closes the production loop the at-speed test flow opens: patterns run on the
tester, failing devices produce fail logs, and diagnosis traces those logs
back to ranked candidate defects.  Four pieces:

* :mod:`repro.diagnose.defects` — declarative, JSON-round-trippable
  :class:`DefectSpec` (stuck-at, transition, inter-domain delay) plus the
  :class:`DefectInjector` that perturbs the compiled circuit kernels without
  mutating the netlist;
* :mod:`repro.diagnose.faillog` — tester-side capture
  (:func:`capture_fail_log`) emitting an ATE-style :class:`FailLog`
  (per-pattern / per-chain / per-cycle failing bits, round-trippable to the
  STIL-flavoured text format);
* :mod:`repro.diagnose.candidates` — cone-intersection candidate extraction
  over the engine's cached fanout cones;
* :mod:`repro.diagnose.diagnose` — per-candidate fault simulation scored by
  syndrome match, sharded over the engine's serial/compiled/threads/processes
  backends, with iterative re-ranking of tied candidates.

API integration lives in :meth:`repro.api.session.TestSession.diagnose` and
:meth:`repro.api.campaign.Campaign.diagnose`.
"""

from repro.diagnose.candidates import (
    Candidate,
    CandidateSet,
    candidate_nodes,
    extract_candidates,
    failing_observation_nodes,
    observed_fail_pairs,
)
from repro.diagnose.defects import (
    DEFECT_KINDS,
    POLARITIES,
    DefectInjector,
    DefectSpec,
)
from repro.diagnose.diagnose import (
    DiagnosisCell,
    DiagnosisReport,
    DiagnosisResult,
    DiagnosisSpec,
    ScoredCandidate,
    SyndromeEvidence,
    run_diagnosis,
    score_candidates,
    simulate_candidate_syndromes,
)
from repro.diagnose.faillog import (
    PO_CHAIN,
    FailBit,
    FailLog,
    capture_fail_log,
    parse_fail_log,
)

__all__ = [
    "DEFECT_KINDS",
    "PO_CHAIN",
    "POLARITIES",
    "Candidate",
    "CandidateSet",
    "DefectInjector",
    "DefectSpec",
    "DiagnosisCell",
    "DiagnosisReport",
    "DiagnosisResult",
    "DiagnosisSpec",
    "FailBit",
    "FailLog",
    "ScoredCandidate",
    "SyndromeEvidence",
    "candidate_nodes",
    "capture_fail_log",
    "extract_candidates",
    "failing_observation_nodes",
    "observed_fail_pairs",
    "parse_fail_log",
    "run_diagnosis",
    "score_candidates",
    "simulate_candidate_syndromes",
]
