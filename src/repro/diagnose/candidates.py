"""Cone-intersection candidate extraction from tester fail logs.

A defect that explains a fail log must be able to reach *every* failing
observation point structurally.  This module computes that classical
back-cone intersection over the fan-in cones of the failing observations;
:meth:`repro.engine.compile.CompiledCircuit.cone_indices` exposes the
equivalent fanout-side reachability query (the test suite cross-checks the
two directions against each other).

Surviving nodes are expanded into gate-terminal fault *candidates* — one
hypothesis per site, defect kind and value/polarity — which
:mod:`repro.diagnose.diagnose` then scores by fault simulation against the
observed syndrome, propagating through the engine's cached fanout cones
(:meth:`~repro.engine.compile.CompiledCircuit.cone`, computed once per site
and shared with ATPG fault simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnose.defects import DEFECT_KINDS, DefectSpec
from repro.diagnose.faillog import PO_CHAIN, FailLog
from repro.faults.models import (
    FaultSite,
    StuckAtFault,
    TransitionFault,
    TransitionKind,
)
from repro.simulation.model import CircuitModel, NodeKind


@dataclass(frozen=True)
class Candidate:
    """One scoreable defect hypothesis.

    ``fault`` is the classical fault whose syndrome the engine simulates;
    ``kind`` distinguishes the inter-domain hypothesis, whose predicted
    syndrome is gated to inter-domain capture procedures by the scorer.
    """

    kind: str
    fault: StuckAtFault | TransitionFault

    @property
    def site(self) -> FaultSite:
        return self.fault.site

    def spec(self, model: CircuitModel) -> DefectSpec:
        """The declarative defect this candidate hypothesizes."""
        return DefectSpec.from_fault(
            model, self.fault, inter_domain=self.kind == "inter-domain"
        )

    def describe(self, model: CircuitModel) -> str:
        return self.spec(model).describe()


@dataclass
class CandidateSet:
    """The candidate universe extracted for one fail log."""

    sites: list[FaultSite] = field(default_factory=list)
    candidates: list[Candidate] = field(default_factory=list)
    #: Number of structurally possible sites dropped by ``max_sites``.
    truncated_sites: int = 0
    #: Failing observation nodes the cones were intersected over.
    failing_observation: list[int] = field(default_factory=list)

    @property
    def site_count(self) -> int:
        return len(self.sites)

    @property
    def candidate_count(self) -> int:
        return len(self.candidates)


def observed_fail_pairs(model: CircuitModel, fail_log: FailLog) -> set[tuple[int, int]]:
    """A fail log as ``(pattern index, observation node)`` syndrome bits.

    Scan-cell fails resolve to the cell's D-driver node (what the final
    capture pulse latched); primary-output fails resolve to the PO's driver.
    The single signal-to-node resolver shared by candidate extraction and
    syndrome scoring.
    """
    po_node_of_net = dict(model.po_nodes)
    element_by_name = {e.name: e for e in model.state_elements}
    pairs: set[tuple[int, int]] = set()
    for bit in fail_log.fails:
        if bit.chain == PO_CHAIN:
            try:
                pairs.add((bit.pattern, po_node_of_net[bit.signal]))
            except KeyError:
                raise KeyError(
                    f"fail log names unknown primary output {bit.signal!r}"
                ) from None
        else:
            try:
                element = element_by_name[bit.signal]
            except KeyError:
                raise KeyError(
                    f"fail log names unknown scan cell {bit.signal!r}"
                ) from None
            if element.d_node is None:
                raise ValueError(
                    f"scan cell {bit.signal!r} has no D driver to observe"
                )
            pairs.add((bit.pattern, element.d_node))
    return pairs


def failing_observation_nodes(model: CircuitModel, fail_log: FailLog) -> list[int]:
    """Map fail-log signals back to observation node indices (ascending)."""
    return sorted({node for _, node in observed_fail_pairs(model, fail_log)})


def candidate_nodes(
    model: CircuitModel, failing_obs: list[int], mode: str = "intersection"
) -> list[int]:
    """Nodes structurally able to reach the failing observation points.

    ``mode="intersection"`` (the classical single-defect extraction)
    intersects the fan-in cones of the failing observations: a lone defect
    must reach *every* failing bit.  ``mode="union"`` keeps any node
    reaching at least one failing observation — the multi-defect universe,
    where each defect only has to explain its own share of the log.

    One traversal per observation, exact by construction
    (``CircuitModel.fanout`` is the transpose of ``fanin``, so fan-in
    membership *is* reachability).  The equivalent fanout-side queries
    (:meth:`~repro.engine.compile.CompiledCircuit.cone_indices`) serve as
    the independent cross-check in the test suite.
    """
    if mode not in ("intersection", "union"):
        raise ValueError(f"unknown extraction mode {mode!r}")
    if not failing_obs:
        return []
    nodes: set[int] | None = None
    for obs in failing_obs:
        cone = set(model.transitive_fanin(obs))
        cone.add(obs)
        if nodes is None:
            nodes = cone
        elif mode == "union":
            nodes |= cone
        else:
            nodes &= cone
            if not nodes:
                return []
    assert nodes is not None
    keep = (NodeKind.PI, NodeKind.PPI, NodeKind.RAM_OUT, NodeKind.GATE)
    return sorted(node for node in nodes if model.nodes[node].kind in keep)


def extract_candidates(
    model: CircuitModel,
    fail_log: FailLog,
    kinds: tuple[str, ...] = DEFECT_KINDS,
    max_sites: int | None = None,
    mode: str = "intersection",
) -> CandidateSet:
    """Extract the scoreable candidate universe for one fail log.

    Args:
        model: The failing design's circuit model.
        fail_log: The tester's miscompare log.
        kinds: Defect families to hypothesize (subset of
            :data:`~repro.diagnose.defects.DEFECT_KINDS`); each site yields
            two candidates per family (stuck-at-0/1 or both polarities).
        max_sites: Optional cap on the number of candidate sites (lowest
            node indices kept); the number dropped is recorded on the result
            so callers never mistake a truncated search for an exhaustive one.
        mode: Cone combination rule (see :func:`candidate_nodes`) —
            ``"intersection"`` for the single-defect universe, ``"union"``
            for the multi-defect universe BP diagnosis selects sets from.
    """
    for kind in kinds:
        if kind not in DEFECT_KINDS:
            raise ValueError(
                f"unknown defect kind {kind!r} (expected a subset of {DEFECT_KINDS})"
            )
    failing_obs = failing_observation_nodes(model, fail_log)
    nodes = candidate_nodes(model, failing_obs, mode=mode)
    sites: list[FaultSite] = []
    for node in nodes:
        sites.append(FaultSite(node=node, pin=None))
        if model.nodes[node].kind is NodeKind.GATE:
            for pin in range(len(model.nodes[node].fanin)):
                sites.append(FaultSite(node=node, pin=pin))
    truncated = 0
    if max_sites is not None and len(sites) > max_sites:
        truncated = len(sites) - max_sites
        sites = sites[:max_sites]
    candidates: list[Candidate] = []
    for site in sites:
        if "stuck-at" in kinds:
            candidates.append(Candidate("stuck-at", StuckAtFault(site=site, value=0)))
            candidates.append(Candidate("stuck-at", StuckAtFault(site=site, value=1)))
        for kind in ("transition", "inter-domain"):
            if kind in kinds:
                candidates.append(
                    Candidate(
                        kind, TransitionFault(site=site, kind=TransitionKind.SLOW_TO_RISE)
                    )
                )
                candidates.append(
                    Candidate(
                        kind, TransitionFault(site=site, kind=TransitionKind.SLOW_TO_FALL)
                    )
                )
    return CandidateSet(
        sites=sites,
        candidates=candidates,
        truncated_sites=truncated,
        failing_observation=failing_obs,
    )
