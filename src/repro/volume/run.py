"""Volume mode — a whole fail-log store diagnosed as one runtime plan.

This is the pipeline layer of :mod:`repro.volume`: it lowers a
:class:`~repro.volume.store.FailLogStore` (or any record stream) into a
single :class:`~repro.runtime.Plan` — one ``if_needed`` pattern-provider
job per (design, scenario) row, one ``"bp-diagnosis"`` job per stored log
— and assembles the streamed results into a :class:`BpDiagnosisReport`.

Three properties carry over from the campaign plane by construction:

* **every backend**: the plan runs on any
  :class:`~repro.runtime.Executor` backend (serial/threads/processes and
  serve's remote workers) with bit-identical reports;
* **resumable**: BP jobs are content-addressed by
  :func:`~repro.engine.cache.bp_diagnosis_key` (design x scenario x spec
  x BP knobs x *log fingerprint*), so a killed run resumes from a
  :class:`~repro.engine.cache.ResultCache` with zero re-runs and a fully
  cached store prunes every pattern provider;
* **serve-submittable**: :func:`submit_volume` ships the identical plan
  to a :mod:`repro.serve` server and :meth:`VolumeHandle.report` rebuilds
  the report from the event journal through the same merge path a local
  run uses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping

from repro.diagnose.defects import DEFECT_KINDS, DefectSpec
from repro.diagnose.diagnose import DiagnosisSpec
from repro.engine.cache import (
    bp_diagnosis_key,
    campaign_cell_key,
    design_fingerprint,
    design_spec_fingerprint,
    fail_log_fingerprint,
)
from repro.engine.scheduler import BACKENDS
from repro.runtime import (
    Event,
    Executor,
    Job,
    Plan,
    PlanCancelled,
    register_job_kind,
)
from repro.volume.bp import BpOptions
from repro.volume.graph import BpDiagnosisResult, run_bp_diagnosis
from repro.volume.store import FailLogRecord, FailLogStore


# --------------------------------------------------------------------------
# The declarative volume configuration
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class VolumeSpec:
    """One declarative volume-diagnosis configuration (JSON-round-trippable).

    The volume analogue of :class:`~repro.diagnose.DiagnosisSpec`: the same
    candidate-extraction and engine knobs (lowered per log via
    :meth:`diagnosis_spec`), plus the BP inference knobs applied to every
    log of the store.  ``scenario`` names the pattern set the devices ran
    on the tester; records carrying their own scenario label override it
    per log.
    """

    scenario: str
    candidate_kinds: tuple[str, ...] = DEFECT_KINDS
    max_sites: int | None = None
    batch_size: int = 256
    backend: str | None = None
    bp: BpOptions = field(default_factory=BpOptions)

    def __post_init__(self) -> None:
        if not self.scenario:
            raise ValueError("a volume diagnosis needs a scenario name")
        if isinstance(self.candidate_kinds, list):
            object.__setattr__(self, "candidate_kinds", tuple(self.candidate_kinds))
        for kind in self.candidate_kinds:
            if kind not in DEFECT_KINDS:
                raise ValueError(
                    f"unknown candidate kind {kind!r} "
                    f"(expected a subset of {DEFECT_KINDS})"
                )
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"unknown engine backend {self.backend!r} "
                f"(expected one of {BACKENDS})"
            )
        if isinstance(self.bp, Mapping):
            object.__setattr__(self, "bp", BpOptions.from_dict(self.bp))

    def with_overrides(self, **changes: object) -> "VolumeSpec":
        return replace(self, **changes)  # type: ignore[arg-type]

    def diagnosis_spec(self, scenario: str | None = None) -> DiagnosisSpec:
        """Lower to the per-log diagnosis configuration (no defect — the
        log carries the evidence)."""
        return DiagnosisSpec(
            scenario=scenario or self.scenario,
            defect=None,
            candidate_kinds=self.candidate_kinds,
            max_sites=self.max_sites,
            batch_size=self.batch_size,
            backend=self.backend,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "candidate_kinds": list(self.candidate_kinds),
            "max_sites": self.max_sites,
            "batch_size": self.batch_size,
            "backend": self.backend,
            "bp": self.bp.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "VolumeSpec":
        payload = dict(data)
        payload["candidate_kinds"] = tuple(payload.get("candidate_kinds", DEFECT_KINDS))
        payload["bp"] = BpOptions.from_dict(payload.get("bp", {}))
        return cls(**payload)  # type: ignore[arg-type]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "VolumeSpec":
        return cls.from_dict(json.loads(text))


# --------------------------------------------------------------------------
# The job handler (module-level so process/remote workers re-import it)
# --------------------------------------------------------------------------
@register_job_kind("bp-diagnosis")
def run_bp_diagnosis_job(resources: dict, params: Mapping[str, object], deps: dict):
    """Diagnose one fail log with BP against a dependency-supplied pattern set.

    Shares every materialization seam with the ``"diagnosis"`` kind —
    designs, per-(design, scenario) constraint setups and scoring
    schedulers are memoised in the resources dict, so a thousand-log plan
    builds each exactly once per worker.  The log arrives by name through
    ``resources["fail_logs"]`` (picklable, ships to process workers);
    closed-loop experiments may pass ``params["defects"]`` instead.
    """
    from repro.api.session import (
        _diagnosis_job_scheduler,
        materialize_design,
        materialize_setup,
    )
    from repro.atpg.config import AtpgOptions

    prepared = materialize_design(resources, params["design"])
    options = resources.get("options") or AtpgOptions()
    scenario_spec = resources["scenarios"][params["scenario"]]
    spec = DiagnosisSpec.from_dict(params["spec"])
    bp = BpOptions.from_dict(params["bp"])
    run = deps[params["patterns"]]
    if run is None or run.patterns is None:
        raise ValueError(
            f"scenario {scenario_spec.name!r} produced no patterns to diagnose"
        )
    fail_log = None
    if params.get("log") is not None:
        fail_log = resources["fail_logs"][params["log"]]
    defects = None
    if params.get("defects"):
        defects = [DefectSpec.from_dict(item) for item in params["defects"]]
    setup = materialize_setup(
        resources, prepared, scenario_spec, params["design"], options
    )
    return run_bp_diagnosis(
        prepared,
        setup,
        run.patterns,
        spec,
        bp,
        fail_log=fail_log,
        defects=defects,
        options=options,
        scheduler=_diagnosis_job_scheduler(resources, prepared, spec, options),
    )


# --------------------------------------------------------------------------
# Plan compilation
# --------------------------------------------------------------------------
def _design_fp(design: object) -> str:
    """Any design resource entry's identity digest (spec or built).

    A spec-built :class:`~repro.core.flow.PreparedDesign` keys on its
    *declarative* spec fingerprint — the same identity a not-yet-built
    entry produces — so a resumed run whose designs were harvested in a
    previous execution still hits the same cache entries.
    """
    model = getattr(design, "model", None)
    if model is not None:
        spec = getattr(design, "spec", None)
        if spec is not None:
            return design_spec_fingerprint(spec)
        return design_fingerprint(model)
    return design_spec_fingerprint(design)


def volume_plan(
    records: "FailLogStore | Iterable[FailLogRecord]",
    designs: Mapping[str, object],
    scenarios: Mapping[str, object],
    spec: VolumeSpec,
    *,
    options: object = None,
    stages: "tuple | None" = None,
    name: str = "volume-diagnosis",
) -> Plan:
    """Compile a fail-log stream into one resumable runtime plan.

    Per (design, scenario) row touched by the records one ``if_needed``
    pattern-provider job (cache key shared with ordinary campaign cells,
    so pattern sets flow between scenario campaigns, diagnosis sweeps and
    volume runs); per record one ``"bp-diagnosis"`` job keyed on
    :func:`~repro.engine.cache.bp_diagnosis_key` *including the log's
    content fingerprint* — a fully cached store prunes every provider and
    re-runs nothing.

    Args:
        records: A :class:`~repro.volume.store.FailLogStore` or any
            iterable of :class:`~repro.volume.store.FailLogRecord`.
        designs: Design name -> built
            :class:`~repro.core.flow.PreparedDesign` or declarative
            :class:`~repro.api.design.DesignSpec` (the resource contract of
            :func:`~repro.api.session.materialize_design`).  Every record's
            ``design`` must resolve here.
        scenarios: Scenario name -> :class:`~repro.api.scenarios.ScenarioSpec`;
            must cover ``spec.scenario`` and every record-level label.
        spec: The volume configuration applied to every log.
        options: :class:`~repro.atpg.AtpgOptions` the pattern sets were
            generated under.
        stages: The session stage pipeline folded into cache keys
            (default: the standard pipeline).
    """
    if stages is None:
        from repro.api.session import DEFAULT_STAGES

        stages = tuple(DEFAULT_STAGES)
    record_list = list(records)
    if not record_list:
        raise ValueError("a volume plan needs at least one fail-log record")
    fingerprints = {name_: _design_fp(design) for name_, design in designs.items()}
    jobs: list[Job] = []
    providers: dict[tuple[str, str], Job] = {}
    fail_logs: dict[str, object] = {}
    seen: set[str] = set()
    for record in record_list:
        if record.name in seen:
            raise ValueError(f"duplicate fail-log record name {record.name!r}")
        seen.add(record.name)
        if record.design not in designs:
            raise ValueError(
                f"fail log {record.name!r} names unknown design "
                f"{record.design!r} (known: {sorted(designs)})"
            )
        scenario_name = record.scenario or spec.scenario
        scenario_spec = scenarios.get(scenario_name)
        if scenario_spec is None:
            raise ValueError(
                f"fail log {record.name!r} names unknown scenario "
                f"{scenario_name!r} (known: {sorted(scenarios)})"
            )
        row = (record.design, scenario_name)
        provider = providers.get(row)
        if provider is None:
            provider = Job(
                id=f"patterns:{record.design}:{scenario_name}",
                kind="scenario",
                params={"design": record.design, "scenario": scenario_name},
                cache_key=campaign_cell_key(
                    fingerprints[record.design], scenario_spec,
                    options, extra=stages,
                ),
                label=f"{record.design}::{scenario_name}",
                if_needed=True,
            )
            providers[row] = provider
            jobs.append(provider)
        diagnosis_spec = spec.diagnosis_spec(scenario_name)
        key = bp_diagnosis_key(
            fingerprints[record.design], scenario_spec, diagnosis_spec,
            spec.bp, options, extra=stages,
            log_fp=fail_log_fingerprint(record.log),
        )
        fail_logs[record.name] = record.log
        jobs.append(
            Job(
                id=f"bp:{record.name}",
                kind="bp-diagnosis",
                params={
                    "design": record.design,
                    "scenario": scenario_name,
                    "spec": diagnosis_spec.to_dict(),
                    "bp": spec.bp.to_dict(),
                    "patterns": provider.id,
                    "log": record.name,
                },
                deps=(provider.id,),
                cache_key=key,
                label=f"bp::{record.design}::{scenario_name}::{record.name}",
            )
        )
    return Plan(
        name=name,
        jobs=tuple(jobs),
        metadata={
            "designs": sorted({record.design for record in record_list}),
            "scenarios": sorted({row[1] for row in providers}),
            "logs": [record.name for record in record_list],
        },
        resources={
            "options": options,
            "stages": stages,
            "designs": dict(designs),
            "scenarios": dict(scenarios),
            "fail_logs": fail_logs,
        },
    )


# --------------------------------------------------------------------------
# Cells & report
# --------------------------------------------------------------------------
@dataclass
class BpDiagnosisCell:
    """One fail log's landed volume-diagnosis outcome (JSON-safe)."""

    design: str
    scenario: str
    log: str
    defects: list[str] = field(default_factory=list)
    rank_of_defect: "int | None" = None
    confidence: "float | None" = None
    recovered_all: bool = False
    selected: int = 0
    resolution: int = 0
    candidate_count: int = 0
    fail_count: int = 0
    converged: bool = False
    bp_iterations: int = 0
    ambiguous_pairs: int = 0
    unexplained: int = 0
    cache_hit: bool = False
    wall_seconds: float = 0.0

    @classmethod
    def from_result(
        cls, log_name: str, result: BpDiagnosisResult
    ) -> "BpDiagnosisCell":
        return cls(
            design=result.design,
            scenario=result.scenario,
            log=log_name,
            defects=[spec.describe() for spec in result.defects],
            rank_of_defect=result.rank_of_defect,
            confidence=result.confidence_of_defect,
            recovered_all=result.recovered_all_defects(),
            selected=len(result.selected_candidates()),
            resolution=result.resolution,
            candidate_count=result.candidate_count,
            fail_count=result.fail_count,
            converged=result.converged,
            bp_iterations=result.bp_iterations,
            ambiguous_pairs=len(result.ambiguous_pairs),
            unexplained=result.unexplained,
            cache_hit=result.cache_hit,
            wall_seconds=result.wall_seconds,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "design": self.design,
            "scenario": self.scenario,
            "log": self.log,
            "defects": list(self.defects),
            "rank_of_defect": self.rank_of_defect,
            "confidence": self.confidence,
            "recovered_all": self.recovered_all,
            "selected": self.selected,
            "resolution": self.resolution,
            "candidate_count": self.candidate_count,
            "fail_count": self.fail_count,
            "converged": self.converged,
            "bp_iterations": self.bp_iterations,
            "ambiguous_pairs": self.ambiguous_pairs,
            "unexplained": self.unexplained,
            "cache_hit": self.cache_hit,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BpDiagnosisCell":
        return cls(**dict(data))  # type: ignore[arg-type]

    def deterministic_dict(self) -> dict[str, object]:
        """The backend-independent projection (drops timing and cache
        provenance — what byte-identity across executions is asserted on)."""
        payload = self.to_dict()
        payload.pop("cache_hit")
        payload.pop("wall_seconds")
        return payload


@dataclass
class BpDiagnosisReport:
    """Streaming volume-diagnosis results over one fail-log store."""

    campaign: dict[str, object] = field(default_factory=dict)
    cells: list[BpDiagnosisCell] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def add_cell(self, cell: BpDiagnosisCell) -> BpDiagnosisCell:
        self.cells.append(cell)
        return cell

    def cell(self, log: str) -> BpDiagnosisCell:
        for cell in self.cells:
            if cell.log == log:
                return cell
        raise KeyError(f"no volume cell for fail log {log!r}")

    def rank_one_count(self) -> int:
        return sum(1 for cell in self.cells if cell.rank_of_defect == 1)

    def recovered_count(self) -> int:
        return sum(1 for cell in self.cells if cell.recovered_all)

    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cache_hit)

    @property
    def backend_fallbacks(self) -> list[dict[str, str]]:
        """Executor degradations — same contract as
        :attr:`~repro.diagnose.DiagnosisReport.backend_fallbacks`."""
        return list(self.campaign.get("backend_fallbacks") or [])

    @property
    def degraded(self) -> bool:
        """True when the run did not execute on the requested backend."""
        return bool(self.backend_fallbacks)

    def summary(self) -> str:
        lines = []
        for cell in self.cells:
            rank = "-" if cell.rank_of_defect is None else str(cell.rank_of_defect)
            conf = "-" if cell.confidence is None else f"{cell.confidence:.3f}"
            origin = "cache" if cell.cache_hit else "run"
            status = "conv" if cell.converged else "DIV"
            lines.append(
                f"{cell.design:<20} {cell.scenario:<12} {cell.log:<24} "
                f"rank={rank:<3} conf={conf:<6} sel={cell.selected:<3} "
                f"res={cell.resolution:<3} amb={cell.ambiguous_pairs:<3} "
                f"{status:<4} {origin:<5} {cell.wall_seconds:7.2f}s"
            )
        lines.append(
            f"recovered all defects: {self.recovered_count()}/{len(self.cells)} "
            f"(rank 1: {self.rank_one_count()}/{len(self.cells)})"
        )
        for fb in self.backend_fallbacks:
            lines.append(
                f"NOTE: backend fallback {fb.get('requested', '?')} -> "
                f"{fb.get('used', '?')}: {fb.get('reason', 'unknown reason')}"
            )
        return "\n".join(lines)

    def same_results(self, other: "BpDiagnosisReport") -> bool:
        """Deterministic-projection equality — the cross-backend (and
        local-vs-serve) byte-identity contract."""
        if len(self.cells) != len(other.cells):
            return False
        return all(
            mine.deterministic_dict() == theirs.deterministic_dict()
            for mine, theirs in zip(self.cells, other.cells)
        )

    def to_json(self, indent: int | None = 2) -> str:
        payload = {
            "campaign": self.campaign,
            "cells": [cell.to_dict() for cell in self.cells],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BpDiagnosisReport":
        payload = json.loads(text)
        return cls(
            campaign=dict(payload.get("campaign", {})),
            cells=[
                BpDiagnosisCell.from_dict(item)
                for item in payload.get("cells", [])
            ],
        )


# --------------------------------------------------------------------------
# Event-driven report assembly (shared by local runs and serve replay)
# --------------------------------------------------------------------------
def volume_report_builder(
    plan: Plan,
    *,
    metadata: "dict[str, object] | None" = None,
    on_cell: "Callable[[BpDiagnosisCell], None] | None" = None,
    on_event: "Callable[[Event], None] | None" = None,
) -> "tuple[BpDiagnosisReport, Callable[[Event], None], Callable[[], BpDiagnosisReport]]":
    """Fold a volume plan's event stream into its report.

    Returns ``(report, handle, finalize)``: feed every
    :class:`~repro.runtime.Event` — live from an executor or replayed from
    a serve journal — to ``handle``, then call ``finalize`` for the
    store-ordered report.  One code path means a remotely executed volume
    run's report is assembled exactly like a local one (a requeued serve
    job replays its journal from the start; ``finalize`` keeps the last
    merge per log).
    """
    report = BpDiagnosisReport(campaign=dict(metadata or {}))
    bp_jobs = {
        job.id: str(job.params["log"])
        for job in plan.jobs
        if job.kind == "bp-diagnosis"
    }
    landed: dict[str, BpDiagnosisCell] = {}

    def handle(event: Event) -> None:
        log_name = bp_jobs.get(event.job) if event.job is not None else None
        if log_name is not None and event.kind in ("job_finished", "job_skipped"):
            result = event.value
            if not isinstance(result, BpDiagnosisResult):
                # The event wire degrades unpicklable values to a repr
                # string and corrupt pickles to None; say so rather than
                # die on an attribute below.
                raise TypeError(
                    f"volume cell for log {log_name!r} did not survive the "
                    f"event wire: expected a BpDiagnosisResult, got "
                    f"{type(result).__name__} ({str(result)[:80]!r})"
                )
            if event.kind == "job_skipped":
                result.cache_hit = True
            cell = BpDiagnosisCell.from_result(log_name, result)
            landed[event.job] = report.add_cell(cell)
            if on_cell is not None:
                on_cell(cell)
        if on_event is not None:
            on_event(event)

    def finalize() -> BpDiagnosisReport:
        missing = [job_id for job_id in bp_jobs if job_id not in landed]
        if missing:
            raise PlanCancelled(
                f"volume diagnosis cancelled before {len(missing)} log(s) "
                f"completed (first: {bp_jobs[missing[0]]!r})"
            )
        # Store order, not completion order: pooled backends land cells as
        # they finish, and the report must be identical across backends.
        report.cells = [landed[job_id] for job_id in bp_jobs]
        return report

    return report, handle, finalize


def execute_volume_plan(
    plan: Plan,
    *,
    executor: "Executor | None" = None,
    cache: object = None,
    on_cell: "Callable[[BpDiagnosisCell], None] | None" = None,
    on_event: "Callable[[Event], None] | None" = None,
) -> BpDiagnosisReport:
    """Run one compiled volume plan locally and assemble its report."""
    executor = executor or Executor()
    metadata = {
        "designs": list(plan.metadata.get("designs", [])),
        "scenarios": list(plan.metadata.get("scenarios", [])),
        "logs": len(plan.metadata.get("logs", [])),
        "backend": executor.backend,
        "cached": executor.effective_cache(cache) is not None,
    }
    report, handle, finalize = volume_report_builder(
        plan, metadata=metadata, on_cell=on_cell, on_event=on_event
    )
    result = executor.execute(plan, cache=cache, on_event=handle)
    if result.fallbacks:
        report.campaign["backend_fallbacks"] = list(result.fallbacks)
    return finalize()


# --------------------------------------------------------------------------
# Serve submission
# --------------------------------------------------------------------------
@dataclass
class VolumeHandle:
    """A volume plan submitted to a serve server via :func:`submit_volume`.

    Holds the queue job id plus the compiled plan, which is what lets
    :meth:`report` rebuild the :class:`BpDiagnosisReport` client-side from
    the server's event journal — through the same merge path
    :func:`execute_volume_plan` uses, so the two reports are identical for
    identical inputs.
    """

    client: object
    job_id: int
    plan: Plan

    def status(self) -> dict[str, object]:
        """The job's queue-side status dict (state, attempts, summary...)."""
        return self.client.status(self.job_id)  # type: ignore[attr-defined]

    def cancel(self) -> str:
        """Ask the server to cancel; returns the state after the request."""
        return self.client.cancel(self.job_id)  # type: ignore[attr-defined]

    def report(
        self,
        *,
        timeout: "float | None" = None,
        on_cell: "Callable[[BpDiagnosisCell], None] | None" = None,
        on_event: "Callable[[Event], None] | None" = None,
    ) -> BpDiagnosisReport:
        """Wait for completion and assemble the volume report.

        Streams the server's event journal (so ``on_cell``/``on_event``
        see live progress exactly as with a local run) and finalizes the
        store-ordered report.  Raises
        :class:`~repro.runtime.PlanCancelled` if the job ended in any
        state but ``done``.
        """
        metadata = {
            "designs": list(self.plan.metadata.get("designs", [])),
            "scenarios": list(self.plan.metadata.get("scenarios", [])),
            "logs": len(self.plan.metadata.get("logs", [])),
            "backend": "serve",
            "cached": True,
        }
        report, handle, finalize = volume_report_builder(
            self.plan, metadata=metadata, on_cell=on_cell, on_event=on_event
        )
        final = self.client.wait(  # type: ignore[attr-defined]
            self.job_id, timeout=timeout, on_event=handle
        )
        if final["state"] != "done":
            detail = f": {final['error']}" if final.get("error") else ""
            raise PlanCancelled(
                f"serve job {self.job_id} ended {final['state']!r}{detail}"
            )
        return finalize()


def submit_volume(
    client,
    plan: Plan,
    *,
    tenant: str = "default",
    name: "str | None" = None,
    metadata: "Mapping[str, object] | None" = None,
) -> VolumeHandle:
    """Submit a compiled volume plan to a running serve server.

    The fire-and-forget counterpart of :func:`execute_volume_plan`: the
    identical plan ships to the server (declarative JSON plus pickled
    resource bindings — the fail logs ride along) and executes there,
    against the tenant's persistent result cache.  Works with the PR-8
    serve plane unchanged: a volume plan is just a plan.
    """
    job_id = client.submit(
        plan, tenant=tenant, name=name or plan.name, metadata=metadata
    )
    return VolumeHandle(client=client, job_id=job_id, plan=plan)
