"""repro.volume — loopy-BP multi-defect diagnosis at fail-log volume.

Four layers, bottom up:

* :mod:`repro.volume.bp` — the damped max-product BP kernel over weighted
  set cover (convexified schedule, LP-relaxation objective) plus the
  shared tie re-ranking kernel the classical ranking delegates to;
* :mod:`repro.volume.graph` — candidate x failing-bit factor graphs built
  from the engine's syndrome kernels, greedy LP-rounded cover selection,
  calibrated per-candidate confidences and the
  :class:`~repro.volume.graph.BpDiagnosisResult` front door
  (:func:`~repro.volume.graph.run_bp_diagnosis`);
* :mod:`repro.volume.store` / :mod:`repro.volume.run` — volume mode:
  persistent fail-log stores (JSONL/sqlite) compiled into one resumable,
  serve-submittable runtime :class:`~repro.runtime.Plan`
  (:func:`~repro.volume.run.volume_plan`) with per-log content-addressed
  caching;
* :mod:`repro.volume.adaptive` — adaptive diagnostic ATPG: distinguishing
  patterns for the candidate pairs BP cannot separate.
"""

from repro.volume.adaptive import (
    AdaptiveOutcome,
    adaptive_diagnose,
    generate_distinguishing_pattern,
)
from repro.volume.bp import BpOptions, BpOutcome, max_product_bp, rerank_tied_scores
from repro.volume.graph import (
    BpDiagnosisResult,
    BpScoredCandidate,
    CandidateFactorGraph,
    build_factor_graph,
    run_bp_diagnosis,
)
from repro.volume.run import (
    BpDiagnosisCell,
    BpDiagnosisReport,
    VolumeHandle,
    VolumeSpec,
    execute_volume_plan,
    submit_volume,
    volume_plan,
    volume_report_builder,
)
from repro.volume.store import FailLogRecord, FailLogStore

__all__ = [
    "AdaptiveOutcome",
    "BpDiagnosisCell",
    "BpDiagnosisReport",
    "BpDiagnosisResult",
    "BpOptions",
    "BpOutcome",
    "BpScoredCandidate",
    "CandidateFactorGraph",
    "FailLogRecord",
    "FailLogStore",
    "VolumeHandle",
    "VolumeSpec",
    "adaptive_diagnose",
    "build_factor_graph",
    "execute_volume_plan",
    "generate_distinguishing_pattern",
    "max_product_bp",
    "rerank_tied_scores",
    "run_bp_diagnosis",
    "submit_volume",
    "volume_plan",
    "volume_report_builder",
]
