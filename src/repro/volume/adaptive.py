"""Adaptive diagnostic ATPG — distinguishing patterns for ambiguous pairs.

When BP cannot separate two candidates (their marginal gap stays under
``BpOptions.ambiguity_threshold``, i.e. the applied pattern set predicts
near-identical syndromes for both), the fix is not more inference — it is
*more evidence*.  This module closes that loop through the existing ATPG
seam: for each ambiguous pair it asks the pattern generator for a test
targeting one hypothesis, keeps it only if the two hypotheses' captured
responses actually differ on it, re-captures the device on the extended
pattern set and re-runs BP — until the pair count stops improving or the
round budget is exhausted.

Closed-loop only: re-capturing needs the injected defects (on a real
tester floor this round trip is a re-test of the die; here the
:class:`~repro.diagnose.DefectInjector` plays the die).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.atpg.config import TestSetup
from repro.diagnose.defects import DefectSpec
from repro.diagnose.diagnose import DiagnosisSpec
from repro.diagnose.faillog import FailLog, capture_fail_log
from repro.engine.scheduler import FaultSimScheduler
from repro.obs.telemetry import active_metrics, active_tracer
from repro.patterns.pattern import PatternSet, TestPattern
from repro.volume.bp import BpOptions
from repro.volume.graph import BpDiagnosisResult, run_bp_diagnosis


@dataclass
class AdaptiveOutcome:
    """The result of one adaptive-ATPG separation loop (JSON-safe apart
    from the embedded result)."""

    result: BpDiagnosisResult
    rounds: int
    patterns_added: int
    initial_ambiguous: int
    final_ambiguous: int
    #: Ambiguous-pair count after each re-diagnosis (index 0 == initial).
    history: list[int] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        """Did the loop reduce the ambiguous-pair count at all?"""
        return self.final_ambiguous < self.initial_ambiguous

    @property
    def resolved(self) -> bool:
        """Did the loop separate every ambiguous pair?"""
        return self.final_ambiguous == 0

    def summary(self) -> str:
        trail = " -> ".join(str(count) for count in self.history)
        return (
            f"adaptive ATPG: {self.rounds} round(s), "
            f"{self.patterns_added} pattern(s) added, "
            f"ambiguous pairs {trail}"
        )


def _spec_of_row(row) -> DefectSpec:
    """The defect hypothesis a ranked candidate row encodes."""
    return DefectSpec(
        kind=row.kind, net=row.net, pin=row.pin,
        value=row.value, polarity=row.polarity,
    )


def _atpg_engine(prepared, setup: TestSetup, kind: str):
    """A single-fault pattern generator through the standard ATPG seam."""
    from repro.atpg.stuck_at import StuckAtAtpg
    from repro.atpg.transition import TransitionAtpg

    if kind == "stuck-at":
        return StuckAtAtpg(prepared.model, prepared.domain_map, setup)
    # Transition and inter-domain hypotheses both lower to transition
    # faults (DefectSpec.as_fault); the at-speed generator targets them.
    return TransitionAtpg(prepared.model, prepared.domain_map, setup)


def generate_distinguishing_pattern(
    prepared,
    setup: TestSetup,
    spec_a: DefectSpec,
    spec_b: DefectSpec,
    *,
    engines: "dict[str, object] | None" = None,
    batch_size: int = 256,
) -> "TestPattern | None":
    """One pattern on which the two hypotheses miscompare differently.

    Asks the generator for a test targeting each hypothesis in turn and
    keeps the first whose *captured* responses (per-pattern, per-chain,
    per-cycle fail bits — exactly the ATE comparison) differ between the
    two injected devices.  Returns ``None`` when neither target yields a
    separating pattern (untestable site or backtrack budget exhausted) —
    the pair is unresolvable with this generator budget.
    """
    engines = engines if engines is not None else {}
    for target in (spec_a, spec_b):
        if target.kind not in engines:
            try:
                engines[target.kind] = _atpg_engine(prepared, setup, target.kind)
            except ValueError:
                # The scenario's procedures cannot drive this fault family
                # (e.g. a transition hypothesis under a 1-pulse stuck-at
                # setup) — this target is simply not generatable here.
                engines[target.kind] = None
        engine = engines[target.kind]
        if engine is None:
            continue
        pattern, _statuses = engine._generate_for_fault(
            target.as_fault(prepared.model)
        )
        if pattern is None:
            continue
        responses = [
            capture_fail_log(
                prepared.model, prepared.domain_map, prepared.scan, setup,
                [pattern], [candidate], batch_size=batch_size,
            ).fails
            for candidate in (spec_a, spec_b)
        ]
        if responses[0] != responses[1]:
            return pattern
    return None


def adaptive_diagnose(
    prepared,
    setup: TestSetup,
    patterns: "PatternSet | Sequence[TestPattern]",
    spec: DiagnosisSpec,
    bp: "BpOptions | None" = None,
    *,
    defects: "Sequence[DefectSpec] | None" = None,
    fail_log: "FailLog | None" = None,
    options: object = None,
    scheduler: "FaultSimScheduler | None" = None,
    max_rounds: int = 3,
    pairs_per_round: int = 2,
) -> AdaptiveOutcome:
    """Diagnose, then iteratively separate BP's ambiguous pairs.

    Runs :func:`~repro.volume.graph.run_bp_diagnosis` once, then while
    ambiguous pairs remain: generate up to ``pairs_per_round``
    distinguishing patterns (one per pair, verified to actually split the
    pair's captured responses), extend the pattern set, re-capture the
    injected device and re-diagnose.  Stops when the pairs are gone, a
    round adds no pattern (generator budget/untestability), or
    ``max_rounds`` is spent.

    Args:
        prepared: The :class:`~repro.core.flow.PreparedDesign` under test.
        setup: The constraint environment of the original pattern set.
        patterns: The scenario pattern set the device originally ran.
        spec: The per-log diagnosis configuration.
        bp: BP inference knobs (the ambiguity threshold lives here).
        defects: The injected defects (closed loop); defaults to
            ``fail_log.defects`` or ``spec.defect``.
        fail_log: The initial captured log; ``None`` captures one.
        options: Engine execution knobs.
        scheduler: Externally owned scoring scheduler (caller closes it).
        max_rounds: Re-capture/re-diagnose budget.
        pairs_per_round: Ambiguous pairs targeted per round.
    """
    if max_rounds < 0:
        raise ValueError("max_rounds must be non-negative")
    if pairs_per_round < 1:
        raise ValueError("pairs_per_round must be positive")
    items = list(patterns)
    result = run_bp_diagnosis(
        prepared, setup, items, spec, bp,
        fail_log=fail_log, defects=defects, options=options,
        scheduler=scheduler,
    )
    injected = list(result.defects)
    history = [len(result.ambiguous_pairs)]
    rounds = 0
    added = 0
    if injected:
        engines: dict[str, object] = {}
        metrics = active_metrics()
        tracer = active_tracer()
        while result.ambiguous_pairs and rounds < max_rounds:
            fresh: list[TestPattern] = []
            with tracer.span(
                "volume:adaptive", round=rounds + 1,
                ambiguous=len(result.ambiguous_pairs),
            ):
                for pair in result.ambiguous_pairs[:pairs_per_round]:
                    row_a = result.candidates[int(pair["a"])]
                    row_b = result.candidates[int(pair["b"])]
                    pattern = generate_distinguishing_pattern(
                        prepared, setup,
                        _spec_of_row(row_a), _spec_of_row(row_b),
                        engines=engines, batch_size=spec.batch_size,
                    )
                    if pattern is not None:
                        fresh.append(pattern)
            if not fresh:
                break
            items = items + fresh
            added += len(fresh)
            rounds += 1
            if metrics is not None:
                metrics.inc("volume.adaptive_rounds")
                metrics.inc("volume.adaptive_patterns", len(fresh))
            result = run_bp_diagnosis(
                prepared, setup, items, spec, bp,
                defects=injected, options=options, scheduler=scheduler,
            )
            history.append(len(result.ambiguous_pairs))
    return AdaptiveOutcome(
        result=result,
        rounds=rounds,
        patterns_added=added,
        initial_ambiguous=history[0],
        final_ambiguous=history[-1],
        history=history,
    )
