"""Message-passing kernels for candidate-selection inference.

This is the numeric core of :mod:`repro.volume`: damped max-product
(min-sum) loopy belief propagation over the candidate x failing-bit factor
graph, posed as the LP relaxation of weighted set cover — select the
cheapest set of candidate defects whose predicted syndromes jointly cover
every observed failing bit (Gelfand/Shin, "Belief Propagation for Linear
Programming").  The optional convexified schedule splits each candidate's
unary cost uniformly across its factor neighborhood, the reweighting that
makes the free energy convex and the marginals usable as confidences
(Weiss et al., "MAP Estimation, Linear Programming and Belief Propagation
with Convex Free Energies").

The module is deliberately a leaf: pure Python over plain lists and dicts,
importing nothing from the diagnosis or engine planes, so both
:mod:`repro.diagnose.diagnose` (the cheap tie-only re-ranker) and
:mod:`repro.volume.graph` (full multi-defect inference) can share one
message kernel without an import cycle.  Every operation iterates in a
fixed order over the adjacency lists, so results are bit-identical for a
given graph regardless of which engine backend produced the evidence.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

#: Belief magnitudes beyond this are saturated before the logistic squash.
_BELIEF_CLIP = 50.0


# --------------------------------------------------------------------------
# Tie re-ranking (the cheap path)
# --------------------------------------------------------------------------
def rerank_tied_scores(
    group: Sequence[int],
    hit_pairs: Sequence[set[tuple[int, int]]],
    iterations: int,
) -> dict[int, float]:
    """Message-passing style evidence reweighting for one tie group.

    Each observed failing bit sends its explaining candidates a message
    worth ``1 / (sum of the strengths of the candidates explaining it)``;
    candidate strengths are re-estimated from the received evidence each
    round.  Rare evidence — a failing bit only one candidate explains —
    dominates the final score, separating otherwise tied hypotheses.

    This is the degenerate single-defect form of the full factor-graph
    schedule in :func:`max_product_bp`: evidence factors reweight their
    variable neighborhoods, but no cover constraint is enforced and no
    marginal is calibrated.  :func:`repro.diagnose.diagnose.score_candidates`
    uses it as the cheap path for tie groups of an already-ranked list.
    """
    strengths = {index: 1.0 for index in group}
    raw = dict(strengths)
    for _ in range(max(1, iterations)):
        weight: dict[tuple[int, int], float] = {}
        for index in group:
            for pair in hit_pairs[index]:
                weight[pair] = weight.get(pair, 0.0) + strengths[index]
        raw = {
            index: sum(1.0 / weight[pair] for pair in hit_pairs[index])
            for index in group
        }
        peak = max(raw.values(), default=0.0)
        strengths = {
            index: (raw[index] / peak if peak else 1.0) for index in group
        }
    return raw


# --------------------------------------------------------------------------
# Loopy max-product BP over the cover factor graph
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class BpOptions:
    """Knobs of the loopy-BP inference (JSON-round-trippable).

    Attributes:
        iterations: Maximum message-update sweeps.
        damping: Fraction of the previous factor-to-variable message kept
            per sweep (0 == undamped); damping stabilizes the loopy graph's
            oscillations around symmetric candidates.
        convexified: Split each candidate's unary cost uniformly across its
            factor neighborhood (Weiss-style convex free energy) instead of
            charging it whole on every edge.
        tolerance: Sweep-to-sweep max message delta declaring convergence.
        base_cost: Unary cost of turning any candidate on (the model-
            complexity prior of the LP objective).
        false_alarm_weight: Extra unary cost per predicted-but-unobserved
            failing bit — candidates that overpredict pay to be selected.
        ambiguity_threshold: Marginal gap below which two evidence-sharing
            candidates count as an ambiguous pair (adaptive ATPG's worklist).
    """

    iterations: int = 48
    damping: float = 0.5
    convexified: bool = True
    tolerance: float = 1e-9
    base_cost: float = 1.0
    false_alarm_weight: float = 0.25
    ambiguity_threshold: float = 0.05

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("BP needs at least one iteration")
        if not 0.0 <= self.damping < 1.0:
            raise ValueError("damping must lie in [0, 1)")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.base_cost <= 0.0:
            raise ValueError("base_cost must be positive")
        if self.false_alarm_weight < 0.0:
            raise ValueError("false_alarm_weight must be non-negative")
        if self.ambiguity_threshold < 0.0:
            raise ValueError("ambiguity_threshold must be non-negative")

    def with_overrides(self, **changes: object) -> "BpOptions":
        return replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> dict[str, object]:
        return {
            "iterations": self.iterations,
            "damping": self.damping,
            "convexified": self.convexified,
            "tolerance": self.tolerance,
            "base_cost": self.base_cost,
            "false_alarm_weight": self.false_alarm_weight,
            "ambiguity_threshold": self.ambiguity_threshold,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BpOptions":
        return cls(**dict(data))  # type: ignore[arg-type]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BpOptions":
        return cls.from_dict(json.loads(text))


@dataclass
class BpOutcome:
    """The inference output of one :func:`max_product_bp` run.

    Attributes:
        beliefs: Per-candidate min-sum belief ``cost(on) - cost(off)`` —
            negative means the LP wants the candidate selected.
        marginals: Calibrated confidences ``1 / (1 + exp(belief))``.
        iterations: Sweeps actually run.
        converged: Whether the message deltas dropped under tolerance.
        max_delta: Final sweep's largest message change.
    """

    beliefs: list[float]
    marginals: list[float]
    iterations: int
    converged: bool
    max_delta: float


def max_product_bp(
    costs: Sequence[float],
    factors: Sequence[Sequence[int]],
    options: BpOptions | None = None,
) -> BpOutcome:
    """Damped max-product loopy BP on the candidate-cover factor graph.

    The graph is bipartite: one binary variable per candidate (``costs[j]``
    is the unary cost of switching it on) and one OR factor per observed
    failing bit (``factors[e]`` lists the candidates whose predicted
    syndrome covers that bit; every listed index must be in range, and a
    factor with no explainers must be dropped by the caller).

    Min-sum messages, all normalized so the OFF state is 0:

    * variable to factor: ``mu = c_j - sum of other factors' messages``
      (with ``c_j`` split across edges under the convexified schedule);
    * factor to variable: ``m = clip(min of the other explainers' mu, 0,
      CAP)`` — the extra cost the factor charges candidate ``j`` for being
      off, capped at CAP (just above the costliest candidate) so a sole
      explainer is forced on rather than driven to infinity.

    Deterministic: messages update in factor order, sums run in adjacency
    order, no randomness — the same graph yields bit-identical beliefs on
    every platform, which is what lets volume diagnosis promise backend
    equivalence end to end.
    """
    opts = options or BpOptions()
    cost_list = [float(cost) for cost in costs]
    if any(cost <= 0.0 for cost in cost_list):
        raise ValueError("BP candidate costs must be positive")
    adjacency = [tuple(factor) for factor in factors]
    for factor in adjacency:
        if not factor:
            raise ValueError("an evidence factor needs at least one explainer")
        for j in factor:
            if not 0 <= j < len(cost_list):
                raise ValueError(f"factor references unknown candidate {j}")
    cap = (max(cost_list) if cost_list else 1.0) + 1.0
    degree = [0] * len(cost_list)
    for factor in adjacency:
        for j in factor:
            degree[j] += 1
    # messages[e][k] pairs with adjacency[e][k]: factor e -> candidate j.
    messages = [[0.0] * len(factor) for factor in adjacency]
    incoming = [0.0] * len(cost_list)  # sum of factor->variable messages
    sweeps = 0
    max_delta = math.inf
    converged = False
    for sweeps in range(1, opts.iterations + 1):
        max_delta = 0.0
        for e, factor in enumerate(adjacency):
            row = messages[e]
            # mu_{j->e}: unary cost (possibly split) minus the other
            # factors' pressure; subtracting this factor's own previous
            # message keeps the exchange extrinsic.
            mu = []
            for k, j in enumerate(factor):
                unary = cost_list[j] / degree[j] if opts.convexified else cost_list[j]
                mu.append(unary - (incoming[j] - row[k]))
            for k, j in enumerate(factor):
                if len(factor) == 1:
                    raw = cap
                else:
                    best = min(mu[i] for i in range(len(factor)) if i != k)
                    raw = min(max(best, 0.0), cap)
                updated = (1.0 - opts.damping) * raw + opts.damping * row[k]
                delta = abs(updated - row[k])
                if delta > max_delta:
                    max_delta = delta
                incoming[j] += updated - row[k]
                row[k] = updated
        if max_delta < opts.tolerance:
            converged = True
            break
    beliefs = [cost_list[j] - incoming[j] for j in range(len(cost_list))]
    marginals = [
        1.0 / (1.0 + math.exp(min(max(belief, -_BELIEF_CLIP), _BELIEF_CLIP)))
        for belief in beliefs
    ]
    return BpOutcome(
        beliefs=beliefs,
        marginals=marginals,
        iterations=sweeps,
        converged=converged,
        max_delta=max_delta,
    )
