"""Persistent fail-log stores for volume diagnosis.

The tester floor produces fail logs by the thousand; volume diagnosis
needs them durable, enumerable and cheap to stream.  :class:`FailLogStore`
provides exactly that behind one path-shaped constructor with two
stdlib-only backends:

* ``*.jsonl`` — an append-only JSON-lines file, one record per log: the
  archival/interchange format (folds straight into ``import_jsonl`` /
  ``export_jsonl`` on either backend);
* anything else — a sqlite3 database with a unique name index: the
  random-access format for stores too big to rescan per lookup.

Records are keyed by a caller-chosen unique ``name`` (lot/wafer/die ids on
a real floor) and carry the design name plus an optional scenario label,
so one store can hold several designs' logs and a volume plan can filter
its share (:meth:`FailLogStore.records`).
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.diagnose.faillog import FailLog


@dataclass(frozen=True)
class FailLogRecord:
    """One stored fail log plus its store-side identity."""

    name: str
    design: str
    scenario: str
    log: FailLog

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "design": self.design,
            "scenario": self.scenario,
            "log": self.log.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FailLogRecord":
        return cls(
            name=str(data["name"]),
            design=str(data["design"]),
            scenario=str(data.get("scenario", "")),
            log=FailLog.from_dict(data["log"]),  # type: ignore[arg-type]
        )


class FailLogStore:
    """Thousands of captured fail logs behind one path.

    The backend is picked from the suffix: ``.jsonl`` appends JSON lines,
    anything else opens (creating if needed) a sqlite3 database.  Both
    honor the same contract: unique names, insertion-ordered iteration,
    and design/scenario filtering — so tests, examples and the serve plane
    can swap formats freely.
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self.kind = "jsonl" if self.path.suffix == ".jsonl" else "sqlite"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.kind == "sqlite":
            with self._connect() as connection:
                connection.execute(
                    "CREATE TABLE IF NOT EXISTS fail_logs ("
                    "  id INTEGER PRIMARY KEY AUTOINCREMENT,"
                    "  name TEXT NOT NULL UNIQUE,"
                    "  design TEXT NOT NULL,"
                    "  scenario TEXT NOT NULL,"
                    "  payload TEXT NOT NULL)"
                )
        elif not self.path.exists():
            self.path.touch()

    # ----------------------------------------------------------------- backend
    def _connect(self) -> sqlite3.Connection:
        return sqlite3.connect(self.path)

    def _jsonl_records(self) -> Iterator[FailLogRecord]:
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield FailLogRecord.from_dict(json.loads(line))

    # ------------------------------------------------------------------- write
    def add(
        self,
        name: str,
        log: FailLog,
        *,
        scenario: str = "",
    ) -> FailLogRecord:
        """Store one log under a unique name; raises on duplicates."""
        if not name:
            raise ValueError("a fail log record needs a non-empty name")
        record = FailLogRecord(
            name=name, design=log.design, scenario=scenario, log=log
        )
        if self.kind == "jsonl":
            if name in self.names():
                raise ValueError(f"fail log {name!r} already stored")
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        else:
            try:
                with self._connect() as connection:
                    connection.execute(
                        "INSERT INTO fail_logs (name, design, scenario, payload)"
                        " VALUES (?, ?, ?, ?)",
                        (
                            name,
                            record.design,
                            scenario,
                            json.dumps(log.to_dict(), sort_keys=True),
                        ),
                    )
            except sqlite3.IntegrityError:
                raise ValueError(f"fail log {name!r} already stored") from None
        return record

    def add_many(
        self, records: Iterable[tuple[str, FailLog]], *, scenario: str = ""
    ) -> int:
        count = 0
        for name, log in records:
            self.add(name, log, scenario=scenario)
            count += 1
        return count

    # -------------------------------------------------------------------- read
    def names(self) -> list[str]:
        if self.kind == "jsonl":
            return [record.name for record in self._jsonl_records()]
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT name FROM fail_logs ORDER BY id"
            ).fetchall()
        return [row[0] for row in rows]

    def __len__(self) -> int:
        if self.kind == "jsonl":
            return sum(1 for _ in self._jsonl_records())
        with self._connect() as connection:
            (count,) = connection.execute(
                "SELECT COUNT(*) FROM fail_logs"
            ).fetchone()
        return int(count)

    def __iter__(self) -> Iterator[FailLogRecord]:
        return iter(self.records())

    def get(self, name: str) -> FailLogRecord:
        if self.kind == "jsonl":
            for record in self._jsonl_records():
                if record.name == name:
                    return record
            raise KeyError(f"no fail log named {name!r}")
        with self._connect() as connection:
            row = connection.execute(
                "SELECT name, design, scenario, payload FROM fail_logs"
                " WHERE name = ?",
                (name,),
            ).fetchone()
        if row is None:
            raise KeyError(f"no fail log named {name!r}")
        return FailLogRecord(
            name=row[0],
            design=row[1],
            scenario=row[2],
            log=FailLog.from_json(row[3]),
        )

    def records(
        self, design: str | None = None, scenario: str | None = None
    ) -> list[FailLogRecord]:
        """All records in insertion order, optionally filtered."""
        if self.kind == "jsonl":
            found = list(self._jsonl_records())
        else:
            with self._connect() as connection:
                rows = connection.execute(
                    "SELECT name, design, scenario, payload FROM fail_logs"
                    " ORDER BY id"
                ).fetchall()
            found = [
                FailLogRecord(
                    name=row[0],
                    design=row[1],
                    scenario=row[2],
                    log=FailLog.from_json(row[3]),
                )
                for row in rows
            ]
        if design is not None:
            found = [record for record in found if record.design == design]
        if scenario is not None:
            found = [record for record in found if record.scenario == scenario]
        return found

    # ------------------------------------------------------------- interchange
    def export_jsonl(self, path: "Path | str") -> int:
        """Dump every record to a JSON-lines file; returns the count."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        records = self.records()
        with target.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return len(records)

    def import_jsonl(self, path: "Path | str") -> int:
        """Load every record of a JSON-lines dump; returns the count."""
        count = 0
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = FailLogRecord.from_dict(json.loads(line))
                self.add(record.name, record.log, scenario=record.scenario)
                count += 1
        return count
