"""Candidate x failing-bit factor graphs and BP-based diagnosis.

The volume subsystem's answer to "what is wrong with this die": build a
bipartite factor graph — one binary variable per candidate defect, one OR
factor per observed failing bit, an edge wherever the candidate's
engine-simulated syndrome covers the bit — and run damped max-product
loopy BP (:func:`repro.volume.bp.max_product_bp`) to select the cheapest
*set* of candidates explaining the log.  Unlike the classical
single-defect ranking of :mod:`repro.diagnose.diagnose`, the selected set
may hold several defects, which is what tester-floor volume diagnosis
needs.

Evidence comes from the same kernels as the legacy ranking
(:func:`repro.diagnose.diagnose.simulate_candidate_syndromes`, i.e.
``FaultSimScheduler.syndrome_batch`` over
``CompiledCircuit.syndrome_stuck_at/_transition``), so BP verdicts are
bit-identical across the serial/compiled/threads/processes backends and
every shard count.  Candidates are extracted in *union*-cone mode: a
multi-defect die only requires each candidate to reach its own share of
the failing observations.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.atpg.config import AtpgOptions, TestSetup
from repro.diagnose.candidates import CandidateSet, extract_candidates
from repro.diagnose.defects import DefectSpec
from repro.diagnose.diagnose import (
    DiagnosisSpec,
    ScoredCandidate,
    SyndromeEvidence,
    simulate_candidate_syndromes,
)
from repro.diagnose.faillog import FailLog, capture_fail_log
from repro.engine.scheduler import FaultSimScheduler
from repro.obs.telemetry import active_metrics, active_tracer
from repro.patterns.pattern import PatternSet, TestPattern
from repro.volume.bp import BpOptions, BpOutcome, max_product_bp


@dataclass
class CandidateFactorGraph:
    """The cover factor graph distilled from syndrome evidence.

    Attributes:
        costs: Per-candidate unary selection cost (base cost plus the
            false-alarm penalty — overpredicting candidates pay more).
        factors: Per observed-and-explained failing bit, the candidate
            indices whose predicted syndrome covers it (adjacency order is
            ascending, making message sweeps deterministic).
        factor_bits: The ``(pattern, node)`` coordinate of each factor,
            sorted — the graph's evidence universe.
        unexplained: Observed failing bits no candidate explains (dropped
            from the graph; reported so a thin candidate universe is never
            mistaken for a clean cover).
        classes: Syndrome-equivalence classes — candidates with identical
            hit sets and false-alarm counts, i.e. indistinguishable under
            the applied patterns.  Each class lists member indices
            ascending; adaptive ATPG exists to split the plural ones.
    """

    costs: list[float]
    factors: list[tuple[int, ...]]
    factor_bits: list[tuple[int, int]]
    unexplained: int
    classes: list[list[int]]


def build_factor_graph(
    evidence: SyndromeEvidence, options: BpOptions
) -> CandidateFactorGraph:
    """Distill syndrome evidence into the BP-ready cover graph."""
    explainers: dict[tuple[int, int], list[int]] = {}
    for index, hits in enumerate(evidence.hit_pairs):
        for pair in hits:
            explainers.setdefault(pair, []).append(index)
    factor_bits = sorted(pair for pair in evidence.observed if pair in explainers)
    factors = [tuple(sorted(explainers[pair])) for pair in factor_bits]
    unexplained = len(evidence.observed) - len(factor_bits)
    costs = [
        options.base_cost + options.false_alarm_weight * fa
        for fa in evidence.false_alarms
    ]
    grouped: dict[tuple[frozenset[tuple[int, int]], int], list[int]] = {}
    for index, hits in enumerate(evidence.hit_pairs):
        key = (frozenset(hits), evidence.false_alarms[index])
        grouped.setdefault(key, []).append(index)
    classes = sorted(grouped.values(), key=lambda members: members[0])
    return CandidateFactorGraph(
        costs=costs,
        factors=factors,
        factor_bits=factor_bits,
        unexplained=unexplained,
        classes=classes,
    )


@dataclass
class BpScoredCandidate(ScoredCandidate):
    """One BP-ranked defect hypothesis: a scored candidate plus its
    calibrated marginal and cover-selection verdict."""

    confidence: float = 0.0
    selected: bool = False

    def describe(self) -> str:
        mark = " *" if self.selected else ""
        return f"{super().describe()} conf={self.confidence:.3f}{mark}"

    def to_dict(self) -> dict[str, object]:
        payload = super().to_dict()
        payload["confidence"] = self.confidence
        payload["selected"] = self.selected
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BpScoredCandidate":
        return cls(**dict(data))  # type: ignore[arg-type]


@dataclass
class BpDiagnosisResult:
    """The outcome of one loopy-BP multi-defect diagnosis (JSON-safe).

    ``candidates`` is the full confidence-ranked universe;
    ``selected_candidates()`` is the diagnosis — the greedy LP-rounded
    cover of the evidence.  ``ambiguous_pairs`` lists candidate-row index
    pairs whose marginal gap stayed under the ambiguity threshold (plural
    equivalence classes appear as chains of adjacent members): exactly the
    worklist :mod:`repro.volume.adaptive` generates distinguishing
    patterns for.
    """

    design: str
    scenario: str
    backend: str
    pattern_count: int
    fail_count: int
    site_count: int
    candidate_count: int
    truncated_sites: int
    unexplained: int
    candidates: list[BpScoredCandidate] = field(default_factory=list)
    defects: list[DefectSpec] = field(default_factory=list)
    resolution: int = 0
    ranks_of_defects: list[int | None] = field(default_factory=list)
    converged: bool = False
    bp_iterations: int = 0
    objective: float = 0.0
    lp_objective: float = 0.0
    ambiguous_pairs: list[dict[str, object]] = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_hit: bool = False

    # ----------------------------------------------------------------- queries
    @property
    def defect(self) -> DefectSpec | None:
        return self.defects[0] if self.defects else None

    @property
    def rank_of_defect(self) -> int | None:
        return self.ranks_of_defects[0] if self.ranks_of_defects else None

    @property
    def recovered_at_rank_1(self) -> bool:
        return self.rank_of_defect == 1

    @property
    def confidence_of_defect(self) -> float | None:
        """Marginal of the first injected defect's candidate row."""
        if not self.defects:
            return None
        for row in self.candidates:
            if row.matches(self.defects[0]):
                return row.confidence
        return None

    def selected_candidates(self) -> list[BpScoredCandidate]:
        return [row for row in self.candidates if row.selected]

    def top(self, count: int = 5) -> list[BpScoredCandidate]:
        return self.candidates[:count]

    def recovered_all_defects(self) -> bool:
        """Does the selected set explain every injected defect?

        A defect counts as recovered when a selected candidate matches it
        *or* shares its confidence tie group (syndrome equivalence — the
        applied patterns cannot tell the pair apart, which is adaptive
        ATPG's job, not selection's).
        """
        selected_ranks = {row.rank for row in self.candidates if row.selected}
        for spec in self.defects:
            matched = next(
                (row for row in self.candidates if row.matches(spec)), None
            )
            if matched is None:
                return False
            if not matched.selected and matched.rank not in selected_ranks:
                return False
        return True

    def summary(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        lines = [
            f"BP diagnosis of {self.design} / {self.scenario}: "
            f"{self.fail_count} failing bits over {self.pattern_count} patterns, "
            f"{self.candidate_count} candidates at {self.site_count} sites "
            f"({status} in {self.bp_iterations} sweeps, "
            f"objective {self.objective:.2f}, backend={self.backend}, "
            f"{self.wall_seconds:.2f}s)"
        ]
        if self.unexplained:
            lines.append(f"  WARNING: {self.unexplained} failing bits unexplained")
        for spec, rank in zip(self.defects, self.ranks_of_defects):
            where = "NOT FOUND" if rank is None else f"rank {rank}"
            lines.append(f"  injected defect {spec.describe()}: {where}")
        for row in self.selected_candidates() or self.top():
            lines.append(f"  {row.describe()}")
        if self.ambiguous_pairs:
            lines.append(f"  ambiguous pairs: {len(self.ambiguous_pairs)}")
        return "\n".join(lines)

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict[str, object]:
        return {
            "design": self.design,
            "scenario": self.scenario,
            "backend": self.backend,
            "pattern_count": self.pattern_count,
            "fail_count": self.fail_count,
            "site_count": self.site_count,
            "candidate_count": self.candidate_count,
            "truncated_sites": self.truncated_sites,
            "unexplained": self.unexplained,
            "candidates": [row.to_dict() for row in self.candidates],
            "defects": [spec.to_dict() for spec in self.defects],
            "resolution": self.resolution,
            "ranks_of_defects": list(self.ranks_of_defects),
            "converged": self.converged,
            "bp_iterations": self.bp_iterations,
            "objective": self.objective,
            "lp_objective": self.lp_objective,
            "ambiguous_pairs": [dict(pair) for pair in self.ambiguous_pairs],
            "wall_seconds": self.wall_seconds,
            "cache_hit": self.cache_hit,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BpDiagnosisResult":
        payload = dict(data)
        payload["candidates"] = [
            BpScoredCandidate.from_dict(item)
            for item in payload.get("candidates", [])
        ]
        payload["defects"] = [
            DefectSpec.from_dict(item) for item in payload.get("defects", [])
        ]
        payload["ambiguous_pairs"] = [
            dict(item) for item in payload.get("ambiguous_pairs", [])
        ]
        return cls(**payload)  # type: ignore[arg-type]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BpDiagnosisResult":
        return cls.from_dict(json.loads(text))

    def same_ranking(self, other: "BpDiagnosisResult") -> bool:
        """Deterministic-field equality of the full ranking (ignores timing,
        backend and cache provenance — the backend-equivalence contract)."""
        if len(self.candidates) != len(other.candidates):
            return False
        return all(
            mine.to_dict() == theirs.to_dict()
            for mine, theirs in zip(self.candidates, other.candidates)
        )


def _select_cover(
    graph: CandidateFactorGraph,
    evidence: SyndromeEvidence,
    marginals: Sequence[float],
) -> set[int]:
    """Round the LP marginals into a covering candidate set.

    Greedy cover over syndrome-equivalence classes, most-confident first:
    a class whose hit set still covers an uncovered failing bit is
    selected whole — the applied patterns cannot prefer one member over
    another, so the diagnosis reports every indistinguishable member and
    leaves the split to adaptive ATPG.
    """
    ordered = sorted(
        (members for members in graph.classes if evidence.hit_pairs[members[0]]),
        key=lambda members: (
            -round(marginals[members[0]], 9),
            len(evidence.observed) - len(evidence.hit_pairs[members[0]])
            + evidence.false_alarms[members[0]],
            members[0],
        ),
    )
    uncovered = set(graph.factor_bits)
    selected: set[int] = set()
    for members in ordered:
        if not uncovered:
            break
        hits = evidence.hit_pairs[members[0]]
        if uncovered & hits:
            selected.update(members)
            uncovered -= hits
    return selected


def _ambiguous_pairs(
    graph: CandidateFactorGraph,
    evidence: SyndromeEvidence,
    marginals: Sequence[float],
    selected: set[int],
    threshold: float,
    row_of: Mapping[int, int],
) -> list[dict[str, object]]:
    """Candidate pairs the applied patterns cannot separate.

    Two flavors: members of one plural equivalence class (gap exactly 0 —
    listed as a chain of adjacent members), and a selected candidate vs an
    evidence-sharing rival whose marginal sits within the threshold *and*
    whose syndrome error count is identical — rivals the observed
    responses already tell apart are evidence-separated no matter how
    close their posteriors sit, so they are not adaptive ATPG's problem.
    ``row_of`` maps candidate indices to their rows in the ranked list so
    the pairs survive serialization.
    """
    pairs: list[dict[str, object]] = []
    seen: set[tuple[int, int]] = set()

    def emit(a: int, b: int) -> None:
        key = (min(row_of[a], row_of[b]), max(row_of[a], row_of[b]))
        if key not in seen:
            seen.add(key)
            pairs.append(
                {
                    "a": key[0],
                    "b": key[1],
                    "gap": round(abs(marginals[a] - marginals[b]), 9),
                }
            )

    class_of = {}
    for class_id, members in enumerate(graph.classes):
        for index in members:
            class_of[index] = class_id
    for members in graph.classes:
        if len(members) > 1 and any(index in selected for index in members):
            for a, b in zip(members, members[1:]):
                emit(a, b)
    total = evidence.total_observed
    errors = [
        (total - len(evidence.hit_pairs[j])) + evidence.false_alarms[j]
        for j in range(len(marginals))
    ]
    for a in sorted(selected):
        for b in range(len(marginals)):
            if b == a or class_of[b] == class_of[a] or b in selected:
                continue
            if errors[b] != errors[a]:
                continue
            if not evidence.hit_pairs[a] & evidence.hit_pairs[b]:
                continue
            if abs(marginals[a] - marginals[b]) < threshold:
                emit(a, b)
    pairs.sort(key=lambda pair: (pair["a"], pair["b"]))
    return pairs


def run_bp_diagnosis(
    prepared,
    setup: TestSetup,
    patterns: "PatternSet | Sequence[TestPattern]",
    spec: DiagnosisSpec,
    bp: BpOptions | None = None,
    *,
    fail_log: FailLog | None = None,
    defects: Sequence[DefectSpec] | None = None,
    options: AtpgOptions | None = None,
    scheduler: FaultSimScheduler | None = None,
) -> BpDiagnosisResult:
    """One full BP diagnosis: capture (if needed), extract, infer, select.

    The multi-defect analogue of :func:`repro.diagnose.diagnose.run_diagnosis`:
    same seams (``spec.backend``/``options`` engine knobs, an optional
    externally owned ``scheduler`` amortized across a log stream), but the
    ranking comes from loopy-BP marginals over the union-cone candidate
    universe and the result carries a *selected set*, not just an order.

    Args:
        prepared: The :class:`~repro.core.flow.PreparedDesign` under test.
        setup: The constraint environment the patterns were generated under.
        patterns: The pattern set the failing device ran on the tester.
        spec: The declarative diagnosis configuration.
        bp: Inference knobs (:class:`~repro.volume.bp.BpOptions`).
        fail_log: An externally captured fail log; ``None`` injects
            ``defects`` (or ``spec.defect``) and captures one.
        defects: Defects to inject for closed-loop experiments — a *list*,
            captured in one multi-defect pass.
        options: Engine execution knobs; ``spec.backend`` overrides.
        scheduler: Externally owned scoring scheduler (caller closes it).
    """
    started = time.perf_counter()
    bp = bp or BpOptions()
    options = options or setup.options
    backend = (
        scheduler.backend_name if scheduler is not None
        else spec.backend or options.sim_backend
    )
    model = prepared.model
    items = list(patterns)
    injected: list[DefectSpec] = list(defects or ([spec.defect] if spec.defect else []))
    if fail_log is None:
        if not injected:
            raise ValueError(
                "run_bp_diagnosis needs either a fail log or defects to inject"
            )
        fail_log = capture_fail_log(
            model,
            prepared.domain_map,
            prepared.scan,
            setup,
            items,
            injected,
            batch_size=spec.batch_size,
        )
    elif not injected:
        injected = list(fail_log.defects)
    candidate_set: CandidateSet = extract_candidates(
        model,
        fail_log,
        kinds=spec.candidate_kinds,
        max_sites=spec.max_sites,
        mode="union",
    )
    evidence = simulate_candidate_syndromes(
        model,
        prepared.domain_map,
        setup,
        items,
        candidate_set,
        fail_log,
        backend=backend,
        shard_count=options.sim_shards,
        max_workers=options.sim_workers,
        batch_size=spec.batch_size,
        scheduler=scheduler,
    )
    graph = build_factor_graph(evidence, bp)
    with active_tracer().span(
        "volume:bp", design=model.name, candidates=len(graph.costs),
        factors=len(graph.factors),
    ):
        outcome: BpOutcome = max_product_bp(graph.costs, graph.factors, bp)
    selected = _select_cover(graph, evidence, outcome.marginals)

    # ------------------------------------------------------------------ ranking
    total_observed = evidence.total_observed
    def sort_key(index: int) -> tuple:
        return (
            -round(outcome.marginals[index], 9),
            (total_observed - len(evidence.hit_pairs[index]))
            + evidence.false_alarms[index],
            -len(evidence.hit_pairs[index]),
            index,
        )

    order = sorted(range(len(graph.costs)), key=sort_key)
    rows: list[BpScoredCandidate] = []
    row_of: dict[int, int] = {}
    rank = 0
    previous_key: tuple | None = None
    for position, index in enumerate(order):
        key = sort_key(index)[:3]
        if key != previous_key:
            rank = position + 1
            previous_key = key
        cand_spec = candidate_set.candidates[index].spec(model)
        row_of[index] = position
        rows.append(
            BpScoredCandidate(
                rank=rank,
                kind=cand_spec.kind,
                net=cand_spec.net,
                pin=cand_spec.pin,
                value=cand_spec.value,
                polarity=cand_spec.polarity,
                hits=len(evidence.hit_pairs[index]),
                misses=total_observed - len(evidence.hit_pairs[index]),
                false_alarms=evidence.false_alarms[index],
                score=round(outcome.marginals[index], 9),
                confidence=round(outcome.marginals[index], 9),
                selected=index in selected,
            )
        )
    pairs = _ambiguous_pairs(
        graph, evidence, outcome.marginals, selected,
        bp.ambiguity_threshold, row_of,
    )
    ranks_of_defects: list[int | None] = []
    for defect_spec in injected:
        found = next((row.rank for row in rows if row.matches(defect_spec)), None)
        ranks_of_defects.append(found)
    class_cost = {
        members[0]: graph.costs[members[0]] for members in graph.classes
    }
    objective = sum(
        cost for index, cost in class_cost.items() if index in selected
    )
    lp_objective = sum(
        cost * marginal
        for cost, marginal in zip(graph.costs, outcome.marginals)
    )
    metrics = active_metrics()
    if metrics is not None:
        metrics.inc("volume.bp_iterations", outcome.iterations)
        if outcome.converged:
            metrics.inc("volume.converged")
        metrics.inc("volume.ambiguous_pairs", len(pairs))
    return BpDiagnosisResult(
        design=model.name,
        scenario=spec.scenario,
        backend=backend,
        pattern_count=len(items),
        fail_count=fail_log.num_fails,
        site_count=candidate_set.site_count,
        candidate_count=candidate_set.candidate_count,
        truncated_sites=candidate_set.truncated_sites,
        unexplained=graph.unexplained,
        candidates=rows,
        defects=injected,
        resolution=sum(1 for row in rows if row.rank == 1),
        ranks_of_defects=ranks_of_defects,
        converged=outcome.converged,
        bp_iterations=outcome.iterations,
        objective=round(objective, 9),
        lp_objective=round(lp_objective, 9),
        ambiguous_pairs=pairs,
        wall_seconds=time.perf_counter() - started,
    )
