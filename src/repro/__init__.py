"""repro — on-chip test clock generation (CPF/OCC) and delay-test ATPG.

A from-scratch reproduction of Beck et al., "Logic Design for On-Chip Test
Clock Generation — Implementation Details and Impact on Delay Test Quality"
(DATE 2005): gate-level netlists, logic/fault simulation, stuck-at and
transition-fault ATPG, scan and EDT infrastructure, and the paper's clock
pulse filter (CPF) together with the experiment flow that reproduces its
Table 1 and Figures 1-4.

The subpackages are imported lazily; ``import repro`` is cheap.
"""

from __future__ import annotations

import importlib
from typing import Any

__version__ = "1.0.0"

_SUBPACKAGES = (
    "analyze",
    "api",
    "netlist",
    "simulation",
    "faults",
    "fault_sim",
    "engine",
    "diagnose",
    "atpg",
    "dft",
    "clocking",
    "patterns",
    "circuits",
    "core",
    "logic",
    "runtime",
    "serve",
)


def __getattr__(name: str) -> Any:
    if name in _SUBPACKAGES:
        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(list(globals()) + list(_SUBPACKAGES))
