"""Test pattern data structures.

A :class:`TestPattern` is one scan load plus the capture phase that follows
it: the named capture procedure to apply, the primary-input values per
capture frame, and (after good-machine simulation) the expected unload and
output values.  A :class:`PatternSet` is an ordered collection with the
bookkeeping the paper's Table 1 reports: pattern counts per capture procedure
and per clock domain.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.clocking.named_capture import NamedCaptureProcedure
from repro.simulation.logic import Logic


def _logic_map_out(values: dict[str, Logic]) -> dict[str, str]:
    """Serialize a net→Logic mapping to net→character."""
    return {key: str(value) for key, value in values.items()}


def _logic_map_in(values: dict[str, str]) -> dict[str, Logic]:
    """Deserialize a net→character mapping back to net→Logic."""
    return {key: Logic.from_char(value) for key, value in values.items()}


@dataclass
class TestPattern:
    """One scan-load / capture / unload test.

    Attributes:
        procedure: The named capture procedure applied after the scan load.
        scan_load: Value shifted into every scan flip-flop (X = unspecified,
            filled before ATE export).
        pi_frames: Primary-input values, one mapping per capture frame.  When
            the tester has to hold its pins, all frames carry the same values.
        observe_pos: Whether primary outputs are strobed for this pattern.
        expected_unload: Good-machine values captured into the scan flip-flops
            (filled in by simulation before export).
        expected_outputs: Good-machine primary output values at strobe time.
        target_faults: Human-readable identifiers of the faults this pattern
            was generated for (ATPG bookkeeping).
        cube_scan_load: The deterministic care bits of the scan load *before*
            X-filling (the "test cube").  This is what an EDT decompressor has
            to encode; the filled bits come for free from its ring generator.
            ``None`` means "not recorded" (hand-built patterns); an empty
            dict means "no deterministic care bits" (purely random patterns).
    """

    procedure: NamedCaptureProcedure
    scan_load: dict[str, Logic] = field(default_factory=dict)
    pi_frames: list[dict[str, Logic]] = field(default_factory=list)
    observe_pos: bool = True
    expected_unload: dict[str, Logic] = field(default_factory=dict)
    expected_outputs: dict[str, Logic] = field(default_factory=dict)
    target_faults: list[str] = field(default_factory=list)
    cube_scan_load: dict[str, Logic] | None = None

    def __post_init__(self) -> None:
        if not self.pi_frames:
            self.pi_frames = [dict() for _ in range(self.procedure.num_frames)]
        if len(self.pi_frames) != self.procedure.num_frames:
            raise ValueError(
                f"pattern has {len(self.pi_frames)} PI frames but procedure "
                f"{self.procedure.name!r} needs {self.procedure.num_frames}"
            )

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form (Logic values become their characters)."""
        data: dict[str, object] = {
            "procedure": self.procedure.to_dict(),
            "scan_load": _logic_map_out(self.scan_load),
            "pi_frames": [_logic_map_out(frame) for frame in self.pi_frames],
            "observe_pos": self.observe_pos,
            "expected_unload": _logic_map_out(self.expected_unload),
            "expected_outputs": _logic_map_out(self.expected_outputs),
            "target_faults": list(self.target_faults),
            "cube_scan_load": (
                None if self.cube_scan_load is None
                else _logic_map_out(self.cube_scan_load)
            ),
        }
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "TestPattern":
        cube = data.get("cube_scan_load")
        return cls(
            procedure=NamedCaptureProcedure.from_dict(data["procedure"]),  # type: ignore[arg-type]
            scan_load=_logic_map_in(data.get("scan_load") or {}),  # type: ignore[arg-type]
            pi_frames=[
                _logic_map_in(frame)
                for frame in data.get("pi_frames") or []  # type: ignore[union-attr]
            ],
            observe_pos=bool(data.get("observe_pos", True)),
            expected_unload=_logic_map_in(data.get("expected_unload") or {}),  # type: ignore[arg-type]
            expected_outputs=_logic_map_in(data.get("expected_outputs") or {}),  # type: ignore[arg-type]
            target_faults=list(data.get("target_faults") or ()),  # type: ignore[arg-type]
            cube_scan_load=None if cube is None else _logic_map_in(cube),  # type: ignore[arg-type]
        )

    # ----------------------------------------------------------------- access
    @property
    def num_frames(self) -> int:
        return self.procedure.num_frames

    def pi_values(self, frame: int) -> dict[str, Logic]:
        return dict(self.pi_frames[frame])

    def specified_bits(self) -> int:
        """Number of care bits (non-X scan and PI values)."""
        bits = sum(1 for v in self.scan_load.values() if v.is_known)
        for frame in self.pi_frames:
            bits += sum(1 for v in frame.values() if v.is_known)
        return bits

    def total_bits(self) -> int:
        bits = len(self.scan_load)
        for frame in self.pi_frames:
            bits += len(frame)
        return bits

    def care_bit_density(self) -> float:
        total = self.total_bits()
        return self.specified_bits() / total if total else 0.0

    # ------------------------------------------------------------------- fill
    def filled(self, rng: random.Random | None = None, value: Logic | None = None) -> "TestPattern":
        """Return a copy with every X replaced (randomly, or by ``value``)."""
        rng = rng or random.Random(0)

        def fill(v: Logic) -> Logic:
            if v.is_known:
                return v
            if value is not None:
                return value
            return Logic.ONE if rng.random() < 0.5 else Logic.ZERO

        if self.cube_scan_load is not None:
            cube = dict(self.cube_scan_load)
        else:
            cube = {k: v for k, v in self.scan_load.items() if v.is_known}
        return TestPattern(
            procedure=self.procedure,
            scan_load={k: fill(v) for k, v in self.scan_load.items()},
            pi_frames=[{k: fill(v) for k, v in frame.items()} for frame in self.pi_frames],
            observe_pos=self.observe_pos,
            expected_unload=dict(self.expected_unload),
            expected_outputs=dict(self.expected_outputs),
            target_faults=list(self.target_faults),
            cube_scan_load=cube,
        )

    def merged_with(self, other: "TestPattern") -> "TestPattern | None":
        """Merge two patterns if all their specified bits are compatible.

        Used by static compaction: two patterns merge when they use the same
        capture procedure and never assign conflicting values to the same scan
        cell or primary input.  Returns ``None`` when they are incompatible.
        """
        if self.procedure.name != other.procedure.name:
            return None
        if self.observe_pos != other.observe_pos:
            return None
        merged_scan = dict(self.scan_load)
        for key, value in other.scan_load.items():
            existing = merged_scan.get(key, Logic.X)
            if existing.is_known and value.is_known and existing is not value:
                return None
            if value.is_known:
                merged_scan[key] = value
        merged_frames: list[dict[str, Logic]] = []
        for mine, theirs in zip(self.pi_frames, other.pi_frames):
            frame = dict(mine)
            for key, value in theirs.items():
                existing = frame.get(key, Logic.X)
                if existing.is_known and value.is_known and existing is not value:
                    return None
                if value.is_known:
                    frame[key] = value
            merged_frames.append(frame)
        def cube_of(pattern: "TestPattern") -> dict[str, Logic]:
            if pattern.cube_scan_load is not None:
                return dict(pattern.cube_scan_load)
            return {k: v for k, v in pattern.scan_load.items() if v.is_known}

        merged_cube = cube_of(self)
        for key, value in cube_of(other).items():
            if value.is_known:
                merged_cube[key] = value
        return TestPattern(
            procedure=self.procedure,
            scan_load=merged_scan,
            pi_frames=merged_frames,
            observe_pos=self.observe_pos,
            target_faults=self.target_faults + other.target_faults,
            cube_scan_load=merged_cube,
        )


@dataclass
class PatternSetStats:
    """Summary statistics of a pattern set."""

    num_patterns: int
    per_procedure: dict[str, int]
    per_capture_domain: dict[str, int]
    average_care_bit_density: float
    inter_domain_patterns: int

    def as_dict(self) -> dict[str, object]:
        return {
            "num_patterns": self.num_patterns,
            "per_procedure": dict(self.per_procedure),
            "per_capture_domain": dict(self.per_capture_domain),
            "average_care_bit_density": self.average_care_bit_density,
            "inter_domain_patterns": self.inter_domain_patterns,
        }


class PatternSet:
    """An ordered collection of test patterns."""

    def __init__(self, patterns: Iterable[TestPattern] = ()) -> None:
        self._patterns: list[TestPattern] = list(patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[TestPattern]:
        return iter(self._patterns)

    def __getitem__(self, index: int) -> TestPattern:
        return self._patterns[index]

    def add(self, pattern: TestPattern) -> int:
        """Append a pattern; returns its index."""
        self._patterns.append(pattern)
        return len(self._patterns) - 1

    def extend(self, patterns: Iterable[TestPattern]) -> None:
        self._patterns.extend(patterns)

    def patterns(self) -> list[TestPattern]:
        return list(self._patterns)

    def stats(self) -> PatternSetStats:
        per_procedure: Counter[str] = Counter()
        per_domain: Counter[str] = Counter()
        inter_domain = 0
        densities: list[float] = []
        for pattern in self._patterns:
            per_procedure[pattern.procedure.name] += 1
            for domain in sorted(pattern.procedure.capture_domains):
                per_domain[domain] += 1
            if pattern.procedure.is_inter_domain:
                inter_domain += 1
            densities.append(pattern.care_bit_density())
        avg = sum(densities) / len(densities) if densities else 0.0
        return PatternSetStats(
            num_patterns=len(self._patterns),
            per_procedure=dict(per_procedure),
            per_capture_domain=dict(per_domain),
            average_care_bit_density=avg,
            inter_domain_patterns=inter_domain,
        )
