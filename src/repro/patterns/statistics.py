"""Cross-experiment pattern/coverage statistics and Table 1 style reporting.

The functions here consume :class:`~repro.atpg.generator.AtpgResult` objects
(one per experiment) and produce the comparison artefacts the paper reports:
the Table 1 rows, the relative pattern-count factors, and the coverage deltas
between configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a package cycle)
    from repro.atpg.generator import AtpgResult


@dataclass(frozen=True)
class TableRow:
    """One row of the Table 1 reproduction."""

    experiment: str
    description: str
    test_coverage: float
    pattern_count: int

    def formatted(self) -> str:
        return (
            f"{self.experiment:<4} {self.description:<52} "
            f"{self.test_coverage:7.2f}% {self.pattern_count:9d}"
        )


def table_rows(results: Mapping[str, "AtpgResult"], descriptions: Mapping[str, str]) -> list[TableRow]:
    """Build Table 1 rows from per-experiment results."""
    rows: list[TableRow] = []
    for key in sorted(results):
        result = results[key]
        rows.append(
            TableRow(
                experiment=key,
                description=descriptions.get(key, result.setup_name),
                test_coverage=result.coverage.test_coverage,
                pattern_count=result.pattern_count,
            )
        )
    return rows


def format_table(rows: Sequence[TableRow], title: str = "Table 1: Experimental Results") -> str:
    """Render rows as a fixed-width text table."""
    header = f"{'Exp':<4} {'Configuration':<52} {'TC':>8} {'Patterns':>10}"
    lines = [title, "=" * len(header), header, "-" * len(header)]
    lines.extend(row.formatted() for row in rows)
    lines.append("=" * len(header))
    return "\n".join(lines)


@dataclass(frozen=True)
class ShapeChecks:
    """The qualitative relations the paper reports between experiments.

    Every field is a boolean outcome of one claim from Section 5.2 /
    the conclusions; the EXPERIMENTS.md document records these per run.
    """

    stuck_at_above_transition: bool
    transition_patterns_factor_over_stuck_at: float
    onchip_coverage_drop_vs_reference: float
    enhanced_cpf_recovers_coverage: bool
    constrained_external_below_reference: float
    onchip_pattern_factor_over_reference: float

    def as_dict(self) -> dict[str, object]:
        return dict(self.__dict__)


def shape_checks(results: Mapping[str, "AtpgResult"]) -> ShapeChecks:
    """Evaluate the paper's qualitative claims on a set of experiment results.

    Expects keys "a".."e" as produced by
    :func:`repro.core.experiments.run_all_experiments`.
    """
    a, b, c, d, e = (results[k] for k in ("a", "b", "c", "d", "e"))
    stuck_cov = a.coverage.test_coverage
    ref_cov = b.coverage.test_coverage
    return ShapeChecks(
        stuck_at_above_transition=stuck_cov > ref_cov,
        transition_patterns_factor_over_stuck_at=(
            b.pattern_count / a.pattern_count if a.pattern_count else float("inf")
        ),
        onchip_coverage_drop_vs_reference=ref_cov - c.coverage.test_coverage,
        enhanced_cpf_recovers_coverage=d.coverage.test_coverage >= c.coverage.test_coverage,
        constrained_external_below_reference=ref_cov - e.coverage.test_coverage,
        onchip_pattern_factor_over_reference=(
            c.pattern_count / b.pattern_count if b.pattern_count else float("inf")
        ),
    )
