"""Disk-spilling pattern stores — memory-bounded streaming at SoC scale.

At 10⁵ gates a scan load carries tens of thousands of cells; holding a full
campaign's pattern sets in memory is what actually bounds design size, not
simulation speed.  :class:`PatternStore` spills patterns to disk behind one
path-shaped constructor with the same two stdlib backends as
:class:`repro.volume.store.FailLogStore`:

* ``*.jsonl`` — an append-only JSON-lines file, one pattern per line: the
  archival/interchange format;
* anything else — a sqlite3 database: the random-access format, which is
  what makes the lazy :class:`StoredPatternView` cheap.

Patterns are grouped by ``(design, scenario)`` and kept in insertion order
within a group — the order a :class:`~repro.patterns.pattern.PatternSet`
would have.  :meth:`PatternStore.view` returns a sequence-shaped *lazy*
view over a group: ``len()``/indexing/iteration without materializing
payloads, so a :class:`~repro.engine.frame.FrameSimulator` batch loop
touches one batch of patterns at a time while the rest stay on disk.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from collections import Counter
from pathlib import Path
from typing import Iterable, Iterator

from repro.patterns.pattern import PatternSet, PatternSetStats, TestPattern


class PatternStore:
    """Scan patterns by the thousand behind one path.

    The backend is picked from the suffix: ``.jsonl`` appends JSON lines,
    anything else opens (creating if needed) a sqlite3 database.  Both
    honor the same contract: insertion-ordered iteration per
    ``(design, scenario)`` group and lazy sequence views — so sessions,
    campaigns and the runtime can swap formats freely.
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self.kind = "jsonl" if self.path.suffix == ".jsonl" else "sqlite"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Serializes jsonl appends from concurrent thread-backend scenarios
        # (sqlite brings its own locking; cross-process campaigns should
        # prefer the sqlite backend).
        self._write_lock = threading.Lock()
        if self.kind == "sqlite":
            self._init_sqlite()
        elif not self.path.exists():
            self.path.touch()

    def _init_sqlite(self) -> None:
        with self._connect() as connection:
            connection.execute(
                "CREATE TABLE IF NOT EXISTS patterns ("
                "  id INTEGER PRIMARY KEY AUTOINCREMENT,"
                "  design TEXT NOT NULL,"
                "  scenario TEXT NOT NULL,"
                "  payload TEXT NOT NULL)"
            )
            connection.execute(
                "CREATE INDEX IF NOT EXISTS patterns_group"
                " ON patterns (design, scenario, id)"
            )

    def __getstate__(self) -> dict[str, object]:
        # Views cross process boundaries (cached runs, worker returns);
        # locks do not — each process gets a fresh one.
        state = dict(self.__dict__)
        del state["_write_lock"]
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._write_lock = threading.Lock()

    # ----------------------------------------------------------------- backend
    def _connect(self) -> sqlite3.Connection:
        return sqlite3.connect(self.path)

    def _jsonl_rows(self) -> Iterator[dict[str, object]]:
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)

    @staticmethod
    def _row_dict(design: str, scenario: str, pattern: TestPattern) -> dict[str, object]:
        return {
            "design": design,
            "scenario": scenario,
            "pattern": pattern.to_dict(),
        }

    # ------------------------------------------------------------------- write
    def append(
        self, pattern: TestPattern, *, design: str = "", scenario: str = ""
    ) -> int:
        """Store one pattern; returns its index within its group."""
        self.extend([pattern], design=design, scenario=scenario)
        return self.count(design=design, scenario=scenario) - 1

    def extend(
        self,
        patterns: Iterable[TestPattern],
        *,
        design: str = "",
        scenario: str = "",
    ) -> int:
        """Store patterns in order; returns how many were written.

        The iterable is consumed lazily — an ATPG generator can stream
        straight to disk without a full in-memory pattern list.
        """
        count = 0
        if self.kind == "jsonl":
            with self._write_lock, self.path.open("a", encoding="utf-8") as handle:
                for pattern in patterns:
                    row = self._row_dict(design, scenario, pattern)
                    handle.write(json.dumps(row, sort_keys=True) + "\n")
                    count += 1
        else:
            with self._connect() as connection:
                for pattern in patterns:
                    connection.execute(
                        "INSERT INTO patterns (design, scenario, payload)"
                        " VALUES (?, ?, ?)",
                        (
                            design,
                            scenario,
                            json.dumps(pattern.to_dict(), sort_keys=True),
                        ),
                    )
                    count += 1
        return count

    def spill(
        self, patterns: PatternSet, *, design: str = "", scenario: str = ""
    ) -> int:
        """Spill a whole :class:`PatternSet` into the store."""
        return self.extend(iter(patterns), design=design, scenario=scenario)

    # -------------------------------------------------------------------- read
    def groups(self) -> list[tuple[str, str]]:
        """Distinct ``(design, scenario)`` groups, first-appearance order."""
        seen: dict[tuple[str, str], None] = {}
        if self.kind == "jsonl":
            for row in self._jsonl_rows():
                seen.setdefault((str(row["design"]), str(row["scenario"])), None)
        else:
            with self._connect() as connection:
                rows = connection.execute(
                    "SELECT design, scenario, MIN(id) FROM patterns"
                    " GROUP BY design, scenario ORDER BY MIN(id)"
                ).fetchall()
            for row in rows:
                seen.setdefault((row[0], row[1]), None)
        return list(seen)

    def count(self, design: str | None = None, scenario: str | None = None) -> int:
        if self.kind == "jsonl":
            return sum(
                1
                for row in self._jsonl_rows()
                if (design is None or row["design"] == design)
                and (scenario is None or row["scenario"] == scenario)
            )
        query = "SELECT COUNT(*) FROM patterns"
        clauses, params = self._filters(design, scenario)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        with self._connect() as connection:
            (count,) = connection.execute(query, params).fetchone()
        return int(count)

    def __len__(self) -> int:
        return self.count()

    def __iter__(self) -> Iterator[TestPattern]:
        return iter(self.view())

    @staticmethod
    def _filters(
        design: str | None, scenario: str | None
    ) -> tuple[list[str], list[str]]:
        clauses: list[str] = []
        params: list[str] = []
        if design is not None:
            clauses.append("design = ?")
            params.append(design)
        if scenario is not None:
            clauses.append("scenario = ?")
            params.append(scenario)
        return clauses, params

    def view(
        self, design: str | None = None, scenario: str | None = None
    ) -> "StoredPatternView":
        """A lazy, sequence-shaped view over one group (or everything)."""
        return StoredPatternView(self, design=design, scenario=scenario)

    def load(
        self, design: str | None = None, scenario: str | None = None
    ) -> PatternSet:
        """Materialize a group back into an in-memory :class:`PatternSet`."""
        return PatternSet(iter(self.view(design=design, scenario=scenario)))

    # ------------------------------------------------------------- interchange
    def export_jsonl(self, path: "Path | str") -> int:
        """Dump every stored pattern to a JSON-lines file; returns the count."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        count = 0
        with target.open("w", encoding="utf-8") as handle:
            if self.kind == "jsonl":
                for row in self._jsonl_rows():
                    handle.write(json.dumps(row, sort_keys=True) + "\n")
                    count += 1
            else:
                with self._connect() as connection:
                    rows = connection.execute(
                        "SELECT design, scenario, payload FROM patterns ORDER BY id"
                    )
                    for design, scenario, payload in rows:
                        row = {
                            "design": design,
                            "scenario": scenario,
                            "pattern": json.loads(payload),
                        }
                        handle.write(json.dumps(row, sort_keys=True) + "\n")
                        count += 1
        return count

    def import_jsonl(self, path: "Path | str") -> int:
        """Load every pattern of a JSON-lines dump; returns the count."""
        count = 0
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                pattern = TestPattern.from_dict(row["pattern"])
                self.extend(
                    [pattern],
                    design=str(row.get("design", "")),
                    scenario=str(row.get("scenario", "")),
                )
                count += 1
        return count


class StoredPatternView:
    """Lazy sequence of one group's patterns, payloads fetched on demand.

    Mirrors the read side of :class:`~repro.patterns.pattern.PatternSet`
    (``len``/indexing/iteration/``patterns()``/``stats()``), so batch loops
    written against pattern sets — notably
    ``FrameSimulator.iter_batches`` — run unchanged while only the
    patterns of the current batch are resident.

    The sqlite backend keeps just the group's row ids in memory; the jsonl
    backend keeps byte offsets.  Both are built once, on first access.
    """

    def __init__(
        self,
        store: PatternStore,
        design: str | None = None,
        scenario: str | None = None,
    ) -> None:
        self._store = store
        self._design = design
        self._scenario = scenario
        self._keys: list[int] | None = None  # row ids (sqlite) / offsets (jsonl)

    # ------------------------------------------------------------------ keying
    def _index(self) -> list[int]:
        if self._keys is not None:
            return self._keys
        if self._store.kind == "jsonl":
            keys: list[int] = []
            with self._store.path.open("rb") as handle:
                offset = handle.tell()
                for raw in handle:
                    line = raw.strip()
                    if line and self._matches(json.loads(line)):
                        keys.append(offset)
                    offset += len(raw)
            self._keys = keys
        else:
            query = "SELECT id FROM patterns"
            clauses, params = PatternStore._filters(self._design, self._scenario)
            if clauses:
                query += " WHERE " + " AND ".join(clauses)
            query += " ORDER BY id"
            with self._store._connect() as connection:
                self._keys = [row[0] for row in connection.execute(query, params)]
        return self._keys

    def _matches(self, row: dict[str, object]) -> bool:
        if self._design is not None and row["design"] != self._design:
            return False
        if self._scenario is not None and row["scenario"] != self._scenario:
            return False
        return True

    def _fetch(self, key: int) -> TestPattern:
        if self._store.kind == "jsonl":
            with self._store.path.open("rb") as handle:
                handle.seek(key)
                row = json.loads(handle.readline().decode("utf-8"))
            return TestPattern.from_dict(row["pattern"])
        with self._store._connect() as connection:
            row = connection.execute(
                "SELECT payload FROM patterns WHERE id = ?", (key,)
            ).fetchone()
        if row is None:
            raise KeyError(f"pattern row {key} disappeared from {self._store.path}")
        return TestPattern.from_dict(json.loads(row[0]))

    # ---------------------------------------------------------------- sequence
    def __len__(self) -> int:
        return len(self._index())

    def __getitem__(self, index: int) -> TestPattern:
        return self._fetch(self._index()[index])

    def __iter__(self) -> Iterator[TestPattern]:
        for key in self._index():
            yield self._fetch(key)

    def patterns(self) -> list[TestPattern]:
        return list(self)

    def stats(self) -> PatternSetStats:
        """Streaming equivalent of :meth:`PatternSet.stats`."""
        per_procedure: Counter[str] = Counter()
        per_domain: Counter[str] = Counter()
        inter_domain = 0
        total = 0
        density_sum = 0.0
        for pattern in self:
            per_procedure[pattern.procedure.name] += 1
            for domain in sorted(pattern.procedure.capture_domains):
                per_domain[domain] += 1
            if pattern.procedure.is_inter_domain:
                inter_domain += 1
            density_sum += pattern.care_bit_density()
            total += 1
        return PatternSetStats(
            num_patterns=total,
            per_procedure=dict(per_procedure),
            per_capture_domain=dict(per_domain),
            average_care_bit_density=density_sum / total if total else 0.0,
            inter_domain_patterns=inter_domain,
        )
