"""Test patterns, application procedures, ATE export and statistics."""

from repro.patterns.ate import (
    VectorMemoryReport,
    export_stil,
    parse_pattern_text,
    parse_stil_pattern_count,
    vector_memory_report,
)
from repro.patterns.pattern import PatternSet, PatternSetStats, TestPattern
from repro.patterns.procedures import (
    PatternApplication,
    PatternExecution,
    elaborate_pattern,
    execute_pattern,
)
from repro.patterns.statistics import (
    ShapeChecks,
    TableRow,
    format_table,
    shape_checks,
    table_rows,
)

__all__ = [
    "PatternApplication",
    "PatternExecution",
    "PatternSet",
    "PatternSetStats",
    "ShapeChecks",
    "TableRow",
    "TestPattern",
    "VectorMemoryReport",
    "elaborate_pattern",
    "execute_pattern",
    "export_stil",
    "format_table",
    "parse_pattern_text",
    "parse_stil_pattern_count",
    "shape_checks",
    "table_rows",
    "vector_memory_report",
]
