"""ATE pattern export and tester vector-memory accounting.

Patterns are written in a compact STIL-flavoured text format: a signal
declaration header, one ``Procedures`` block per named capture procedure
(carrying the OCC protocol that reproduces its internal pulses from scan_en /
scan_clk), and one ``Pattern`` block per test with per-chain load/unload
strings.  The accounting model estimates the tester vector memory the set
occupies — the quantity the paper says forces the "more extensive use of an
on-chip [compression] technique" once transition pattern counts grow.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.clocking.named_capture import CapturePulse, NamedCaptureProcedure
from repro.clocking.occ import AteAction, OccController
from repro.dft.scan import ScanArchitecture
from repro.patterns.pattern import PatternSet, TestPattern
from repro.simulation.logic import Logic


def _bits(values: Iterable[Logic]) -> str:
    return "".join(str(v) if v.is_known else "X" for v in values)


@dataclass
class VectorMemoryReport:
    """Tester memory consumption estimate for one pattern set."""

    num_patterns: int
    chain_length: int
    scan_channels: int
    tester_cycles: int
    stimulus_bits: int
    response_bits: int

    @property
    def total_bits(self) -> int:
        return self.stimulus_bits + self.response_bits

    @property
    def total_megabits(self) -> float:
        return self.total_bits / 1e6

    def fits_in(self, memory_megabits: float) -> bool:
        return self.total_megabits <= memory_megabits


def vector_memory_report(
    patterns: PatternSet | Sequence[TestPattern],
    scan: ScanArchitecture,
    occ: OccController,
    external_channels: int | None = None,
) -> VectorMemoryReport:
    """Estimate the ATE vector memory a pattern set occupies.

    Args:
        patterns: The pattern set.
        scan: Scan architecture (chain count/length).
        occ: OCC controller (capture protocol overhead).
        external_channels: Number of tester scan channels; defaults to the
            number of chains (no compression).  With EDT the channel count is
            much smaller and the report shrinks accordingly.
    """
    items = list(patterns)
    channels = external_channels if external_channels is not None else scan.num_chains
    chain_length = scan.max_chain_length
    cycles = 0
    for pattern in items:
        cycles += occ.tester_cycles(pattern.procedure, chain_length)
    stimulus = cycles * channels
    response = cycles * channels
    return VectorMemoryReport(
        num_patterns=len(items),
        chain_length=chain_length,
        scan_channels=channels,
        tester_cycles=cycles,
        stimulus_bits=stimulus,
        response_bits=response,
    )


def export_stil(
    patterns: PatternSet | Sequence[TestPattern],
    scan: ScanArchitecture,
    occ: OccController,
    design_name: str = "dut",
) -> str:
    """Serialize a pattern set to the STIL-flavoured text format."""
    items = list(patterns)
    lines: list[str] = []
    lines.append(f'STIL 1.0; // written by repro.patterns.ate for "{design_name}"')
    lines.append("Signals {")
    for chain in scan.chains:
        lines.append(f"  {chain.scan_in} In; {chain.scan_out} Out;")
    lines.append(f"  {occ.scan_clk} In; {occ.scan_en} In; {occ.test_mode} In;")
    lines.append("}")

    procedures = {}
    for pattern in items:
        procedures.setdefault(pattern.procedure.name, pattern.procedure)
    lines.append("Procedures {")
    for name, procedure in sorted(procedures.items()):
        lines.append(f"  {name} {{ // {procedure.describe()}")
        for step in occ.capture_protocol(procedure):
            if step.action is AteAction.SET_SIGNAL:
                lines.append(f"    Force {step.signal} {step.value}; // {step.comment}")
            elif step.action is AteAction.PULSE_SCAN_CLK:
                lines.append(f"    Pulse {step.signal}; // {step.comment}")
            elif step.action is AteAction.WAIT_PLL_CYCLES:
                lines.append(f"    Wait {step.count}; // {step.comment}")
            elif step.action is AteAction.STROBE_OUTPUTS:
                lines.append(f"    Measure; // {step.comment}")
        lines.append("  }")
    lines.append("}")

    lines.append("PatternBurst all_patterns {")
    for index, pattern in enumerate(items):
        lines.append(f"  Pattern p{index} {{")
        lines.append(f"    Call load_unload {{")
        for chain in scan.chains:
            load = _bits(chain.load_sequence(pattern.scan_load, fill=Logic.ZERO))
            unload = _bits(
                pattern.expected_unload.get(cell, Logic.X) for cell in reversed(chain.cells)
            )
            lines.append(f"      {chain.scan_in}={load}; {chain.scan_out}={unload};")
        lines.append("    }")
        pi_values = pattern.pi_frames[0] if pattern.pi_frames else {}
        forces = " ".join(
            f"{net}={value}" for net, value in sorted(pi_values.items()) if value.is_known
        )
        if forces:
            lines.append(f"    Force {{ {forces} }}")
        lines.append(f"    Call {pattern.procedure.name};")
        if pattern.observe_pos and pattern.expected_outputs:
            measures = " ".join(
                f"{net}={value}"
                for net, value in sorted(pattern.expected_outputs.items())
                if value.is_known
            )
            if measures:
                lines.append(f"    Measure {{ {measures} }}")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def parse_stil_pattern_count(text: str) -> int:
    """Count the patterns in an exported STIL text (round-trip sanity check)."""
    return sum(1 for line in text.splitlines() if line.strip().startswith("Pattern p"))


# --------------------------------------------------------------------------
# Parsing (the inverse of export_stil)
# --------------------------------------------------------------------------
_PROC_HEADER_RE = re.compile(r"^(?P<name>\S+) \{ // (?P<describe>.+)$")
_PULSE_RE = re.compile(r"P\d+\[(?P<domains>[^ \]]+) @(?P<speed>speed|slow)\]")
_CHAIN_LINE_RE = re.compile(
    r"^(?P<scan_in>\S+)=(?P<load>[01X]*); (?P<scan_out>\S+)=(?P<unload>[01X]*);$"
)
_ASSIGN_RE = re.compile(r"(?P<net>\S+)=(?P<value>[01X])")


def _logic_of(char: str) -> Logic:
    if char == "0":
        return Logic.ZERO
    if char == "1":
        return Logic.ONE
    return Logic.X


def _procedure_from_describe(text: str) -> NamedCaptureProcedure:
    """Rebuild a capture procedure from its ``describe()`` line.

    ``describe()`` (the comment ``export_stil`` writes next to every
    procedure header) is a complete serialization of the behavioral clock
    model: name, pulse order, per-pulse domain sets and at-speed flags.
    """
    name, sep, rest = text.partition(": ")
    if not sep:
        raise ValueError(f"malformed procedure comment {text!r}")
    pulses = tuple(
        CapturePulse(
            domains=frozenset(match["domains"].split("+")),
            at_speed=match["speed"] == "speed",
        )
        for match in _PULSE_RE.finditer(rest)
    )
    if not pulses:
        raise ValueError(f"procedure comment {text!r} describes no pulses")
    return NamedCaptureProcedure(name=name.strip(), pulses=pulses)


def parse_pattern_text(
    text: str,
    scan: ScanArchitecture,
    procedures: Sequence[NamedCaptureProcedure] = (),
) -> PatternSet:
    """Parse an exported STIL-flavoured text back into a :class:`PatternSet`.

    The inverse of :func:`export_stil`: re-exporting the parsed set with the
    same scan architecture and OCC controller reproduces the input byte for
    byte.  Capture procedures are reconstructed from the ``describe()``
    comments in the ``Procedures`` block; pass ``procedures`` to reuse
    existing objects (matched by name) instead.

    Lossy corners (by construction of the text format): ``target_faults``
    and ``cube_scan_load`` are not serialized, primary-input values are
    replicated across capture frames (the hold-PIs discipline every
    exported on-chip-clocked pattern obeys), and a pattern exported with
    masked outputs parses back with ``observe_pos=True`` and no expected
    outputs — which re-exports identically.
    """
    chain_of_scan_in = {chain.scan_in: chain for chain in scan.chains}
    known_procedures: dict[str, NamedCaptureProcedure] = {
        procedure.name: procedure for procedure in procedures
    }
    parsed_procedures: dict[str, NamedCaptureProcedure] = {}

    patterns: list[TestPattern] = []
    section = None  # None | "procedures" | "burst"
    current: dict | None = None

    def commit(record: dict) -> None:
        name = record["procedure"]
        procedure = known_procedures.get(name) or parsed_procedures.get(name)
        if procedure is None:
            raise ValueError(f"pattern references undeclared procedure {name!r}")
        patterns.append(
            TestPattern(
                procedure=procedure,
                scan_load=record["scan_load"],
                pi_frames=[dict(record["forces"]) for _ in range(procedure.num_frames)],
                observe_pos=True,
                expected_unload=record["expected_unload"],
                expected_outputs=record["expected_outputs"],
            )
        )

    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("Procedures {"):
            section = "procedures"
            continue
        if line.startswith("PatternBurst "):
            section = "burst"
            continue
        if section == "procedures":
            match = _PROC_HEADER_RE.match(line)
            if match:
                procedure = _procedure_from_describe(match["describe"])
                parsed_procedures[procedure.name] = procedure
            continue
        if section != "burst":
            continue
        if line.startswith("Pattern p"):
            current = {
                "procedure": None,
                "scan_load": {},
                "expected_unload": {},
                "forces": {},
                "expected_outputs": {},
            }
            continue
        if current is None:
            continue
        match = _CHAIN_LINE_RE.match(line)
        if match:
            chain = chain_of_scan_in.get(match["scan_in"])
            if chain is None:
                raise ValueError(
                    f"scan-in pin {match['scan_in']!r} is not in the given scan "
                    f"architecture — pattern text and design do not match"
                )
            load, unload = match["load"], match["unload"]
            if len(load) != chain.length or len(unload) != chain.length:
                raise ValueError(
                    f"chain {chain.name!r} expects {chain.length} bits, got "
                    f"load={len(load)} unload={len(unload)}"
                )
            # The first bit shifted in ends up in the last cell (and the
            # first bit shifted out came from it): both strings are the cell
            # values in reverse chain order.
            for offset, cell in enumerate(reversed(chain.cells)):
                value = _logic_of(load[offset])
                if value.is_known:
                    current["scan_load"][cell] = value
                expected = _logic_of(unload[offset])
                if expected.is_known:
                    current["expected_unload"][cell] = expected
            continue
        if line.startswith("Force { ") and line.endswith(" }"):
            for match in _ASSIGN_RE.finditer(line[len("Force { "):-2]):
                current["forces"][match["net"]] = _logic_of(match["value"])
            continue
        if line.startswith("Measure { ") and line.endswith(" }"):
            for match in _ASSIGN_RE.finditer(line[len("Measure { "):-2]):
                current["expected_outputs"][match["net"]] = _logic_of(match["value"])
            continue
        if line.startswith("Call ") and line.endswith(";"):
            current["procedure"] = line[len("Call "):-1].strip()
            continue
        if line == "}" and current is not None and current["procedure"] is not None:
            commit(current)
            current = None
    return PatternSet(patterns)
