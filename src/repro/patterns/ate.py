"""ATE pattern export and tester vector-memory accounting.

Patterns are written in a compact STIL-flavoured text format: a signal
declaration header, one ``Procedures`` block per named capture procedure
(carrying the OCC protocol that reproduces its internal pulses from scan_en /
scan_clk), and one ``Pattern`` block per test with per-chain load/unload
strings.  The accounting model estimates the tester vector memory the set
occupies — the quantity the paper says forces the "more extensive use of an
on-chip [compression] technique" once transition pattern counts grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.clocking.occ import AteAction, OccController
from repro.dft.scan import ScanArchitecture
from repro.patterns.pattern import PatternSet, TestPattern
from repro.simulation.logic import Logic


def _bits(values: Iterable[Logic]) -> str:
    return "".join(str(v) if v.is_known else "X" for v in values)


@dataclass
class VectorMemoryReport:
    """Tester memory consumption estimate for one pattern set."""

    num_patterns: int
    chain_length: int
    scan_channels: int
    tester_cycles: int
    stimulus_bits: int
    response_bits: int

    @property
    def total_bits(self) -> int:
        return self.stimulus_bits + self.response_bits

    @property
    def total_megabits(self) -> float:
        return self.total_bits / 1e6

    def fits_in(self, memory_megabits: float) -> bool:
        return self.total_megabits <= memory_megabits


def vector_memory_report(
    patterns: PatternSet | Sequence[TestPattern],
    scan: ScanArchitecture,
    occ: OccController,
    external_channels: int | None = None,
) -> VectorMemoryReport:
    """Estimate the ATE vector memory a pattern set occupies.

    Args:
        patterns: The pattern set.
        scan: Scan architecture (chain count/length).
        occ: OCC controller (capture protocol overhead).
        external_channels: Number of tester scan channels; defaults to the
            number of chains (no compression).  With EDT the channel count is
            much smaller and the report shrinks accordingly.
    """
    items = list(patterns)
    channels = external_channels if external_channels is not None else scan.num_chains
    chain_length = scan.max_chain_length
    cycles = 0
    for pattern in items:
        cycles += occ.tester_cycles(pattern.procedure, chain_length)
    stimulus = cycles * channels
    response = cycles * channels
    return VectorMemoryReport(
        num_patterns=len(items),
        chain_length=chain_length,
        scan_channels=channels,
        tester_cycles=cycles,
        stimulus_bits=stimulus,
        response_bits=response,
    )


def export_stil(
    patterns: PatternSet | Sequence[TestPattern],
    scan: ScanArchitecture,
    occ: OccController,
    design_name: str = "dut",
) -> str:
    """Serialize a pattern set to the STIL-flavoured text format."""
    items = list(patterns)
    lines: list[str] = []
    lines.append(f'STIL 1.0; // written by repro.patterns.ate for "{design_name}"')
    lines.append("Signals {")
    for chain in scan.chains:
        lines.append(f"  {chain.scan_in} In; {chain.scan_out} Out;")
    lines.append(f"  {occ.scan_clk} In; {occ.scan_en} In; {occ.test_mode} In;")
    lines.append("}")

    procedures = {}
    for pattern in items:
        procedures.setdefault(pattern.procedure.name, pattern.procedure)
    lines.append("Procedures {")
    for name, procedure in sorted(procedures.items()):
        lines.append(f"  {name} {{ // {procedure.describe()}")
        for step in occ.capture_protocol(procedure):
            if step.action is AteAction.SET_SIGNAL:
                lines.append(f"    Force {step.signal} {step.value}; // {step.comment}")
            elif step.action is AteAction.PULSE_SCAN_CLK:
                lines.append(f"    Pulse {step.signal}; // {step.comment}")
            elif step.action is AteAction.WAIT_PLL_CYCLES:
                lines.append(f"    Wait {step.count}; // {step.comment}")
            elif step.action is AteAction.STROBE_OUTPUTS:
                lines.append(f"    Measure; // {step.comment}")
        lines.append("  }")
    lines.append("}")

    lines.append("PatternBurst all_patterns {")
    for index, pattern in enumerate(items):
        lines.append(f"  Pattern p{index} {{")
        lines.append(f"    Call load_unload {{")
        for chain in scan.chains:
            load = _bits(chain.load_sequence(pattern.scan_load, fill=Logic.ZERO))
            unload = _bits(
                pattern.expected_unload.get(cell, Logic.X) for cell in reversed(chain.cells)
            )
            lines.append(f"      {chain.scan_in}={load}; {chain.scan_out}={unload};")
        lines.append("    }")
        pi_values = pattern.pi_frames[0] if pattern.pi_frames else {}
        forces = " ".join(
            f"{net}={value}" for net, value in sorted(pi_values.items()) if value.is_known
        )
        if forces:
            lines.append(f"    Force {{ {forces} }}")
        lines.append(f"    Call {pattern.procedure.name};")
        if pattern.observe_pos and pattern.expected_outputs:
            measures = " ".join(
                f"{net}={value}"
                for net, value in sorted(pattern.expected_outputs.items())
                if value.is_known
            )
            if measures:
                lines.append(f"    Measure {{ {measures} }}")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def parse_stil_pattern_count(text: str) -> int:
    """Count the patterns in an exported STIL text (round-trip sanity check)."""
    return sum(1 for line in text.splitlines() if line.strip().startswith("Pattern p"))
