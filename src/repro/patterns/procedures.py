"""Test procedures: how a pattern is physically applied to the device.

This module turns abstract :class:`~repro.patterns.pattern.TestPattern`
objects into concrete application recipes against a scan architecture and an
OCC controller — the shift sequences per chain, the capture protocol steps,
and (for verification) a full execution on the cycle-accurate sequential
simulator including real shifting through the chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.clocking.occ import AteStep, OccController
from repro.dft.scan import ScanArchitecture
from repro.patterns.pattern import TestPattern
from repro.simulation.logic import Logic
from repro.simulation.sequential import SequentialSimulator


@dataclass
class PatternApplication:
    """Fully elaborated application recipe for one pattern."""

    pattern: TestPattern
    load_sequences: dict[str, list[Logic]]
    protocol: list[AteStep]
    tester_cycles: int


def elaborate_pattern(
    pattern: TestPattern,
    scan: ScanArchitecture,
    occ: OccController,
) -> PatternApplication:
    """Compute per-chain shift data and the ATE protocol for one pattern."""
    load = scan.load_sequences(pattern.scan_load)
    protocol = occ.pattern_protocol(pattern.procedure, scan.max_chain_length)
    cycles = occ.tester_cycles(pattern.procedure, scan.max_chain_length)
    return PatternApplication(
        pattern=pattern,
        load_sequences=load,
        protocol=protocol,
        tester_cycles=cycles,
    )


@dataclass
class PatternExecution:
    """Result of executing one pattern on the sequential simulator."""

    captured_state: dict[str, Logic]
    outputs: dict[str, Logic]
    unload_streams: dict[str, list[Logic]]


def execute_pattern(
    simulator: SequentialSimulator,
    pattern: TestPattern,
    scan: ScanArchitecture,
    clock_nets_of_domains: Mapping[str, str],
    shift_clock_nets: Sequence[str],
    pin_constraints: Mapping[str, Logic] | None = None,
    full_shift: bool = False,
) -> PatternExecution:
    """Apply one pattern to a netlist-level simulator, honest shift included.

    Args:
        simulator: A sequential simulator over the scan-inserted netlist.
        pattern: The pattern to apply.
        scan: The scan architecture (chains, scan-enable).
        clock_nets_of_domains: Domain name -> clock net to pulse during capture.
        shift_clock_nets: Clock nets pulsed during shifting (usually every
            domain clock, all fed by the slow scan clock while scan_en is 1).
        pin_constraints: Values held on constrained pins during capture.
        full_shift: When True the scan load is applied by really shifting bit
            by bit through the chains (slow but faithful); when False the
            state is loaded directly (fast path used by most tests).

    Returns:
        The captured state, output values and (when ``full_shift``) the
        unloaded bit streams per chain.
    """
    constraints = dict(pin_constraints or {})
    simulator.reset_state()

    if full_shift and scan.chains:
        sequences = scan.load_sequences(pattern.scan_load)
        chains = [list(chain.cells) for chain in scan.chains]
        bits = [sequences[chain.name] for chain in scan.chains]
        simulator.set_inputs(constraints)
        simulator.scan_shift(chains, bits, scan.scan_enable, shift_clock_nets)
    else:
        load = {
            cell: value if value.is_known else Logic.ZERO
            for cell, value in pattern.scan_load.items()
        }
        simulator.load_state(load)

    simulator.set_inputs({scan.scan_enable: Logic.ZERO})
    simulator.set_inputs(constraints)

    for frame_index, pulse in enumerate(pattern.procedure.pulses):
        frame_inputs = pattern.pi_frames[min(frame_index, len(pattern.pi_frames) - 1)]
        known_inputs = {net: v for net, v in frame_inputs.items() if v.is_known}
        simulator.set_inputs(known_inputs)
        clock_nets = {
            clock_nets_of_domains[domain]
            for domain in pulse.domains
            if domain in clock_nets_of_domains
        }
        simulator.pulse(clock_nets)

    outputs = simulator.outputs()
    captured = {
        name: value
        for name, value in simulator.read_state().items()
        if name in {cell for chain in scan.chains for cell in chain.cells}
    }

    unload_streams: dict[str, list[Logic]] = {}
    if full_shift and scan.chains:
        chains = [list(chain.cells) for chain in scan.chains]
        zero_bits = [[Logic.ZERO] * len(chain.cells) for chain in scan.chains]
        shifted = simulator.scan_shift(chains, zero_bits, scan.scan_enable, shift_clock_nets)
        unload_streams = {
            chain.name: shifted[index] for index, chain in enumerate(scan.chains)
        }
    return PatternExecution(
        captured_state=captured,
        outputs=outputs,
        unload_streams=unload_streams,
    )
