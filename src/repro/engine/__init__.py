"""repro.engine — compiled execution backend for simulation and fault sim.

Three pieces:

* :mod:`repro.engine.compile` — lowers a
  :class:`~repro.simulation.model.CircuitModel` once into flat instruction
  tapes (gate-specialized plane evaluators, cached fanout cones), replacing
  the per-call dict walks of the interpreted simulators;
* :mod:`repro.engine.scheduler` — the ``Backend`` protocol (``serial`` /
  ``compiled`` / ``threads`` / ``processes``) and the
  :class:`~repro.engine.scheduler.FaultSimScheduler` that shards fault
  batches across workers and merges detection masks deterministically;
* :mod:`repro.engine.cache` — a persistent content-addressed result store
  keyed on (design fingerprint, scenario fingerprint, engine version).

The fault simulators (:mod:`repro.fault_sim`) and
:class:`~repro.api.session.TestSession` route through this package; the
pre-engine interpreted code paths remain available as the ``serial``
reference backend for equivalence testing.
"""

from repro.engine.cache import (
    CACHE_ENV_VAR,
    ResultCache,
    bp_diagnosis_key,
    campaign_cell_key,
    default_cache_root,
    design_fingerprint,
    design_spec_fingerprint,
    diagnosis_key,
    fail_log_fingerprint,
    scenario_key,
    spec_fingerprint,
)
from repro.engine.compile import ENGINE_VERSION, CompiledCircuit, compile_circuit
from repro.engine.scheduler import (
    BACKENDS,
    Backend,
    FaultSimScheduler,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_factory,
    default_worker_count,
    has_backend_factory,
    register_backend,
    registered_backends,
)

__all__ = [
    "BACKENDS",
    "Backend",
    "backend_factory",
    "has_backend_factory",
    "register_backend",
    "registered_backends",
    "CACHE_ENV_VAR",
    "CompiledCircuit",
    "ENGINE_VERSION",
    "FaultSimScheduler",
    "ProcessBackend",
    "ResultCache",
    "SerialBackend",
    "ThreadBackend",
    "bp_diagnosis_key",
    "campaign_cell_key",
    "compile_circuit",
    "default_cache_root",
    "default_worker_count",
    "design_fingerprint",
    "design_spec_fingerprint",
    "diagnosis_key",
    "fail_log_fingerprint",
    "scenario_key",
    "spec_fingerprint",
]
