"""Kernel compiler: lower a :class:`CircuitModel` into flat execution tapes.

The interpreted simulators (:mod:`repro.simulation.parallel_sim`,
:mod:`repro.fault_sim.stuck_at`) pay three per-call costs on the hot path:

* gate-type dispatch through an ``if``-ladder for every gate evaluation,
* a fresh depth-first ``transitive_fanout`` walk (plus sort) for every
  injected fault, and
* attribute/dict walks over :class:`~repro.simulation.model.Node` records.

:func:`compile_circuit` pays all three once.  The result is a
:class:`CompiledCircuit` holding

* a **simulation tape** — one specialized closure per constant/gate node, in
  topological order, each writing its dual-rail planes straight into the
  batch arrays (common 1-2 input gates are arity-specialized so the inner
  loop does no list building at all);
* per-node **plane evaluators** — ``fn(in0, in1) -> (out0, out1)`` closures
  used for fault injection and cone propagation;
* cached **fanout cones** — for every fault site the level-ordered list of
  ``(index, fanin, evaluator)`` triples its effect can reach, computed once
  and reused by every pattern batch.

Faulty-machine propagation uses version-stamped scratch planes instead of
per-fault dictionaries: planes whose stamp is stale transparently fall back
to the good machine, so injecting the next fault costs one integer increment
instead of clearing state.  The propagation order, event condition and
detection arithmetic replicate the interpreted reference bit for bit — the
equivalence suite (``tests/test_engine_equivalence.py``) holds the compiled
kernels to *identical* detection masks.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.faults.models import StuckAtFault, TransitionFault
from repro.netlist.gates import GateType
from repro.obs.telemetry import active_metrics
from repro.simulation.model import CircuitModel, NodeKind
from repro.simulation.parallel_sim import PackedPatterns

#: Version tag of the compiled-kernel semantics; part of every persistent
#: cache key so stale results are invalidated when the kernels change.
ENGINE_VERSION = "1"

#: ``fn(in0, in1) -> (out0, out1)`` over dual-rail planes, pin order as in
#: ``Node.fanin``.
PlaneEvaluator = Callable[[Sequence[int], Sequence[int]], tuple[int, int]]


def _plane_evaluator(gtype: GateType, arity: int) -> PlaneEvaluator:
    """Build a gate-type (and arity) specialized plane evaluator."""
    if gtype is GateType.BUF:
        return lambda in0, in1: (in0[0], in1[0])
    if gtype is GateType.NOT:
        return lambda in0, in1: (in1[0], in0[0])
    if gtype in (GateType.AND, GateType.NAND):
        invert = gtype is GateType.NAND
        if arity == 2:
            if invert:
                return lambda in0, in1: (in1[0] & in1[1], in0[0] | in0[1])
            return lambda in0, in1: (in0[0] | in0[1], in1[0] & in1[1])

        def eval_and(in0: Sequence[int], in1: Sequence[int]) -> tuple[int, int]:
            out0, out1 = in0[0], in1[0]
            for a0, a1 in zip(in0[1:], in1[1:]):
                out0 |= a0
                out1 &= a1
            return (out1, out0) if invert else (out0, out1)

        return eval_and
    if gtype in (GateType.OR, GateType.NOR):
        invert = gtype is GateType.NOR
        if arity == 2:
            if invert:
                return lambda in0, in1: (in1[0] | in1[1], in0[0] & in0[1])
            return lambda in0, in1: (in0[0] & in0[1], in1[0] | in1[1])

        def eval_or(in0: Sequence[int], in1: Sequence[int]) -> tuple[int, int]:
            out0, out1 = in0[0], in1[0]
            for a0, a1 in zip(in0[1:], in1[1:]):
                out0 &= a0
                out1 |= a1
            return (out1, out0) if invert else (out0, out1)

        return eval_or
    if gtype in (GateType.XOR, GateType.XNOR):
        invert = gtype is GateType.XNOR

        def eval_xor(in0: Sequence[int], in1: Sequence[int]) -> tuple[int, int]:
            out0, out1 = in0[0], in1[0]
            for b0, b1 in zip(in0[1:], in1[1:]):
                out0, out1 = (out0 & b0) | (out1 & b1), (out0 & b1) | (out1 & b0)
            return (out1, out0) if invert else (out0, out1)

        return eval_xor
    if gtype is GateType.MUX2:
        return lambda in0, in1: (
            (in0[0] & in0[1]) | (in1[0] & in0[2]),
            (in0[0] & in1[1]) | (in1[0] & in1[2]),
        )
    raise ValueError(f"unsupported compiled gate type {gtype!r}")


#: One simulation-tape instruction: writes a node's planes into the batch
#: arrays in place.  ``op(can0, can1, full_mask)``.
TapeOp = Callable[[list[int], list[int], int], None]


def _tape_op(
    kind: NodeKind, index: int, fanin: tuple[int, ...], evaluator: PlaneEvaluator | None
) -> TapeOp:
    """Build one instruction of the good-machine simulation tape."""
    if kind is NodeKind.CONST0:
        def const0(can0: list[int], can1: list[int], full: int) -> None:
            can0[index] = full
            can1[index] = 0

        return const0
    if kind is NodeKind.CONST1:
        def const1(can0: list[int], can1: list[int], full: int) -> None:
            can0[index] = 0
            can1[index] = full

        return const1
    assert evaluator is not None
    if len(fanin) == 1:
        src = fanin[0]

        def unary(can0: list[int], can1: list[int], full: int) -> None:
            out0, out1 = evaluator((can0[src],), (can1[src],))
            can0[index] = out0
            can1[index] = out1

        return unary
    if len(fanin) == 2:
        a, b = fanin

        def binary(can0: list[int], can1: list[int], full: int) -> None:
            out0, out1 = evaluator((can0[a], can0[b]), (can1[a], can1[b]))
            can0[index] = out0
            can1[index] = out1

        return binary

    def nary(can0: list[int], can1: list[int], full: int) -> None:
        out0, out1 = evaluator([can0[i] for i in fanin], [can1[i] for i in fanin])
        can0[index] = out0
        can1[index] = out1

    return nary


class _Scratch:
    """Per-thread versioned faulty-machine planes."""

    __slots__ = ("f0", "f1", "stamp", "version")

    def __init__(self, num_nodes: int) -> None:
        self.f0 = [0] * num_nodes
        self.f1 = [0] * num_nodes
        self.stamp = [0] * num_nodes
        self.version = 0


class CompiledCircuit:
    """A :class:`CircuitModel` lowered into flat execution tapes.

    Thread-safe: faulty-machine scratch planes are thread-local, so shard
    workers of the :mod:`~repro.engine.scheduler` thread backend can share
    one instance.
    """

    def __init__(self, model: CircuitModel) -> None:
        self.model = model
        self.num_nodes = model.num_nodes
        #: Per-node plane evaluator (gate nodes only, else ``None``).
        self._evaluators: list[PlaneEvaluator | None] = [None] * self.num_nodes
        #: Per-node fanin tuples (flat copy, no Node attribute walks).
        self._fanin: list[tuple[int, ...]] = [()] * self.num_nodes
        tape: list[TapeOp] = []
        for node in model.nodes:
            self._fanin[node.index] = node.fanin
            if node.kind is NodeKind.GATE:
                assert node.gtype is not None
                evaluator = _plane_evaluator(node.gtype, len(node.fanin))
                self._evaluators[node.index] = evaluator
                tape.append(_tape_op(node.kind, node.index, node.fanin, evaluator))
            elif node.kind in (NodeKind.CONST0, NodeKind.CONST1):
                tape.append(_tape_op(node.kind, node.index, (), None))
        self._tape: tuple[TapeOp, ...] = tuple(tape)
        #: Fault-site cone cache: start node -> ((index, fanin, evaluator), ...).
        self._cones: dict[int, tuple[tuple[int, tuple[int, ...], PlaneEvaluator], ...]] = {}
        #: Reachability cache: start node -> frozenset of every reachable node.
        self._cone_sets: dict[int, frozenset[int]] = {}
        self._tls = threading.local()

    # ------------------------------------------------------------ good machine
    def simulate(self, packed: PackedPatterns) -> PackedPatterns:
        """Evaluate all gate/constant planes in place (compiled counterpart of
        :func:`repro.simulation.parallel_sim.simulate_packed`)."""
        metrics = active_metrics()
        if metrics is not None:
            # Per tape pass, never per gate: one counter touch per simulate()
            # call keeps the enabled overhead off the kernel's inner loop.
            metrics.inc("engine.tape_passes")
            metrics.inc("engine.gate_evaluations", len(self._tape))
        can0, can1, full = packed.can0, packed.can1, packed.full_mask
        for op in self._tape:
            op(can0, can1, full)
        return packed

    # ------------------------------------------------------------------- cones
    def cone(self, start: int) -> tuple[tuple[int, tuple[int, ...], PlaneEvaluator], ...]:
        """The compiled fanout cone of a node: level-ordered gate triples."""
        cached = self._cones.get(start)
        if cached is None:
            order = self.model.transitive_fanout(start)
            cached = tuple(
                (idx, self._fanin[idx], self._evaluators[idx])
                for idx in order
                if self._evaluators[idx] is not None
            )
            self._cones[start] = cached
        return cached

    def cone_indices(self, start: int) -> frozenset[int]:
        """Every node reachable from ``start`` (cached reachability set).

        The diagnosis candidate extractor uses this for O(1) "can this site
        reach that failing observation point?" queries during cone
        intersection.
        """
        cached = self._cone_sets.get(start)
        if cached is None:
            cached = frozenset(self.model.transitive_fanout(start))
            self._cone_sets[start] = cached
        return cached

    def _scratch(self) -> _Scratch:
        scratch = getattr(self._tls, "scratch", None)
        if scratch is None:
            scratch = _Scratch(self.num_nodes)
            self._tls.scratch = scratch
        return scratch

    # ------------------------------------------------------------- fault paths
    def _inject_and_propagate(
        self, good: PackedPatterns, fault: StuckAtFault
    ) -> _Scratch:
        """Inject one stuck-at fault and propagate it through its cone.

        Returns the thread-local scratch planes; nodes whose stamp equals the
        scratch's current version carry faulty values, all others read from
        the good machine.
        """
        site = fault.site
        full = good.full_mask
        stuck0 = full if fault.value == 0 else 0
        stuck1 = full if fault.value == 1 else 0
        can0, can1 = good.can0, good.can1

        scratch = self._scratch()
        f0, f1, stamp = scratch.f0, scratch.f1, scratch.stamp
        scratch.version += 1
        version = scratch.version

        start = site.node
        if site.pin is None:
            f0[start] = stuck0
            f1[start] = stuck1
        else:
            fanin = self._fanin[start]
            in0 = [can0[i] for i in fanin]
            in1 = [can1[i] for i in fanin]
            in0[site.pin] = stuck0
            in1[site.pin] = stuck1
            evaluator = self._evaluators[start]
            assert evaluator is not None, "pin faults sit on gate nodes"
            f0[start], f1[start] = evaluator(in0, in1)
        stamp[start] = version

        for idx, fanin, evaluator in self.cone(start):
            touched = False
            in0 = []
            in1 = []
            for i in fanin:
                if stamp[i] == version:
                    touched = True
                    in0.append(f0[i])
                    in1.append(f1[i])
                else:
                    in0.append(can0[i])
                    in1.append(can1[i])
            if not touched:
                continue
            out0, out1 = evaluator(in0, in1)
            if out0 == can0[idx] and out1 == can1[idx]:
                continue
            f0[idx] = out0
            f1[idx] = out1
            stamp[idx] = version
        return scratch

    def propagate_stuck_at(
        self, good: PackedPatterns, fault: StuckAtFault, observation: Sequence[int]
    ) -> int:
        """Detection mask of one stuck-at fault (compiled counterpart of
        :func:`repro.fault_sim.stuck_at.propagate_fault_packed`)."""
        scratch = self._inject_and_propagate(good, fault)
        f0, f1, stamp, version = scratch.f0, scratch.f1, scratch.stamp, scratch.version
        can0, can1 = good.can0, good.can1
        detect = 0
        for obs in observation:
            if stamp[obs] != version:
                continue
            g0, g1 = can0[obs], can1[obs]
            o0, o1 = f0[obs], f1[obs]
            detect |= (g0 ^ g1) & (o0 ^ o1) & ((g1 & o0) | (g0 & o1))
        return detect

    def syndrome_stuck_at(
        self, good: PackedPatterns, fault: StuckAtFault, observation: Sequence[int]
    ) -> list[int]:
        """Per-observation-node detection masks of one stuck-at fault.

        Same injection, propagation and detection arithmetic as
        :meth:`propagate_stuck_at`, but the per-node masks are returned
        unmerged (aligned with ``observation``) — the *syndrome* the
        diagnosis engine matches against tester fail logs.  OR-ing the
        returned masks reproduces :meth:`propagate_stuck_at` exactly.
        """
        scratch = self._inject_and_propagate(good, fault)
        f0, f1, stamp, version = scratch.f0, scratch.f1, scratch.stamp, scratch.version
        can0, can1 = good.can0, good.can1
        masks: list[int] = []
        for obs in observation:
            if stamp[obs] != version:
                masks.append(0)
                continue
            g0, g1 = can0[obs], can1[obs]
            o0, o1 = f0[obs], f1[obs]
            masks.append((g0 ^ g1) & (o0 ^ o1) & ((g1 & o0) | (g0 & o1)))
        return masks

    def _transition_gate_mask(
        self, launch: PackedPatterns, final: PackedPatterns, fault: TransitionFault
    ) -> int:
        """Launch/settle gating mask of one broadside transition fault."""
        site = fault.site
        site_node = site.node if site.pin is None else self._fanin[site.node][site.pin]

        initial = fault.kind.initial_value
        known = launch.can0[site_node] ^ launch.can1[site_node]
        launch_ok = known & (
            launch.can1[site_node] if initial.to_int() else launch.can0[site_node]
        )
        if not launch_ok:
            return 0
        known = final.can0[site_node] ^ final.can1[site_node]
        settle_ok = known & (
            final.can1[site_node] if fault.kind.final_value.to_int() else final.can0[site_node]
        )
        return launch_ok & settle_ok

    def detect_transition(
        self,
        launch: PackedPatterns,
        final: PackedPatterns,
        fault: TransitionFault,
        observation: Sequence[int],
    ) -> int:
        """Detection mask of one broadside transition fault.

        Same gating as the interpreted
        :meth:`repro.fault_sim.transition.TransitionFaultSimulator._detect_fault`:
        the site must hold the initial value in the launch frame and reach the
        final value in the capture frame, then the one-cycle stuck-at
        equivalent must propagate to an observation point.
        """
        gate = self._transition_gate_mask(launch, final, fault)
        if not gate:
            return 0
        detect = self.propagate_stuck_at(final, fault.capture_frame_stuck_at, observation)
        return gate & detect

    def syndrome_transition(
        self,
        launch: PackedPatterns,
        final: PackedPatterns,
        fault: TransitionFault,
        observation: Sequence[int],
    ) -> list[int]:
        """Per-observation-node detection masks of one transition fault.

        The launch/settle gate of :meth:`detect_transition` is applied to
        every per-node mask, so OR-ing the result reproduces
        :meth:`detect_transition` exactly.
        """
        gate = self._transition_gate_mask(launch, final, fault)
        if not gate:
            return [0] * len(observation)
        masks = self.syndrome_stuck_at(final, fault.capture_frame_stuck_at, observation)
        return [gate & mask for mask in masks]


def compile_circuit(model: CircuitModel) -> CompiledCircuit:
    """Compile a circuit model (memoised on the model instance).

    Models carrying repeated-core hierarchy metadata
    (``model.hierarchy``) are lowered through
    :class:`repro.hier.compile.HierCompiledCircuit`, which builds one kernel
    per unique core type and binds every instance onto it; flat models take
    the reference path above.  Both produce bit-identical detection masks.
    """
    compiled = model.__dict__.get("_engine_compiled")
    if compiled is None or compiled.model is not model:
        if getattr(model, "hierarchy", None) is not None:
            # Local import: repro.hier sits above the engine layer.
            from repro.hier.compile import HierCompiledCircuit

            compiled = HierCompiledCircuit(model)
        else:
            compiled = CompiledCircuit(model)
        model.__dict__["_engine_compiled"] = compiled
    return compiled
