"""Sharded fault-simulation scheduling over pluggable execution backends.

The engine separates *what* is computed (the compiled kernels of
:mod:`repro.engine.compile`) from *where* it runs.  A :class:`Backend` maps a
function over work items:

* ``serial`` — in-process, using the **interpreted legacy** simulators as the
  reference semantics (kept on purpose so the equivalence suite can hold the
  compiled kernels to identical results);
* ``compiled`` — in-process, compiled kernels, no sharding overhead (the
  default everywhere);
* ``threads`` — compiled kernels over fault shards on a thread pool (GIL
  bound; exists for protocol completeness and for I/O-heavy custom stages);
* ``processes`` — compiled kernels over fault shards on a
  ``ProcessPoolExecutor``.  Each worker unpickles the circuit model once (in
  the pool initializer), compiles it once, and then receives only
  ``(planes, fault shard, observation)`` tuples per round.

:class:`FaultSimScheduler` partitions a fault batch into contiguous shards,
fans the shards out through the backend and merges the detection masks back
in the original fault order — so fault dropping between rounds (done by the
calling simulator) is bit-identical regardless of backend or shard count.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
import weakref
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Protocol, Sequence

from repro.engine.compile import CompiledCircuit, compile_circuit
from repro.obs.telemetry import get_telemetry
from repro.faults.models import StuckAtFault, TransitionFault
from repro.simulation.model import CircuitModel
from repro.simulation.parallel_sim import PackedPatterns

#: Recognised execution backend names.
BACKENDS = ("serial", "compiled", "threads", "processes")

# --------------------------------------------------------------------------
# Pluggable backend registry
# --------------------------------------------------------------------------
#: Registered backend factories: ``name -> factory(max_workers, initializer,
#: initargs, options) -> Backend``.  The built-in names above never live
#: here — the registry exists so subsystems outside the engine (e.g. the
#: :mod:`repro.serve` remote-worker backend) can plug new execution planes
#: into the runtime :class:`~repro.runtime.Executor` without the engine
#: importing them.
_BACKEND_FACTORIES: dict[str, Callable] = {}


def register_backend(name: str, factory: Callable) -> Callable:
    """Register an executor backend factory under ``name``.

    The factory is called as ``factory(max_workers=..., initializer=...,
    initargs=..., options=...)`` and must return an object satisfying the
    :class:`Backend` protocol.  ``initializer``/``initargs`` follow the
    ``concurrent.futures`` contract (the runtime executor ships its plan
    resources through them exactly as it does for the processes pool);
    ``options`` is the executor's opaque ``backend_options`` mapping.

    Built-in names are reserved; re-registering a custom name replaces the
    previous factory (imports must stay idempotent).
    """
    if name in BACKENDS:
        raise ValueError(f"backend name {name!r} is reserved for a built-in")
    if not name:
        raise ValueError("a backend needs a non-empty name")
    _BACKEND_FACTORIES[name] = factory
    return factory


def has_backend_factory(name: str) -> bool:
    return name in _BACKEND_FACTORIES


def backend_factory(name: str) -> Callable:
    try:
        return _BACKEND_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"no backend factory registered for {name!r} "
            f"(registered: {sorted(_BACKEND_FACTORIES) or '<none>'})"
        ) from None


def registered_backends() -> tuple[str, ...]:
    """Names of the pluggable backends currently registered (sorted)."""
    return tuple(sorted(_BACKEND_FACTORIES))


def default_worker_count() -> int:
    """Worker-pool size when the caller does not pin one."""
    return max(1, min(4, os.cpu_count() or 1))


def validate_pool_size(name: str, value: "int | None") -> "int | None":
    """Shared validation of pool-sizing knobs (``shards``, ``workers``, ...).

    Every execution front door — ``TestSession.with_backend``,
    ``Campaign.with_backend``, the runtime ``Executor`` — accepts the same
    knobs and must reject nonsense with the same message, so degraded
    configurations fail loudly at the call site instead of hanging a pool.
    ``None`` (== "keep the default") passes through.
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ValueError(f"{name} must be a positive integer (got {value!r})")
    return value


def is_result_transport_error(exc: BaseException) -> bool:
    """Did a process-pool exception come from shipping a result, not from
    the work itself?

    Unpicklable worker returns re-raise in the parent with their original
    type (often ``TypeError``), so the type alone cannot discriminate; the
    chained remote traceback does — transport failures originate in the
    pool's ``_sendback_result``.  Used by the runtime executor to decide
    whether a processes wave may spill back in-process (transport failures
    do; genuine job exceptions propagate unchanged).
    """
    if isinstance(exc, (pickle.PicklingError, BrokenProcessPool)):
        return True
    return "_sendback_result" in str(getattr(exc, "__cause__", ""))


class Backend(Protocol):
    """Minimal execution surface the engine schedules onto.

    Two dispatch shapes: :meth:`map` is the classic bulk fan-out the fault
    scheduler shards over; :meth:`run_tasks` is the runtime executor's
    worker layer — results stream back through ``on_result`` as each task
    completes, and ``should_stop`` cancels not-yet-started tasks between
    completions (already-running tasks finish and are still reported).
    """

    name: str

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item, preserving order."""
        ...

    def run_tasks(
        self,
        fn: Callable,
        items: Sequence,
        on_result: "Callable[[int, object], None] | None" = None,
        should_stop: "Callable[[], bool] | None" = None,
    ) -> dict[int, object]:
        """Apply ``fn`` to every item, streaming ``(index, result)`` pairs.

        Returns the results of every task that completed, keyed by item
        index (tasks cancelled via ``should_stop`` are absent).  The first
        task exception aborts the remaining tasks and re-raises.
        """
        ...

    def close(self) -> None:
        """Release pooled resources (idempotent)."""
        ...


def _run_tasks_pooled(
    pool: Executor,
    fn: Callable,
    items: Sequence,
    on_result: "Callable[[int, object], None] | None",
    should_stop: "Callable[[], bool] | None",
) -> dict[int, object]:
    """Shared streaming dispatch for the pooled backends."""
    futures = {pool.submit(fn, item): index for index, item in enumerate(items)}
    done: dict[int, object] = {}
    failure: BaseException | None = None
    for future in as_completed(futures):
        if failure is None and should_stop is not None and should_stop():
            for pending in futures:
                pending.cancel()
        if future.cancelled():
            continue
        index = futures[future]
        try:
            value = future.result()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if failure is None:
                failure = exc
                # Tag the failing item's index so callers can attribute the
                # failure to the right task (best effort — some exception
                # types refuse new attributes).
                try:
                    failure.task_index = index
                except Exception:
                    pass
            for pending in futures:
                pending.cancel()
            continue
        if failure is None:
            done[index] = value
            if on_result is not None:
                on_result(index, value)
    if failure is not None:
        raise failure
    return done


class SerialBackend:
    """Run everything inline on the calling thread."""

    name = "serial"

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]

    def run_tasks(
        self,
        fn: Callable,
        items: Sequence,
        on_result: "Callable[[int, object], None] | None" = None,
        should_stop: "Callable[[], bool] | None" = None,
    ) -> dict[int, object]:
        done: dict[int, object] = {}
        for index, item in enumerate(items):
            if should_stop is not None and should_stop():
                break
            done[index] = value = fn(item)
            if on_result is not None:
                on_result(index, value)
        return done

    def close(self) -> None:
        pass


class ThreadBackend:
    """Fan work items out over a shared thread pool."""

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or default_worker_count()
        self._pool: Executor | None = None

    def _executor(self) -> Executor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            _live_backends.add(self)
        return self._pool

    def map(self, fn: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._executor().map(fn, items))

    def run_tasks(
        self,
        fn: Callable,
        items: Sequence,
        on_result: "Callable[[int, object], None] | None" = None,
        should_stop: "Callable[[], bool] | None" = None,
    ) -> dict[int, object]:
        return _run_tasks_pooled(self._executor(), fn, items, on_result, should_stop)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            _live_backends.discard(self)


class ProcessBackend:
    """Fan work items out over a process pool.

    ``initializer``/``initargs`` follow the ``concurrent.futures`` contract;
    the fault-sim scheduler uses them to ship the pickled circuit model to
    every worker exactly once.
    """

    name = "processes"

    def __init__(
        self,
        max_workers: int | None = None,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        self.max_workers = max_workers or default_worker_count()
        self._initializer = initializer
        self._initargs = initargs
        self._pool: Executor | None = None

    def _executor(self) -> Executor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=self._initializer,
                initargs=self._initargs,
            )
            _live_backends.add(self)
        return self._pool

    def map(self, fn: Callable, items: Sequence) -> list:
        return list(self._executor().map(fn, items))

    def run_tasks(
        self,
        fn: Callable,
        items: Sequence,
        on_result: "Callable[[int, object], None] | None" = None,
        should_stop: "Callable[[], bool] | None" = None,
    ) -> dict[int, object]:
        return _run_tasks_pooled(self._executor(), fn, items, on_result, should_stop)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            _live_backends.discard(self)


#: Backends with live pools, shut down at interpreter exit as a safety net.
#: Weak: membership must not keep a dropped backend (and its pool) alive —
#: schedulers attach a GC finalizer that closes the pool instead.
_live_backends: "weakref.WeakSet" = weakref.WeakSet()


@atexit.register
def _shutdown_backends() -> None:  # pragma: no cover - interpreter teardown
    for backend in list(_live_backends):
        backend.close()


# --------------------------------------------------------------------------
# Process-worker plumbing (module level: must be picklable by reference)
# --------------------------------------------------------------------------
_WORKER_COMPILED: CompiledCircuit | None = None


def _fault_worker_init(model_payload: bytes) -> None:
    """Pool initializer: unpickle and compile the circuit once per worker."""
    global _WORKER_COMPILED
    _WORKER_COMPILED = compile_circuit(pickle.loads(model_payload))


def _fault_worker_detect(task: tuple) -> list[int]:
    """Detect one fault shard against shipped good-machine planes."""
    launch_planes, final_planes, faults, observation = task
    compiled = _WORKER_COMPILED
    assert compiled is not None, "worker pool initialized without a model"
    final = PackedPatterns(*final_planes)
    launch = PackedPatterns(*launch_planes) if launch_planes is not None else None
    return [
        _detect_compiled(compiled, fault, final, observation, launch) for fault in faults
    ]


def _fault_worker_syndrome(task: tuple) -> list[list[int]]:
    """Per-node syndromes of one fault shard against shipped planes."""
    launch_planes, final_planes, faults, observation = task
    compiled = _WORKER_COMPILED
    assert compiled is not None, "worker pool initialized without a model"
    final = PackedPatterns(*final_planes)
    launch = PackedPatterns(*launch_planes) if launch_planes is not None else None
    return [
        _syndrome_compiled(compiled, fault, final, observation, launch)
        for fault in faults
    ]


def _fault_worker_detect_timed(task: tuple) -> tuple[list[int], float]:
    """Telemetry variant: detect one shard and report its measured wall.

    The masks are produced by the exact same worker, so results stay
    bit-identical; only the return envelope differs.
    """
    started = time.perf_counter()
    masks = _fault_worker_detect(task)
    return masks, time.perf_counter() - started


def _fault_worker_syndrome_timed(task: tuple) -> tuple[list[list[int]], float]:
    """Telemetry variant of :func:`_fault_worker_syndrome`."""
    started = time.perf_counter()
    masks = _fault_worker_syndrome(task)
    return masks, time.perf_counter() - started


#: Worker fn -> its timed envelope, used only when telemetry is enabled.
_TIMED_WORKERS = {
    _fault_worker_detect: _fault_worker_detect_timed,
    _fault_worker_syndrome: _fault_worker_syndrome_timed,
}


def _detect_compiled(
    compiled: CompiledCircuit,
    fault: StuckAtFault | TransitionFault,
    final: PackedPatterns,
    observation: Sequence[int],
    launch: PackedPatterns | None,
) -> int:
    if isinstance(fault, TransitionFault):
        assert launch is not None, "transition detection needs launch-frame planes"
        return compiled.detect_transition(launch, final, fault, observation)
    return compiled.propagate_stuck_at(final, fault, observation)


def _syndrome_compiled(
    compiled: CompiledCircuit,
    fault: StuckAtFault | TransitionFault,
    final: PackedPatterns,
    observation: Sequence[int],
    launch: PackedPatterns | None,
) -> list[int]:
    if isinstance(fault, TransitionFault):
        assert launch is not None, "transition syndromes need launch-frame planes"
        return compiled.syndrome_transition(launch, final, fault, observation)
    return compiled.syndrome_stuck_at(final, fault, observation)


def _transition_gate_serial(
    model: CircuitModel,
    fault: TransitionFault,
    launch: PackedPatterns,
    final: PackedPatterns,
) -> int:
    """Interpreted launch/settle gating mask of one transition fault."""
    from repro.simulation.parallel_sim import known_equal_mask

    site = fault.site
    site_node = site.node if site.pin is None else model.nodes[site.node].fanin[site.pin]
    launch_ok = known_equal_mask(launch, site_node, fault.kind.initial_value)
    if not launch_ok:
        return 0
    settle_ok = known_equal_mask(final, site_node, fault.kind.final_value)
    return launch_ok & settle_ok


def _syndrome_serial(
    model: CircuitModel,
    fault: StuckAtFault | TransitionFault,
    final: PackedPatterns,
    observation: Sequence[int],
    launch: PackedPatterns | None,
) -> list[int]:
    """Interpreted reference per-node syndromes (mirrors ``_detect_serial``)."""
    # Imported lazily: repro.fault_sim imports this module at load time.
    from repro.fault_sim.stuck_at import propagate_fault_nodes

    if isinstance(fault, TransitionFault):
        assert launch is not None, "transition syndromes need launch-frame planes"
        gate = _transition_gate_serial(model, fault, launch, final)
        if not gate:
            return [0] * len(observation)
        masks = propagate_fault_nodes(
            model, final, fault.capture_frame_stuck_at, observation
        )
        return [gate & mask for mask in masks]
    return propagate_fault_nodes(model, final, fault, observation)


def _detect_serial(
    model: CircuitModel,
    fault: StuckAtFault | TransitionFault,
    final: PackedPatterns,
    observation: Sequence[int],
    launch: PackedPatterns | None,
) -> int:
    """Interpreted reference detection (the pre-engine code path)."""
    # Imported lazily: repro.fault_sim imports this module at load time.
    from repro.fault_sim.stuck_at import propagate_fault_packed

    if isinstance(fault, TransitionFault):
        assert launch is not None, "transition detection needs launch-frame planes"
        gate = _transition_gate_serial(model, fault, launch, final)
        if not gate:
            return 0
        detect = propagate_fault_packed(
            model, final, fault.capture_frame_stuck_at, observation
        )
        return gate & detect
    return propagate_fault_packed(model, final, fault, observation)


def _shard(items: list, shard_count: int) -> list[list]:
    """Split into at most ``shard_count`` contiguous, near-equal shards."""
    shard_count = max(1, min(shard_count, len(items)))
    size, extra = divmod(len(items), shard_count)
    shards: list[list] = []
    start = 0
    for index in range(shard_count):
        end = start + size + (1 if index < extra else 0)
        shards.append(items[start:end])
        start = end
    return shards


class FaultSimScheduler:
    """Runs fault-detection batches for one circuit on a chosen backend.

    The scheduler owns the backend (and its worker pool, for ``threads`` /
    ``processes``); reusing one scheduler across pattern batches amortizes
    pool start-up and the one-time model transfer.  Use as a context manager
    or call :meth:`close` when done — dropping the reference also works, the
    pools are shut down at interpreter exit.
    """

    #: Pooled backends only pay worker dispatch when a round carries at least
    #: this much work (``len(faults) * num_nodes``); smaller rounds — e.g.
    #: the late, heavily fault-dropped rounds of a batch — run in-process on
    #: the compiled kernels, where shipping the planes would cost more than
    #: the propagation itself.
    SPILL_THRESHOLD = 400_000

    def __init__(
        self,
        model: CircuitModel,
        backend: str = "compiled",
        shard_count: int | None = None,
        max_workers: int | None = None,
        spill_threshold: int | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown engine backend {backend!r} (expected one of {BACKENDS})"
            )
        self.model = model
        self.backend_name = backend
        self.max_workers = validate_pool_size("workers", max_workers) or default_worker_count()
        self.shard_count = validate_pool_size("shards", shard_count) or self.max_workers
        self.spill_threshold = (
            self.SPILL_THRESHOLD if spill_threshold is None else spill_threshold
        )
        self._compiled = compile_circuit(model) if backend != "serial" else None
        self._backend: Backend | None = None

    # ------------------------------------------------------------- lifecycle
    def _pool(self) -> Backend:
        if self._backend is None:
            if self.backend_name == "threads":
                self._backend = ThreadBackend(self.max_workers)
            elif self.backend_name == "processes":
                self._backend = ProcessBackend(
                    self.max_workers,
                    initializer=_fault_worker_init,
                    initargs=(pickle.dumps(self.model),),
                )
            else:
                self._backend = SerialBackend()
            # Close the pool when this scheduler is garbage collected, so
            # dropping the reference (without close()) does not leak worker
            # processes.  The finalizer holds the backend, never ``self``.
            weakref.finalize(self, self._backend.close)
        return self._backend

    def close(self) -> None:
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    def __enter__(self) -> "FaultSimScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ good machine
    def simulate_good(self, packed: PackedPatterns) -> PackedPatterns:
        """Good-machine evaluation on the scheduler's semantics."""
        if self._compiled is not None:
            return self._compiled.simulate(packed)
        from repro.simulation.parallel_sim import simulate_packed

        return simulate_packed(self.model, packed)

    # --------------------------------------------------------------- detection
    def _run_batch(
        self,
        final: PackedPatterns,
        faults: Sequence[StuckAtFault | TransitionFault],
        observation: Sequence[int],
        launch: PackedPatterns | None,
        serial_fn: Callable,
        compiled_fn: Callable,
        worker_fn: Callable,
    ) -> list:
        """Shared backend dispatch of one fault batch.

        One code path for detection masks and per-node syndromes: the
        serial/compiled in-process loops, the spill heuristic, the shard
        fan-out and the order-preserving merge are identical by construction,
        which is what keeps ``syndrome_batch`` bit-consistent with
        ``detect_batch`` on every backend and shard count.
        """
        if not faults:
            return []
        name = self.backend_name
        telemetry = get_telemetry()
        if telemetry:
            # Plane ops == fault-plane propagations this round, per backend.
            telemetry.metrics.inc(f"engine.plane_ops.{name}", len(faults))
        if name == "serial":
            model = self.model
            return [
                serial_fn(model, fault, final, observation, launch)
                for fault in faults
            ]
        compiled = self._compiled
        assert compiled is not None
        if name == "compiled" or len(faults) * self.model.num_nodes < self.spill_threshold:
            if telemetry and name != "compiled":
                # A pooled backend ran this round in-process: the round was
                # below the spill threshold (late, fault-dropped rounds).
                telemetry.metrics.inc("engine.inprocess_spills")
            return [
                compiled_fn(compiled, fault, final, observation, launch)
                for fault in faults
            ]
        shards = _shard(list(faults), self.shard_count)
        if telemetry:
            telemetry.metrics.inc("engine.sharded_rounds")
        if name == "threads":
            observation = list(observation)

            def run_shard(shard: list) -> list:
                return [
                    compiled_fn(compiled, fault, final, observation, launch)
                    for fault in shard
                ]

            if telemetry:
                # Workers time themselves; spans are folded in below, at the
                # same order-preserving seam that merges the masks.
                def run_shard_timed(shard: list) -> tuple[list, tuple[float, float]]:
                    started = time.perf_counter()
                    masks = run_shard(shard)
                    return masks, (started, time.perf_counter())

                results = self._pool().map(run_shard_timed, shards)
            else:
                results = self._pool().map(run_shard, shards)
        else:  # processes
            launch_planes = (
                (launch.num_patterns, launch.can0, launch.can1)
                if launch is not None
                else None
            )
            final_planes = (final.num_patterns, final.can0, final.can1)
            tasks = [
                (launch_planes, final_planes, shard, list(observation))
                for shard in shards
            ]
            if telemetry:
                dispatch = time.perf_counter()
                results = self._pool().map(_TIMED_WORKERS[worker_fn], tasks)
            else:
                results = self._pool().map(worker_fn, tasks)
        merged: list = []
        if telemetry:
            # Same seam as the mask merge: shard spans land in shard order,
            # so the trace is as deterministic as the results.
            tracer = telemetry.tracer
            for index, (shard_masks, timing) in enumerate(results):
                if isinstance(timing, tuple):  # threads: same-clock start/end
                    tracer.record(f"shard:{index}", start=timing[0], end=timing[1],
                                  backend=name, faults=len(shards[index]))
                else:  # processes: wall measured in the worker, anchored here
                    tracer.record(f"shard:{index}", start=dispatch, duration=timing,
                                  backend=name, faults=len(shards[index]))
                merged.extend(shard_masks)
        else:
            for shard_masks in results:
                merged.extend(shard_masks)
        return merged

    def detect_batch(
        self,
        final: PackedPatterns,
        faults: Sequence[StuckAtFault | TransitionFault],
        observation: Sequence[int],
        launch: PackedPatterns | None = None,
    ) -> list[int]:
        """Detection masks for one pattern batch, aligned with ``faults``.

        Stuck-at faults are propagated through the ``final`` planes;
        transition faults are additionally gated on the ``launch`` planes.
        The caller merges masks and drops detected faults between rounds.
        """
        return self._run_batch(
            final, faults, observation, launch,
            _detect_serial, _detect_compiled, _fault_worker_detect,
        )

    def syndrome_batch(
        self,
        final: PackedPatterns,
        faults: Sequence[StuckAtFault | TransitionFault],
        observation: Sequence[int],
        launch: PackedPatterns | None = None,
    ) -> list[list[int]]:
        """Per-fault, per-observation-node detection masks for one batch.

        The diagnosis counterpart of :meth:`detect_batch`: every fault's
        entry is aligned with ``observation`` and OR-ing it reproduces the
        ``detect_batch`` mask bit for bit; syndromes are identical across
        backends and shard counts.
        """
        return self._run_batch(
            final, faults, observation, launch,
            _syndrome_serial, _syndrome_compiled, _fault_worker_syndrome,
        )
