"""Persistent, content-addressed result cache for engine runs.

Repeated ``TestSession.run()`` / benchmark invocations redo work whose
inputs have not changed: the good-machine planes, detection masks, the whole
ATPG result of a scenario.  :class:`ResultCache` stores those artifacts on
disk keyed by a SHA-256 over *content*, never over identity:

* the **design fingerprint** — every node of the flattened circuit model
  (kind, net, gate type, fanin, level) plus outputs and scan structure;
* the **scenario fingerprint** — all declarative fields of a
  :class:`~repro.api.scenario.ScenarioSpec` (the procedure factory
  contributes its module-qualified name) and the effective
  :class:`~repro.atpg.config.AtpgOptions`;
* the **engine version** (:data:`~repro.engine.compile.ENGINE_VERSION`), so
  kernel-semantics changes invalidate everything at once.

Entries are a pickle payload plus a small JSON sidecar for inspection; the
cache root defaults to ``~/.cache/repro-engine`` and can be moved with the
``REPRO_ENGINE_CACHE`` environment variable.  Corrupt or unpicklable entries
degrade to cache misses — the cache is an accelerator, never a correctness
dependency.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import pickle
import re
import time
from pathlib import Path
from typing import Any

from repro.engine.compile import ENGINE_VERSION
from repro.obs.telemetry import active_metrics
from repro.simulation.model import CircuitModel

#: Environment variable overriding the cache root directory.
CACHE_ENV_VAR = "REPRO_ENGINE_CACHE"


def default_cache_root() -> Path:
    """The cache directory honoring ``REPRO_ENGINE_CACHE``."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-engine"


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def design_fingerprint(model: CircuitModel) -> str:
    """Content hash of a flattened circuit model (netlist-equivalent).

    Memoised on the model instance (models are immutable once built, and
    the digest is content-derived, so it stays valid across pickling).
    """
    cached = model.__dict__.get("_engine_fingerprint")
    if cached is not None:
        return cached
    parts: list[str] = [model.name]
    for node in model.nodes:
        parts.append(
            f"{node.index}:{node.kind.value}:{node.net}:"
            f"{node.gtype.value if node.gtype else '-'}:{node.fanin}:{node.level}"
        )
    parts.append(f"po:{model.po_nodes}")
    parts.append(
        "scan:"
        + ",".join(
            f"{e.name}/{e.q_node}/{e.d_node}/{e.scan_in_node}/{e.clock}/{e.is_scan}"
            for e in model.state_elements
        )
    )
    digest = _digest("|".join(parts))
    model.__dict__["_engine_fingerprint"] = digest
    return digest


def _stable(value: Any) -> Any:
    """Lower a value to something ``json.dumps`` can sort deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _stable(getattr(value, f.name)) for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _stable(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_stable(v) for v in value]
        return sorted(items, key=repr) if isinstance(value, (set, frozenset)) else items
    if isinstance(value, functools.partial):
        return {
            "partial": _stable(value.func),
            "args": _stable(value.args),
            "keywords": _stable(value.keywords),
        }
    if callable(value):
        # Name alone is not enough: two closures produced by the same
        # factory share a __qualname__ but may behave differently, so fold
        # in captured cell values and defaults.  (repr() is avoided — it
        # embeds per-process addresses and would defeat cross-session
        # caching.)
        name = f"{getattr(value, '__module__', '?')}.{getattr(value, '__qualname__', type(value).__name__)}"
        extras: dict[str, Any] = {}
        closure = getattr(value, "__closure__", None)
        if closure:
            cells = []
            for cell in closure:
                try:
                    cells.append(_stable(cell.cell_contents))
                except ValueError:  # pragma: no cover - empty cell
                    cells.append("<empty>")
            extras["closure"] = cells
        defaults = getattr(value, "__defaults__", None)
        if defaults:
            extras["defaults"] = _stable(defaults)
        return {"callable": name, **extras} if extras else name
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def design_spec_fingerprint(spec: Any) -> str:
    """Content hash of a declarative :class:`~repro.api.design.DesignSpec`.

    Derived purely from the spec's declarative fields (via the same stable
    lowering the scenario fingerprint uses), so it is identical across
    processes and sessions *without building the design* — which is what lets
    an interrupted campaign probe the cache for completed cells before paying
    for netlist generation, scan insertion or model building.
    """
    return _digest("designspec|" + json.dumps(_stable(spec), sort_keys=True))


def spec_fingerprint(spec: Any, options: Any = None, extra: Any = None) -> str:
    """Content hash of a scenario spec (and the effective ATPG options).

    ``extra`` folds additional execution-affecting state into the hash —
    the session passes its stage pipeline, so a run with custom stages
    never aliases a default-pipeline cache entry.
    """
    payload = {"spec": _stable(spec), "options": _stable(options), "extra": _stable(extra)}
    return _digest(json.dumps(payload, sort_keys=True))


def campaign_cell_key(
    design_fp: str, spec: Any, options: Any = None, extra: Any = None
) -> str:
    """The cache key of one (design, scenario) campaign cell.

    ``design_fp`` is any design-identity digest — :func:`design_fingerprint`
    of a built model, or :func:`design_spec_fingerprint` of a declarative
    spec (the campaign path, which never needs the model to probe the cache).
    """
    return _digest(
        f"engine={ENGINE_VERSION}|design={design_fp}|"
        f"scenario={spec_fingerprint(spec, options, extra)}"
    )


def scenario_key(
    model: CircuitModel, spec: Any, options: Any = None, extra: Any = None
) -> str:
    """The full cache key of one scenario execution on one design."""
    return campaign_cell_key(design_fingerprint(model), spec, options, extra)


def diagnosis_cell_key(
    design_fp: str,
    scenario_spec: Any,
    diagnosis_spec: Any,
    options: Any = None,
    extra: Any = None,
) -> str:
    """The cache key of one diagnosis run, from any design-identity digest.

    ``design_fp`` is :func:`design_fingerprint` of a built model or
    :func:`design_spec_fingerprint` of a declarative spec — the latter lets
    a diagnosis campaign probe for completed cells *without building the
    design*, exactly like :func:`campaign_cell_key` does for scenario cells.
    """
    return _digest(
        f"diagnosis|engine={ENGINE_VERSION}|design={design_fp}|"
        f"scenario={spec_fingerprint(scenario_spec, options, extra)}|"
        f"spec={spec_fingerprint(diagnosis_spec)}"
    )


def diagnosis_key(
    model: CircuitModel,
    scenario_spec: Any,
    diagnosis_spec: Any,
    options: Any = None,
    extra: Any = None,
) -> str:
    """The cache key of one diagnosis run on one built design.

    Keyed on the design content, the scenario that produced the pattern set
    (including the effective ATPG options and — via ``extra`` — the
    session's stage pipeline, both of which the patterns depend on), the
    declarative diagnosis spec (defect, candidate kinds, re-ranking knobs)
    and the engine version.  Only closed-loop runs (injected defect, no
    external fail log) are cacheable this way; a tester-supplied fail log is
    not content-addressed by any spec.
    """
    return diagnosis_cell_key(
        design_fingerprint(model), scenario_spec, diagnosis_spec, options, extra
    )


def fail_log_fingerprint(fail_log: Any) -> str:
    """Content hash of a captured fail log.

    Derived from the log's stable dict lowering (design, pattern count,
    every fail bit, injected-defect provenance), so an externally captured
    tester log becomes content-addressed: volume diagnosis can cache BP
    results per log (:func:`bp_diagnosis_key`) even though no declarative
    spec describes where the log came from.
    """
    return _digest(
        "faillog|" + json.dumps(_stable(fail_log.to_dict()), sort_keys=True)
    )


def bp_diagnosis_key(
    design_fp: str,
    scenario_spec: Any,
    diagnosis_spec: Any,
    bp_options: Any = None,
    options: Any = None,
    extra: Any = None,
    log_fp: str | None = None,
) -> str:
    """The cache key of one volume BP diagnosis.

    Same shape as :func:`diagnosis_cell_key` plus the BP inference knobs
    and — the volume-mode difference — an optional
    :func:`fail_log_fingerprint`: keying on the log's *content* makes
    externally captured tester logs cacheable, so a killed volume plan
    resumes with zero re-runs.  Closed-loop runs (injected defects, no
    external log) pass ``log_fp=None`` and are keyed by the diagnosis spec
    alone, mirroring :func:`diagnosis_key`.
    """
    return _digest(
        f"bp-diagnosis|engine={ENGINE_VERSION}|design={design_fp}|"
        f"scenario={spec_fingerprint(scenario_spec, options, extra)}|"
        f"spec={spec_fingerprint(diagnosis_spec, bp_options)}|log={log_fp}"
    )


def job_key(
    kind: str,
    params: Any,
    design_fp: str | None = None,
    options: Any = None,
    extra: Any = None,
) -> str:
    """The cache key of one generic :class:`~repro.runtime.plan.Job`.

    The scenario/diagnosis plan compilers use the dedicated key functions
    above (their key spaces predate the execution plane and must stay
    stable); custom job kinds get content-addressed identity from their kind
    name, JSON-safe params, the design digest they operate on, and the
    engine version.
    """
    payload = {
        "kind": kind,
        "params": _stable(params),
        "options": _stable(options),
        "extra": _stable(extra),
    }
    return _digest(
        f"job|engine={ENGINE_VERSION}|design={design_fp}|"
        + json.dumps(payload, sort_keys=True)
    )


def plan_fingerprint(plan: Any) -> str:
    """Content hash of a plan's declarative structure.

    Accepts a :class:`~repro.runtime.plan.Plan` (anything with ``to_dict``)
    or its already-lowered dict.  Runtime resource bindings never reach the
    digest — two plans that describe the same jobs share a fingerprint even
    when bound to different in-memory objects.
    """
    payload = plan.to_dict() if hasattr(plan, "to_dict") else plan
    return _digest("plan|" + json.dumps(_stable(payload), sort_keys=True))


def coerce_cache(cache: "ResultCache | Path | str | bool | None") -> "ResultCache | None":
    """Normalize the ``with_cache`` argument the API front doors accept.

    ``True`` -> the default cache root (honoring ``REPRO_ENGINE_CACHE``),
    ``False``/``None`` -> detached, a path -> a cache rooted there, and an
    existing :class:`ResultCache` passes through unchanged.
    """
    if cache is True:
        return ResultCache()
    if cache is False or cache is None:
        return None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


#: Namespace names must be path-safe and must never collide with the
#: two-hex-char bucket directories of the default namespace.
_NAMESPACE_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")
_BUCKET_RE = re.compile(r"[0-9a-f]{2}\Z")


def validate_namespace(namespace: str) -> str:
    """Check a cache namespace name; returns it unchanged when legal."""
    if not _NAMESPACE_RE.match(namespace):
        raise ValueError(
            f"illegal cache namespace {namespace!r} (letters, digits, '.', "
            "'_' and '-' only; must start with a letter or digit)"
        )
    if _BUCKET_RE.match(namespace):
        raise ValueError(
            f"illegal cache namespace {namespace!r}: two-hex-character names "
            "collide with the default namespace's bucket directories"
        )
    return namespace


class ResultCache:
    """Content-addressed pickle store with JSON sidecars.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` plus ``<key>.json`` holding
    ``{"key", "label", "created", "engine_version"}`` for human inspection.

    A cache can be **namespaced** (``ResultCache(root, namespace="tenant-a")``
    or :meth:`namespaced`): entries then live under
    ``<root>/<namespace>/<key[:2]>/...`` and every operation — ``get``,
    ``put``, ``stats``, ``prune``, ``clear`` — is scoped to that subtree, so
    one tenant's quota enforcement can never evict another tenant's results.
    The un-namespaced handle on the same root sees *all* entries (its
    ``stats()`` breaks usage down per namespace), which is what the serve
    plane's operators use for global accounting.
    """

    def __init__(
        self, root: "Path | str | None" = None, namespace: "str | None" = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.namespace = validate_namespace(namespace) if namespace else None
        #: Lifetime I/O counters for this handle (also mirrored into the
        #: active telemetry registry, when one is enabled): ``hits`` /
        #: ``misses`` probe outcomes, ``stores`` successful puts,
        #: ``evictions`` pruned entries, ``bytes_read`` / ``bytes_written``
        #: payload traffic.
        self.counters: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
            "bytes_read": 0,
            "bytes_written": 0,
        }

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        metrics = active_metrics()
        if metrics is not None:
            metrics.inc(f"cache.{name}", amount)

    # ------------------------------------------------------------------ paths
    def namespaced(self, namespace: str) -> "ResultCache":
        """A handle scoped to one namespace of the same cache root."""
        return ResultCache(self.root, namespace)

    @property
    def _base(self) -> Path:
        return self.root / self.namespace if self.namespace else self.root

    def _entry_paths(self, key: str) -> tuple[Path, Path]:
        bucket = self._base / key[:2]
        return bucket / f"{key}.pkl", bucket / f"{key}.json"

    def _glob_patterns(self) -> tuple[str, ...]:
        """Payload globs this handle's scope covers.

        A namespaced handle sees only its subtree; the root handle sees the
        default namespace (depth 2: ``<bucket>/<key>.pkl``) *and* every
        namespace (depth 3: ``<namespace>/<bucket>/<key>.pkl``) — bucket
        directories hold only files, so the two depths never alias.
        """
        if self.namespace:
            return (f"{self.namespace}/*/*.pkl",)
        return ("*/*.pkl", "*/*/*.pkl")

    def _namespace_of(self, payload_path: Path) -> str:
        """The namespace a payload file belongs to (``""`` == default)."""
        parts = payload_path.relative_to(self.root).parts
        return parts[0] if len(parts) == 3 else ""

    def contains(self, key: str) -> bool:
        return self._entry_paths(key)[0].is_file()

    # ------------------------------------------------------------------- I/O
    def get(self, key: str) -> Any | None:
        """Load a cached payload; any failure reads as a miss."""
        payload_path, _ = self._entry_paths(key)
        try:
            with payload_path.open("rb") as handle:
                data = handle.read()
            value = pickle.loads(data)
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            self._count("misses")
            return None
        self._count("hits")
        self._count("bytes_read", len(data))
        return value

    def put(self, key: str, payload: Any, label: str = "") -> bool:
        """Store a payload; returns False when it cannot be pickled/written."""
        payload_path, meta_path = self._entry_paths(key)
        try:
            data = pickle.dumps(payload)
        except (pickle.PickleError, TypeError, AttributeError):
            return False
        try:
            payload_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = payload_path.with_suffix(".tmp")
            tmp.write_bytes(data)
            os.replace(tmp, payload_path)
            meta_path.write_text(
                json.dumps(
                    {
                        "key": key,
                        "label": label,
                        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
                        "engine_version": ENGINE_VERSION,
                        "bytes": len(data),
                    },
                    indent=2,
                )
                + "\n"
            )
        except OSError:
            return False
        self._count("stores")
        self._count("bytes_written", len(data))
        return True

    # ------------------------------------------------------------- management
    def entries(self) -> list[dict[str, Any]]:
        """Metadata of every cached entry in this handle's scope."""
        found: list[dict[str, Any]] = []
        if not self.root.is_dir():
            return found
        meta_globs = [pattern[:-4] + ".json" for pattern in self._glob_patterns()]
        for pattern in meta_globs:
            for meta_path in sorted(self.root.glob(pattern)):
                try:
                    found.append(json.loads(meta_path.read_text()))
                except (OSError, json.JSONDecodeError):
                    continue
        return found

    def clear(self) -> int:
        """Delete every entry in scope; returns how many payloads were removed."""
        removed = 0
        for payload_path, _, _ in self._payload_files():
            meta = payload_path.with_suffix(".json")
            try:
                payload_path.unlink()
                removed += 1
                if meta.is_file():
                    meta.unlink()
            except OSError:
                continue
        return removed

    def _payload_files(self) -> list[tuple[Path, int, float]]:
        """(path, bytes, mtime) of every in-scope payload file, oldest first."""
        found: list[tuple[Path, int, float]] = []
        if not self.root.is_dir():
            return found
        for pattern in self._glob_patterns():
            for payload_path in self.root.glob(pattern):
                try:
                    stat = payload_path.stat()
                except OSError:
                    continue
                found.append((payload_path, stat.st_size, stat.st_mtime))
        found.sort(key=lambda item: (item[2], item[0]))
        return found

    def stats(self) -> dict[str, Any]:
        """Summary of the store: entry count, payload bytes, label histogram.

        Diagnosis campaigns multiply cache entries (one per design x scenario
        x defect cell), so operators need a cheap way to see what the store
        holds before deciding to :meth:`prune` it.  ``namespaces`` breaks the
        same accounting down per namespace with *exact* byte/entry counts
        (the default namespace reports under ``""``) — tenant quota
        enforcement reads these numbers, so they are computed from the same
        stat pass as the totals and can never drift from them.
        """
        files = self._payload_files()
        labels: dict[str, int] = {}
        namespaces: dict[str, dict[str, int]] = {}
        for payload_path, size, _ in files:
            meta_path = payload_path.with_suffix(".json")
            try:
                label = str(json.loads(meta_path.read_text()).get("label", ""))
            except (OSError, json.JSONDecodeError):
                label = "<no metadata>"
            labels[label] = labels.get(label, 0) + 1
            bucket = namespaces.setdefault(
                self._namespace_of(payload_path), {"entries": 0, "payload_bytes": 0}
            )
            bucket["entries"] += 1
            bucket["payload_bytes"] += size
        return {
            "root": str(self.root),
            "namespace": self.namespace,
            "entries": len(files),
            "payload_bytes": sum(size for _, size, _ in files),
            "labels": dict(sorted(labels.items())),
            "namespaces": dict(sorted(namespaces.items())),
            "oldest_mtime": files[0][2] if files else None,
            "newest_mtime": files[-1][2] if files else None,
            "counters": dict(self.counters),
        }

    def prune(self, max_bytes: int) -> dict[str, int]:
        """Evict oldest entries until total payload bytes fit ``max_bytes``.

        Eviction order is payload mtime (oldest first) — an LRU approximation
        good enough for a content-addressed store whose entries are
        immutable.  Sidecar metadata files are removed with their payloads.

        Returns:
            ``{"removed", "freed_bytes", "remaining_entries",
            "remaining_bytes"}``.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        files = self._payload_files()
        total = sum(size for _, size, _ in files)
        removed = 0
        freed = 0
        for payload_path, size, _ in files:
            if total <= max_bytes:
                break
            meta = payload_path.with_suffix(".json")
            try:
                payload_path.unlink()
            except OSError:
                continue
            if meta.is_file():
                try:
                    meta.unlink()
                except OSError:
                    pass
            removed += 1
            freed += size
            total -= size
        if removed:
            self._count("evictions", removed)
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining_entries": len(files) - removed,
            "remaining_bytes": total,
        }
