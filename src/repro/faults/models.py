"""Fault models: stuck-at, transition (gate-delay), and path-delay faults.

Faults are located at *gate terminals* of the flattened circuit model
(:class:`~repro.simulation.model.CircuitModel`): every node output (the
"stem") and every input pin of every gate node.  This matches the paper's
fault universe ("both fault models are targeting two faults at each gate
terminal"), and makes the stuck-at and transition fault universes the same
size by construction — exactly the property the paper points out about its
collapsed fault counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, NodeKind


class FaultSiteKind(str, Enum):
    """Where on a gate a fault sits."""

    OUTPUT = "output"
    INPUT_PIN = "input"


@dataclass(frozen=True)
class FaultSite:
    """A gate terminal of the base (single time frame) circuit model.

    Attributes:
        node: Index of the node that owns the terminal.
        pin: ``None`` for the node's output terminal, otherwise the input pin
            index on that node.
    """

    node: int
    pin: int | None = None

    def __lt__(self, other: "FaultSite") -> bool:
        if not isinstance(other, FaultSite):
            return NotImplemented
        mine = (self.node, -1 if self.pin is None else self.pin)
        theirs = (other.node, -1 if other.pin is None else other.pin)
        return mine < theirs

    @property
    def kind(self) -> FaultSiteKind:
        return FaultSiteKind.OUTPUT if self.pin is None else FaultSiteKind.INPUT_PIN

    def describe(self, model: CircuitModel) -> str:
        node = model.nodes[self.node]
        if self.pin is None:
            return f"{node.net}"
        driver = model.nodes[node.fanin[self.pin]]
        return f"{node.instance or node.net}.in{self.pin}({driver.net})"


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """A single stuck-at fault."""

    site: FaultSite
    value: int  # 0 or 1

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    @property
    def stuck_value(self) -> Logic:
        return Logic.from_int(self.value)

    def describe(self, model: CircuitModel) -> str:
        return f"{self.site.describe(model)} stuck-at-{self.value}"


class TransitionKind(str, Enum):
    """Direction of the slow transition."""

    SLOW_TO_RISE = "STR"
    SLOW_TO_FALL = "STF"

    @property
    def initial_value(self) -> Logic:
        """Value the site must hold in the launch frame."""
        return Logic.ZERO if self is TransitionKind.SLOW_TO_RISE else Logic.ONE

    @property
    def final_value(self) -> Logic:
        """Fault-free value the site must reach in the capture frame."""
        return Logic.ONE if self is TransitionKind.SLOW_TO_RISE else Logic.ZERO

    @property
    def equivalent_stuck_value(self) -> int:
        """Stuck-at value whose detection in the capture frame detects the
        transition fault (a slow-to-rise site behaves like stuck-at-0 for one
        cycle)."""
        return 0 if self is TransitionKind.SLOW_TO_RISE else 1


@dataclass(frozen=True, order=True)
class TransitionFault:
    """A gate-delay (transition) fault."""

    site: FaultSite
    kind: TransitionKind

    def describe(self, model: CircuitModel) -> str:
        return f"{self.site.describe(model)} {self.kind.value}"

    @property
    def capture_frame_stuck_at(self) -> StuckAtFault:
        """The stuck-at fault that must be detected in the capture frame."""
        return StuckAtFault(site=self.site, value=self.kind.equivalent_stuck_value)


@dataclass(frozen=True)
class PathDelayFault:
    """A path-delay fault: a structural path plus a transition polarity at its
    launch point.

    Attributes:
        nodes: Node indices along the path, from launch point to capture
            point, each node being in the previous one's fanout.
        rising: True if the launched transition at ``nodes[0]`` is rising.
    """

    nodes: tuple[int, ...]
    rising: bool

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ValueError("a path-delay fault needs at least two nodes")

    def describe(self, model: CircuitModel) -> str:
        names = " -> ".join(model.nodes[n].net for n in self.nodes)
        return f"path[{names}] {'rising' if self.rising else 'falling'}"


Fault = StuckAtFault | TransitionFault | PathDelayFault


def enumerate_fault_sites(model: CircuitModel, include_checkpoints_only: bool = False) -> list[FaultSite]:
    """Enumerate every gate terminal of a circuit model.

    Args:
        model: The base circuit model.
        include_checkpoints_only: When True only checkpoint sites (primary
            inputs and fanout branches) are returned — the classical reduced
            fault universe; when False (default) every output terminal and
            every gate input pin is a site, matching the paper's counting.

    Returns:
        Sites sorted by node index then pin.
    """
    sites: list[FaultSite] = []
    for node in model.nodes:
        if node.kind in (NodeKind.CONST0, NodeKind.CONST1):
            continue
        if not include_checkpoints_only:
            sites.append(FaultSite(node=node.index, pin=None))
            if node.kind is NodeKind.GATE:
                for pin in range(len(node.fanin)):
                    sites.append(FaultSite(node=node.index, pin=pin))
        else:
            if node.kind in (NodeKind.PI, NodeKind.PPI, NodeKind.RAM_OUT):
                sites.append(FaultSite(node=node.index, pin=None))
            elif node.kind is NodeKind.GATE:
                for pin in range(len(node.fanin)):
                    source = node.fanin[pin]
                    if len(model.fanout[source]) > 1:
                        sites.append(FaultSite(node=node.index, pin=pin))
    return sorted(sites)


def all_stuck_at_faults(model: CircuitModel) -> list[StuckAtFault]:
    """The uncollapsed stuck-at fault universe (two faults per terminal)."""
    faults: list[StuckAtFault] = []
    for site in enumerate_fault_sites(model):
        faults.append(StuckAtFault(site=site, value=0))
        faults.append(StuckAtFault(site=site, value=1))
    return faults


def all_transition_faults(model: CircuitModel) -> list[TransitionFault]:
    """The uncollapsed transition fault universe (two faults per terminal)."""
    faults: list[TransitionFault] = []
    for site in enumerate_fault_sites(model):
        faults.append(TransitionFault(site=site, kind=TransitionKind.SLOW_TO_RISE))
        faults.append(TransitionFault(site=site, kind=TransitionKind.SLOW_TO_FALL))
    return faults


def site_value(model: CircuitModel, site: FaultSite, values: list[Logic]) -> Logic:
    """Fault-free value currently present at a fault site.

    For an output site this is the node value; for an input pin site it is
    the value of the driving node (the distinction matters only when a fault
    is *injected*, not when it is read).
    """
    node = model.nodes[site.node]
    if site.pin is None:
        return values[site.node]
    return values[node.fanin[site.pin]]
