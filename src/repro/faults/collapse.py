"""Structural fault-equivalence collapsing.

Two faults are structurally equivalent when every test for one is a test for
the other.  The classic local rules are applied with a union-find:

* a stuck-at-*c* fault on any input of a gate whose controlling value is *c*
  is equivalent to stuck-at-(*c* xor inversion) at the gate output
  (AND: in-sa0 == out-sa0, NAND: in-sa0 == out-sa1, OR: in-sa1 == out-sa1,
  NOR: in-sa1 == out-sa0);
* both faults of a BUF/NOT input are equivalent to the corresponding output
  faults (with inversion for NOT);
* an input-pin fault on a fanout-free connection is equivalent to the output
  (stem) fault of its driver.

Transition faults collapse with exactly the same classes once each fault is
mapped to its *equivalent stuck value* (slow-to-rise behaves like stuck-at-0
for one cycle), which is why the collapsed transition-fault count equals the
collapsed stuck-at count — the property the paper notes for its device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TypeVar

from repro.faults.models import (
    FaultSite,
    StuckAtFault,
    TransitionFault,
    TransitionKind,
    enumerate_fault_sites,
)
from repro.netlist.gates import GateType
from repro.simulation.model import CircuitModel, NodeKind

FaultT = TypeVar("FaultT", StuckAtFault, TransitionFault)


class _UnionFind:
    """Minimal union-find over hashable keys."""

    def __init__(self) -> None:
        self._parent: dict[object, object] = {}

    def find(self, key: object) -> object:
        self._parent.setdefault(key, key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[key] != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def classes(self) -> dict[object, list[object]]:
        groups: dict[object, list[object]] = {}
        for key in list(self._parent):
            groups.setdefault(self.find(key), []).append(key)
        return groups


# A "polarity key" is (node, pin, stuck_value_or_equivalent).
_PolarityKey = tuple[int, int | None, int]


def _equivalence_classes(model: CircuitModel) -> _UnionFind:
    """Union-find of (site, polarity) keys under the local equivalence rules."""
    uf = _UnionFind()
    # Seed every terminal with both polarities so singleton classes exist.
    for site in enumerate_fault_sites(model):
        uf.find((site.node, site.pin, 0))
        uf.find((site.node, site.pin, 1))

    for node in model.nodes:
        if node.kind is not NodeKind.GATE:
            continue
        gtype = node.gtype
        inverting = gtype.is_inverting if gtype is not None else False
        controlling = gtype.controlling_value if gtype is not None else None
        for pin, source in enumerate(node.fanin):
            # Input pin fault on a fanout-free connection == driver stem fault.
            if len(model.fanout[source]) == 1 and model.nodes[source].kind not in (
                NodeKind.CONST0,
                NodeKind.CONST1,
            ):
                for value in (0, 1):
                    uf.union((source, None, value), (node.index, pin, value))
            if gtype in (GateType.BUF, GateType.NOT):
                for value in (0, 1):
                    out_value = value ^ 1 if inverting else value
                    uf.union((node.index, pin, value), (node.index, None, out_value))
            elif controlling is not None:
                c = controlling.to_int()
                out_value = c ^ 1 if inverting else c
                uf.union((node.index, pin, c), (node.index, None, out_value))
    return uf


@dataclass
class CollapseResult:
    """Result of collapsing a fault list.

    Attributes:
        representatives: One fault per equivalence class (sorted).
        class_of: Maps every original fault to its representative.
    """

    representatives: list
    class_of: dict

    @property
    def collapse_ratio(self) -> float:
        """Original fault count divided by collapsed count."""
        if not self.representatives:
            return 1.0
        return len(self.class_of) / len(self.representatives)


def _polarity_of(fault: StuckAtFault | TransitionFault) -> int:
    if isinstance(fault, StuckAtFault):
        return fault.value
    return fault.kind.equivalent_stuck_value


def _fault_with_polarity(template: FaultT, site: FaultSite, polarity: int) -> FaultT:
    if isinstance(template, StuckAtFault):
        return StuckAtFault(site=site, value=polarity)
    kind = (
        TransitionKind.SLOW_TO_RISE if polarity == 0 else TransitionKind.SLOW_TO_FALL
    )
    return TransitionFault(site=site, kind=kind)


def collapse_faults(model: CircuitModel, faults: Sequence[FaultT]) -> CollapseResult:
    """Collapse a stuck-at or transition fault list into equivalence classes.

    Args:
        model: The base circuit model the faults are defined on.
        faults: Uncollapsed faults (all of the same model — stuck-at or
            transition; mixing is not supported).

    Returns:
        A :class:`CollapseResult` with one representative per class and the
        mapping from every input fault to its representative.
    """
    if not faults:
        return CollapseResult(representatives=[], class_of={})
    uf = _equivalence_classes(model)

    by_key: dict[_PolarityKey, list[FaultT]] = {}
    for fault in faults:
        key = (fault.site.node, fault.site.pin, _polarity_of(fault))
        by_key.setdefault(key, []).append(fault)

    # Choose, per union-find class, the smallest member fault as representative.
    class_members: dict[object, list[FaultT]] = {}
    for key, members in by_key.items():
        root = uf.find(key)
        class_members.setdefault(root, []).extend(members)

    representatives: list[FaultT] = []
    class_of: dict[FaultT, FaultT] = {}
    for members in class_members.values():
        representative = min(members)
        representatives.append(representative)
        for member in members:
            class_of[member] = representative
    representatives.sort()
    return CollapseResult(representatives=representatives, class_of=class_of)


def equivalent_faults(model: CircuitModel, fault: FaultT) -> list[FaultT]:
    """All faults of the uncollapsed universe equivalent to ``fault``."""
    uf = _equivalence_classes(model)
    target_root = uf.find((fault.site.node, fault.site.pin, _polarity_of(fault)))
    result: list[FaultT] = []
    for site in enumerate_fault_sites(model):
        for polarity in (0, 1):
            if uf.find((site.node, site.pin, polarity)) == target_root:
                result.append(_fault_with_polarity(fault, site, polarity))
    return sorted(result)
