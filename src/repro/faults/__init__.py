"""Fault models, collapsing, fault lists and fault classification."""

from repro.faults.classify import ClassifierContext, FaultClassifier
from repro.faults.collapse import CollapseResult, collapse_faults, equivalent_faults
from repro.faults.fault_list import CoverageReport, FaultList, FaultRecord, FaultStatus
from repro.faults.models import (
    Fault,
    FaultSite,
    FaultSiteKind,
    PathDelayFault,
    StuckAtFault,
    TransitionFault,
    TransitionKind,
    all_stuck_at_faults,
    all_transition_faults,
    enumerate_fault_sites,
    site_value,
)

__all__ = [
    "ClassifierContext",
    "CollapseResult",
    "CoverageReport",
    "Fault",
    "FaultClassifier",
    "FaultList",
    "FaultRecord",
    "FaultSite",
    "FaultSiteKind",
    "FaultStatus",
    "PathDelayFault",
    "StuckAtFault",
    "TransitionFault",
    "TransitionKind",
    "all_stuck_at_faults",
    "all_transition_faults",
    "collapse_faults",
    "enumerate_fault_sites",
    "equivalent_faults",
    "site_value",
]
