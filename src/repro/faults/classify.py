"""Classification of not-detected faults into explanatory groups.

The paper's conclusions announce exactly this kind of analysis as follow-up
work: "an attempt will be made to classify and group these faults as
non-functional scan path, low-speed and other faults that cannot cause the
device to fail at-speed operation".  This module provides that classifier for
our reproduction: given a circuit model, the clock-domain map and the test
configuration, every undetected fault is tagged with the structural reason
that best explains why the configured clocking cannot cover it.

Groups (in priority order — the first matching group wins):

* ``ram-shadow``        — the fault needs a RAM output value to be launched or
                          propagated and RAM-sequential patterns are disabled;
* ``non-scan-shadow``   — the fault's activation cone is dominated by non-scan
                          flip-flops that cannot be initialized with the
                          available number of clock pulses;
* ``cross-domain``      — activation and observation lie in different clock
                          domains and the configuration has no inter-domain
                          capture procedure;
* ``outside-at-speed-domains`` — the only observation points are flip-flops of
                          domains that are never pulsed at speed (e.g. the
                          test-controller clock domain) or masked primary
                          outputs;
* ``scan-path``         — the fault sits on the scan-path side of a scan
                          multiplexer and capture-time scan-enable is
                          constrained to functional mode;
* ``constrained-pin``   — the fault requires a value on a constrained pin
                          (reset, test enables) that the constraint forbids;
* ``unclassified``      — none of the structural reasons applies (genuinely
                          hard or aborted faults).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.clocking.domains import ClockDomainMap
from repro.faults.fault_list import FaultList, FaultStatus
from repro.faults.models import FaultSite, StuckAtFault, TransitionFault
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, NodeKind


@dataclass
class ClassifierContext:
    """Everything the classifier needs to know about the test configuration."""

    netlist: Netlist
    model: CircuitModel
    domain_map: ClockDomainMap
    at_speed_domains: frozenset[str]
    inter_domain_allowed: bool
    observe_pos: bool
    scan_enable_net: str | None
    scan_enable_constrained: bool
    constrained_pins: Mapping[str, Logic]
    ram_sequential: bool = False
    max_pulses: int = 2


class FaultClassifier:
    """Tags undetected faults with the structural reason they are untested."""

    def __init__(self, context: ClassifierContext) -> None:
        self.context = context
        self._scan_flop_names = {f.name for f in context.netlist.flops.values() if f.is_scan}
        self._nonscan_q_nodes = self._collect_nonscan_q_nodes()
        self._ram_nodes = set(context.model.ram_out_nodes)
        self._scan_path_nodes = self._collect_scan_path_nodes()
        self._constrained_pi_nodes = self._collect_constrained_pi_nodes()
        self._domain_of_node_cache: dict[int, frozenset[str]] = {}

    # ------------------------------------------------------------------ public
    def classify_fault(self, fault: StuckAtFault | TransitionFault) -> str:
        """Return the group name for a single fault."""
        site = fault.site
        fanin = self._fanin_region(site)
        fanout = self._fanout_region(site)

        if not self.context.ram_sequential and self._ram_nodes & fanin:
            return "ram-shadow"
        if self.context.max_pulses <= 2 and self._nonscan_q_nodes & fanin:
            return "non-scan-shadow"
        launch_domains = self._domains_of_nodes(fanin | {site.node})
        capture_domains = self._capture_domains(fanout)
        capture_at_speed = capture_domains & self.context.at_speed_domains
        observable_at_speed = bool(capture_at_speed)
        if self.context.observe_pos:
            observable_at_speed = observable_at_speed or self._reaches_po(fanout)
        if not observable_at_speed:
            return "outside-at-speed-domains"
        if capture_at_speed and launch_domains:
            if not (capture_at_speed & launch_domains) and not self.context.inter_domain_allowed:
                return "cross-domain"
        if self.context.scan_enable_constrained and site.node in self._scan_path_nodes:
            return "scan-path"
        if self._constrained_pi_nodes & (fanin | {site.node}):
            return "constrained-pin"
        return "unclassified"

    def classify_list(self, fault_list: FaultList) -> dict[str, int]:
        """Tag every not-detected fault in a fault list; returns the histogram."""
        for record in fault_list.records():
            if record.status is FaultStatus.DETECTED:
                continue
            record.group = self.classify_fault(record.fault)
        return fault_list.group_histogram()

    # --------------------------------------------------------------- internals
    def _collect_nonscan_q_nodes(self) -> set[int]:
        nodes: set[int] = set()
        for element in self.context.model.state_elements:
            if not element.flop.is_scan:
                nodes.add(element.q_node)
        # Latch outputs behave like uninitialized state as well.
        for node in self.context.model.nodes:
            if node.kind is NodeKind.PPI and node.instance in self.context.netlist.latches:
                nodes.add(node.index)
        return nodes

    def _collect_scan_path_nodes(self) -> set[int]:
        """Nodes that belong to the scan path side of scan multiplexers."""
        nodes: set[int] = set()
        se_net = self.context.scan_enable_net
        if se_net is None:
            return nodes
        model = self.context.model
        se_node = model.node_of_net.get(se_net)
        for node in model.nodes:
            if node.kind is NodeKind.GATE and node.gtype is GateType.MUX2 and node.fanin:
                if se_node is not None and node.fanin[0] == se_node:
                    nodes.add(node.index)
        return nodes

    def _collect_constrained_pi_nodes(self) -> set[int]:
        nodes: set[int] = set()
        for net in self.context.constrained_pins:
            idx = self.context.model.node_of_net.get(net)
            if idx is not None:
                nodes.add(idx)
        return nodes

    def _fanin_region(self, site: FaultSite) -> set[int]:
        model = self.context.model
        start = site.node if site.pin is None else model.nodes[site.node].fanin[site.pin]
        return set(model.transitive_fanin(start)) | {start}

    def _fanout_region(self, site: FaultSite) -> set[int]:
        model = self.context.model
        return set(model.transitive_fanout(site.node)) | {site.node}

    def _domains_of_nodes(self, nodes: set[int]) -> frozenset[str]:
        domains: set[str] = set()
        model = self.context.model
        for element in model.state_elements:
            if element.q_node in nodes:
                domain = self.context.domain_map.domain_of(element.name)
                if domain is not None:
                    domains.add(domain)
        # Purely PI-fed cones can launch in any pulsed domain.
        if not domains:
            domains.update(self.context.at_speed_domains)
        return frozenset(domains)

    def _capture_domains(self, fanout: set[int]) -> frozenset[str]:
        domains: set[str] = set()
        model = self.context.model
        for element in model.state_elements:
            if element.d_node is not None and element.d_node in fanout:
                domain = self.context.domain_map.domain_of(element.name)
                if domain is not None:
                    domains.add(domain)
        return frozenset(domains)

    def _reaches_po(self, fanout: set[int]) -> bool:
        po_nodes = {idx for _, idx in self.context.model.po_nodes}
        return bool(po_nodes & fanout)
