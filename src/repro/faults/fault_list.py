"""Fault list management, status tracking and coverage statistics.

A :class:`FaultList` owns a set of (collapsed) faults together with a status
per fault — the familiar ATPG bookkeeping (detected, possibly detected,
ATPG-untestable, aborted, undetected) plus an optional *group* tag used by the
fault classifier (:mod:`repro.faults.classify`) to explain *why* an undetected
fault cannot be tested under a given clocking configuration, which is exactly
the analysis the paper's conclusions call for.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Generic, Iterable, Iterator, TypeVar


FaultT = TypeVar("FaultT")


class FaultStatus(str, Enum):
    """ATPG/fault-simulation status of a fault."""

    UNDETECTED = "UD"
    DETECTED = "DT"
    POSSIBLY_DETECTED = "PT"
    ATPG_UNTESTABLE = "AU"
    UNTESTABLE = "UT"
    ABORTED = "AB"

    @property
    def counts_as_tested(self) -> bool:
        return self is FaultStatus.DETECTED

    @property
    def excluded_from_test_coverage(self) -> bool:
        """Untestable faults are removed from the test-coverage denominator."""
        return self is FaultStatus.UNTESTABLE


@dataclass
class FaultRecord(Generic[FaultT]):
    """Status bookkeeping for one fault."""

    fault: FaultT
    status: FaultStatus = FaultStatus.UNDETECTED
    detected_by: int | None = None  # pattern index
    group: str | None = None  # classifier tag for untested faults
    num_uncollapsed: int = 1  # size of the equivalence class this fault represents


@dataclass
class CoverageReport:
    """Coverage numbers in the style of the paper's Table 1."""

    total_faults: int
    detected: int
    possibly_detected: int
    atpg_untestable: int
    untestable: int
    aborted: int
    undetected: int

    @property
    def fault_coverage(self) -> float:
        """Detected / all faults (percent)."""
        if self.total_faults == 0:
            return 100.0
        return 100.0 * self.detected / self.total_faults

    @property
    def test_coverage(self) -> float:
        """Detected / (all faults - proven untestable) (percent) — the number
        the paper's Table 1 reports."""
        denominator = self.total_faults - self.untestable
        if denominator <= 0:
            return 100.0
        return 100.0 * self.detected / denominator

    @property
    def atpg_effectiveness(self) -> float:
        """(Detected + untestable + ATPG-untestable) / all faults (percent) —
        the "ATPG efficiency above 99%" figure quoted in Section 5.2."""
        if self.total_faults == 0:
            return 100.0
        resolved = self.detected + self.untestable + self.atpg_untestable
        return 100.0 * resolved / self.total_faults

    def as_dict(self) -> dict[str, float | int]:
        return {
            "total_faults": self.total_faults,
            "detected": self.detected,
            "possibly_detected": self.possibly_detected,
            "atpg_untestable": self.atpg_untestable,
            "untestable": self.untestable,
            "aborted": self.aborted,
            "undetected": self.undetected,
            "fault_coverage": self.fault_coverage,
            "test_coverage": self.test_coverage,
            "atpg_effectiveness": self.atpg_effectiveness,
        }


class FaultList(Generic[FaultT]):
    """Ordered collection of faults with status tracking."""

    def __init__(self, faults: Iterable[FaultT]) -> None:
        self._records: dict[FaultT, FaultRecord[FaultT]] = {}
        for fault in faults:
            if fault not in self._records:
                self._records[fault] = FaultRecord(fault=fault)

    # ----------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FaultT]:
        return iter(self._records)

    def __contains__(self, fault: FaultT) -> bool:
        return fault in self._records

    @property
    def faults(self) -> list[FaultT]:
        return list(self._records)

    def record(self, fault: FaultT) -> FaultRecord[FaultT]:
        return self._records[fault]

    def records(self) -> list[FaultRecord[FaultT]]:
        return list(self._records.values())

    def status_of(self, fault: FaultT) -> FaultStatus:
        return self._records[fault].status

    def with_status(self, *statuses: FaultStatus) -> list[FaultT]:
        wanted = set(statuses)
        return [f for f, r in self._records.items() if r.status in wanted]

    def remaining(self) -> list[FaultT]:
        """Faults that still need ATPG attention (undetected or aborted)."""
        return self.with_status(FaultStatus.UNDETECTED, FaultStatus.ABORTED,
                                FaultStatus.POSSIBLY_DETECTED)

    # ----------------------------------------------------------------- update
    def set_status(self, fault: FaultT, status: FaultStatus) -> None:
        self._records[fault].status = status

    def mark_detected(self, fault: FaultT, pattern_index: int | None = None) -> None:
        record = self._records[fault]
        record.status = FaultStatus.DETECTED
        record.detected_by = pattern_index

    def mark_detected_many(
        self, faults: Iterable[FaultT], pattern_index: int | None = None
    ) -> int:
        """Mark several faults detected; returns how many were newly detected."""
        newly = 0
        for fault in faults:
            record = self._records.get(fault)
            if record is None:
                continue
            if record.status is not FaultStatus.DETECTED:
                newly += 1
            record.status = FaultStatus.DETECTED
            if record.detected_by is None:
                record.detected_by = pattern_index
        return newly

    def set_group(self, fault: FaultT, group: str) -> None:
        self._records[fault].group = group

    def set_uncollapsed_count(self, fault: FaultT, count: int) -> None:
        self._records[fault].num_uncollapsed = count

    # ------------------------------------------------------------------ stats
    def coverage(self, weighted: bool = False) -> CoverageReport:
        """Aggregate coverage statistics.

        Args:
            weighted: Count every fault by the size of its equivalence class
                (i.e. report numbers over the *uncollapsed* universe).
        """

        def weight(record: FaultRecord[FaultT]) -> int:
            return record.num_uncollapsed if weighted else 1

        counts = Counter()
        total = 0
        for record in self._records.values():
            total += weight(record)
            counts[record.status] += weight(record)
        return CoverageReport(
            total_faults=total,
            detected=counts[FaultStatus.DETECTED],
            possibly_detected=counts[FaultStatus.POSSIBLY_DETECTED],
            atpg_untestable=counts[FaultStatus.ATPG_UNTESTABLE],
            untestable=counts[FaultStatus.UNTESTABLE],
            aborted=counts[FaultStatus.ABORTED],
            undetected=counts[FaultStatus.UNDETECTED],
        )

    def group_histogram(self) -> dict[str, int]:
        """Histogram of classifier groups over non-detected faults."""
        histogram: Counter[str] = Counter()
        for record in self._records.values():
            if record.status is FaultStatus.DETECTED:
                continue
            histogram[record.group or "unclassified"] += 1
        return dict(histogram)

    def partition(self, predicate: Callable[[FaultT], bool]) -> tuple[list[FaultT], list[FaultT]]:
        """Split faults into (matching, not matching)."""
        yes: list[FaultT] = []
        no: list[FaultT] = []
        for fault in self._records:
            (yes if predicate(fault) else no).append(fault)
        return yes, no
