"""Scan chain partitioning and balancing.

The paper stresses *balanced* chains: the tester applies every chain in
parallel, so test time is set by the longest chain, and the EDT controller's
compression ratio depends on chain count × length.  The partitioner keeps
chains within a clock domain (when asked) and balances lengths greedily.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def partition_into_chains(
    cells: Sequence[T],
    num_chains: int,
    key: Callable[[T], str] | None = None,
) -> list[list[T]]:
    """Split cells into ``num_chains`` balanced groups.

    Args:
        cells: Items to distribute (flip-flops, names, ...).
        num_chains: Desired number of chains (the result may contain fewer
            non-empty chains when there are fewer cells).
        key: Optional grouping key (e.g. the clock net); when given, no chain
            mixes two key values, and chains are allotted to key groups
            proportionally to their size (at least one chain per group).

    Returns:
        A list of ``num_chains`` lists (some possibly empty).
    """
    if num_chains < 1:
        raise ValueError("num_chains must be at least 1")
    if not cells:
        return [[] for _ in range(num_chains)]

    if key is None:
        return _balance(list(cells), num_chains)

    groups: dict[str, list[T]] = defaultdict(list)
    for cell in cells:
        groups[key(cell)].append(cell)
    group_items = sorted(groups.items(), key=lambda kv: (-len(kv[1]), kv[0]))

    if num_chains < len(group_items):
        # Not enough chains to keep domains separate: fall back to one chain
        # per group and ignore the requested count (correctness over balance).
        return [items for _, items in group_items]

    # Allocate chains proportionally to group sizes, at least one each.
    total = len(cells)
    allocation: dict[str, int] = {}
    remaining_chains = num_chains
    for index, (name, items) in enumerate(group_items):
        groups_left = len(group_items) - index
        share = max(1, round(len(items) / total * num_chains))
        share = min(share, remaining_chains - (groups_left - 1))
        allocation[name] = share
        remaining_chains -= share
    # Distribute any leftover chains to the largest groups.
    for name, _ in group_items:
        if remaining_chains <= 0:
            break
        allocation[name] += 1
        remaining_chains -= 1

    chains: list[list[T]] = []
    for name, items in group_items:
        chains.extend(_balance(items, allocation[name]))
    while len(chains) < num_chains:
        chains.append([])
    return chains


def _balance(cells: list[T], num_chains: int) -> list[list[T]]:
    """Greedy balancing: deal cells round-robin (cells are near-uniform cost)."""
    chains: list[list[T]] = [[] for _ in range(max(1, num_chains))]
    for index, cell in enumerate(cells):
        chains[index % len(chains)].append(cell)
    return chains


def chain_length_histogram(chains: Iterable[Sequence[T]]) -> dict[int, int]:
    """Histogram of chain lengths (useful for balance assertions)."""
    histogram: dict[int, int] = defaultdict(int)
    for chain in chains:
        histogram[len(chain)] += 1
    return dict(histogram)


def balance_metric(chains: Iterable[Sequence[T]]) -> float:
    """Max/mean chain length ratio; 1.0 means perfectly balanced."""
    lengths = [len(chain) for chain in chains if len(chain)]
    if not lengths:
        return 1.0
    return max(lengths) / (sum(lengths) / len(lengths))
