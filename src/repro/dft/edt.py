"""Embedded deterministic test (EDT) style compression.

The paper's device feeds its 357 internal chains from only 36 external
channels through an EDT architecture (reference [15]); compression is what
lets the inflated transition pattern counts still fit the tester's vector
memory.  This module implements the textbook structure:

* a ring-generator/LFSR **decompressor** with per-cycle channel injection and
  a phase shifter feeding the internal chain inputs.  Because the structure is
  linear over GF(2), the care bits of a test cube translate into a linear
  system over the injected channel bits; :meth:`EdtDecompressor.solve`
  performs the Gaussian elimination that the EDT controller's solver would;
* an XOR space **compactor** from internal chain outputs to output channels
  with optional per-chain X-masking;
* an :class:`EdtArchitecture` wrapper that reports compression ratio and
  tester vector-memory usage for a pattern set — the numbers behind the
  paper's remark that "only using this technique [can] the observed pattern
  count be loaded into the ATE vector memory without truncation".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.dft.scan import ScanArchitecture
from repro.patterns.pattern import PatternSet, TestPattern
from repro.simulation.logic import Logic


@dataclass
class EdtSolution:
    """Solved channel injection bits for one test cube."""

    channel_bits: list[list[int]]  # [cycle][channel]
    free_variables: int

    @property
    def num_cycles(self) -> int:
        return len(self.channel_bits)


class EdtDecompressor:
    """Linear (ring-generator + phase-shifter) test stimulus decompressor."""

    def __init__(
        self,
        num_channels: int,
        num_chains: int,
        lfsr_length: int = 32,
        seed: int = 2005,
    ) -> None:
        if num_channels < 1 or num_chains < 1:
            raise ValueError("channel and chain counts must be positive")
        self.num_channels = num_channels
        self.num_chains = num_chains
        self.lfsr_length = max(lfsr_length, num_channels, 8)
        rng = random.Random(seed)
        # Feedback taps of the ring generator (always includes the last bit).
        self.feedback_taps = sorted(
            {self.lfsr_length - 1}
            | {rng.randrange(self.lfsr_length) for _ in range(3)}
        )
        # Injection position of every external channel.
        self.injection_positions = [
            (i * self.lfsr_length) // num_channels for i in range(num_channels)
        ]
        # Phase shifter: each chain input is the XOR of three LFSR bits.
        self.phase_taps: list[tuple[int, ...]] = []
        for chain in range(num_chains):
            taps = {
                (chain * 7 + k * 13 + 1) % self.lfsr_length for k in range(3)
            }
            self.phase_taps.append(tuple(sorted(taps)))

    # --------------------------------------------------------------- forward
    def expand(self, channel_bits: Sequence[Sequence[int]]) -> list[list[int]]:
        """Expand per-cycle channel bits into per-cycle chain input bits.

        Args:
            channel_bits: ``channel_bits[cycle][channel]`` injection values.

        Returns:
            ``chain_bits[cycle][chain]`` values shifted into each chain head.
        """
        state = [0] * self.lfsr_length
        result: list[list[int]] = []
        for cycle_bits in channel_bits:
            state = self._step(state, cycle_bits)
            result.append([self._phase_output(state, chain) for chain in range(self.num_chains)])
        return result

    def _step(self, state: list[int], injections: Sequence[int]) -> list[int]:
        feedback = 0
        for tap in self.feedback_taps:
            feedback ^= state[tap]
        new_state = [feedback] + state[:-1]
        for channel, bit in enumerate(injections):
            if channel >= self.num_channels:
                break
            new_state[self.injection_positions[channel]] ^= bit & 1
        return new_state

    def _phase_output(self, state: Sequence[int], chain: int) -> int:
        value = 0
        for tap in self.phase_taps[chain]:
            value ^= state[tap]
        return value

    # -------------------------------------------------------------- symbolic
    def _symbolic_chain_bits(self, num_cycles: int) -> list[list[int]]:
        """Chain-input expressions as variable bitmasks.

        Variable ``cycle * num_channels + channel`` is the bit injected on
        ``channel`` during ``cycle``.  The returned
        ``expr[cycle][chain]`` is an integer bitmask of the variables whose
        XOR forms that chain bit (the LFSR starts from the all-zero state, so
        there is no constant term).
        """
        state = [0] * self.lfsr_length  # bitmasks
        expressions: list[list[int]] = []
        for cycle in range(num_cycles):
            feedback = 0
            for tap in self.feedback_taps:
                feedback ^= state[tap]
            state = [feedback] + state[:-1]
            for channel in range(self.num_channels):
                variable = 1 << (cycle * self.num_channels + channel)
                state[self.injection_positions[channel]] ^= variable
            expressions.append(
                [self._phase_expression(state, chain) for chain in range(self.num_chains)]
            )
        return expressions

    def _phase_expression(self, state: Sequence[int], chain: int) -> int:
        value = 0
        for tap in self.phase_taps[chain]:
            value ^= state[tap]
        return value

    def solve(
        self,
        care_bits: Mapping[tuple[int, int], int],
        chain_length: int,
        rng: random.Random | None = None,
    ) -> EdtSolution | None:
        """Solve for channel bits reproducing a test cube's care bits.

        Args:
            care_bits: ``{(chain_index, cell_position): value}`` where
                ``cell_position`` 0 is the cell nearest the chain's scan input.
            chain_length: Shift length (cycles) of the longest chain.
            rng: Source for the free variables (defaults to zeros).

        Returns:
            An :class:`EdtSolution`, or ``None`` if the care bits exceed the
            decompressor's encoding capacity (linearly dependent conflict).
        """
        num_cycles = chain_length
        expressions = self._symbolic_chain_bits(num_cycles)
        rows: list[int] = []
        rhs: list[int] = []
        for (chain, position), value in sorted(care_bits.items()):
            if chain >= self.num_chains or position >= chain_length:
                raise ValueError(f"care bit {(chain, position)} outside the scan structure")
            cycle = chain_length - 1 - position
            rows.append(expressions[cycle][chain])
            rhs.append(value & 1)
        solution_bits = _solve_gf2(rows, rhs, num_cycles * self.num_channels, rng)
        if solution_bits is None:
            return None
        channel_bits = [
            [
                (solution_bits >> (cycle * self.num_channels + channel)) & 1
                for channel in range(self.num_channels)
            ]
            for cycle in range(num_cycles)
        ]
        free = num_cycles * self.num_channels - len(rows)
        return EdtSolution(channel_bits=channel_bits, free_variables=max(0, free))


def _solve_gf2(
    rows: list[int], rhs: list[int], num_variables: int, rng: random.Random | None
) -> int | None:
    """Gaussian elimination over GF(2); returns a packed solution or None."""
    system = [(row, b) for row, b in zip(rows, rhs)]
    pivots: list[tuple[int, int, int]] = []  # (pivot_bit, row, rhs)
    for row, b in system:
        for pivot_bit, pivot_row, pivot_rhs in pivots:
            if row & (1 << pivot_bit):
                row ^= pivot_row
                b ^= pivot_rhs
        if row == 0:
            if b:
                return None
            continue
        pivot_bit = row.bit_length() - 1
        pivots.append((pivot_bit, row, b))
    solution = 0
    if rng is not None:
        for bit in range(num_variables):
            if rng.random() < 0.5:
                solution |= 1 << bit
        pivot_bits = {p for p, _, _ in pivots}
        for bit in pivot_bits:
            solution &= ~(1 << bit)
    # Back-substitute pivots (process them from lowest dependency upward).
    for pivot_bit, row, b in reversed(pivots):
        value = b
        rest = row & ~(1 << pivot_bit)
        while rest:
            bit = rest & -rest
            if solution & bit:
                value ^= 1
            rest ^= bit
        if value:
            solution |= 1 << pivot_bit
        else:
            solution &= ~(1 << pivot_bit)
    return solution


class XorCompactor:
    """Spatial XOR compactor with per-chain X-masking."""

    def __init__(self, num_chains: int, num_channels: int) -> None:
        if num_channels < 1:
            raise ValueError("need at least one output channel")
        self.num_chains = num_chains
        self.num_channels = num_channels
        self.assignment = [chain % num_channels for chain in range(num_chains)]

    def compact(
        self,
        chain_values: Sequence[Sequence[Logic]],
        mask: Sequence[bool] | None = None,
    ) -> list[list[Logic]]:
        """Compact per-chain unload streams into output channel streams.

        Args:
            chain_values: ``chain_values[chain][cycle]`` unload values.
            mask: Per-chain mask; masked chains do not contribute (X-masking).

        Returns:
            ``channel_values[channel][cycle]``; a cycle is X when any unmasked
            contributing chain is X for that cycle.
        """
        mask = list(mask) if mask is not None else [False] * self.num_chains
        cycles = max((len(v) for v in chain_values), default=0)
        output: list[list[Logic]] = [
            [Logic.ZERO] * cycles for _ in range(self.num_channels)
        ]
        for channel in range(self.num_channels):
            for cycle in range(cycles):
                acc = Logic.ZERO
                for chain in range(self.num_chains):
                    if self.assignment[chain] != channel or mask[chain]:
                        continue
                    values = chain_values[chain]
                    value = values[cycle] if cycle < len(values) else Logic.ZERO
                    acc = acc ^ value
                output[channel][cycle] = acc
        return output


@dataclass
class EdtStatistics:
    """Compression accounting for one pattern set."""

    num_patterns: int
    chain_length: int
    num_chains: int
    num_channels: int
    encoded_patterns: int
    encoding_conflicts: int

    @property
    def compression_ratio(self) -> float:
        """Scan data volume reduction versus direct chain access."""
        internal = self.num_chains * self.chain_length
        external = self.num_channels * self.chain_length
        return internal / external if external else 1.0

    @property
    def tester_cycles_per_pattern(self) -> int:
        return self.chain_length + 2  # shift plus capture overhead

    @property
    def vector_memory_bits(self) -> int:
        """Per-channel stimulus + response storage on the tester."""
        return self.num_patterns * self.tester_cycles_per_pattern * self.num_channels * 2


@dataclass(frozen=True)
class EdtConfig:
    """Declarative EDT configuration — the design-side compression contract.

    A plain-data counterpart of :class:`EdtArchitecture` that design specs
    can carry (and JSON-serialize): how many external input/output channels
    feed the internal chains and how long the ring generator is.  ``build``
    instantiates the architecture against a concrete scan structure.
    """

    input_channels: int
    output_channels: int | None = None
    lfsr_length: int = 32

    def __post_init__(self) -> None:
        if self.input_channels < 1:
            raise ValueError("an EDT configuration needs at least one input channel")

    def build(self, scan: ScanArchitecture) -> "EdtArchitecture":
        """Instantiate the decompressor/compactor pair for a scan architecture."""
        return EdtArchitecture(
            scan,
            num_input_channels=self.input_channels,
            num_output_channels=self.output_channels,
            lfsr_length=self.lfsr_length,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "input_channels": self.input_channels,
            "output_channels": self.output_channels,
            "lfsr_length": self.lfsr_length,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EdtConfig":
        return cls(**dict(data))  # type: ignore[arg-type]


class EdtArchitecture:
    """Decompressor + compactor pair bound to a scan architecture."""

    def __init__(
        self,
        scan: ScanArchitecture,
        num_input_channels: int,
        num_output_channels: int | None = None,
        lfsr_length: int = 32,
    ) -> None:
        self.scan = scan
        self.decompressor = EdtDecompressor(
            num_channels=num_input_channels,
            num_chains=scan.num_chains,
            lfsr_length=lfsr_length,
        )
        self.compactor = XorCompactor(
            num_chains=scan.num_chains,
            num_channels=num_output_channels or num_input_channels,
        )

    def encode_pattern(self, pattern: TestPattern) -> EdtSolution | None:
        """Encode one pattern's deterministic care bits through the decompressor.

        Only the test cube (the bits ATPG actually specified, recorded in
        ``cube_scan_load``) must be solved; X-filled bits simply take whatever
        the free-running ring generator produces.  Patterns without a recorded
        cube (e.g. hand-built ones) fall back to their full scan load.
        """
        source = pattern.cube_scan_load if pattern.cube_scan_load is not None else pattern.scan_load
        care_bits: dict[tuple[int, int], int] = {}
        for chain_index, chain in enumerate(self.scan.chains):
            for position, cell in enumerate(chain.cells):
                value = source.get(cell, Logic.X)
                if value.is_known:
                    care_bits[(chain_index, position)] = value.to_int()
        return self.decompressor.solve(care_bits, self.scan.max_chain_length)

    def statistics(self, patterns: PatternSet | Sequence[TestPattern]) -> EdtStatistics:
        """Encode a whole pattern set and report compression statistics."""
        encoded = 0
        conflicts = 0
        items = list(patterns)
        for pattern in items:
            if self.encode_pattern(pattern) is not None:
                encoded += 1
            else:
                conflicts += 1
        return EdtStatistics(
            num_patterns=len(items),
            chain_length=self.scan.max_chain_length,
            num_chains=self.scan.num_chains,
            num_channels=self.decompressor.num_channels,
            encoded_patterns=encoded,
            encoding_conflicts=conflicts,
        )
