"""Design-for-test infrastructure: scan insertion, chains, EDT compression."""

from repro.dft.chains import balance_metric, chain_length_histogram, partition_into_chains
from repro.dft.edt import (
    EdtArchitecture,
    EdtConfig,
    EdtDecompressor,
    EdtSolution,
    EdtStatistics,
    XorCompactor,
)
from repro.dft.scan import ScanArchitecture, ScanChain, insert_scan

__all__ = [
    "EdtArchitecture",
    "EdtConfig",
    "EdtDecompressor",
    "EdtSolution",
    "EdtStatistics",
    "ScanArchitecture",
    "ScanChain",
    "XorCompactor",
    "balance_metric",
    "chain_length_histogram",
    "insert_scan",
    "partition_into_chains",
]
