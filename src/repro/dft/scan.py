"""Scan insertion: multiplexed-input scan cells and chain stitching.

The paper's device uses "multiplexed scan cells" stitched into 357 balanced
internal chains.  This module converts the scannable flip-flops of a netlist
into mux-D scan cells (an explicit 2:1 multiplexer in front of the D pin, so
the scan path is ordinary logic visible to ATPG and fault models — which is
exactly what makes "non-functional scan path" faults appear in coverage
reports), stitches them into balanced chains, and records the resulting scan
architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from repro.dft.chains import partition_into_chains
from repro.netlist.gates import GateType
from repro.netlist.netlist import Gate, Netlist
from repro.simulation.logic import Logic


@dataclass(frozen=True)
class ScanChain:
    """One scan chain.

    Attributes:
        name: Chain name.
        scan_in: Primary input net feeding the first cell.
        scan_out: Primary output net driven by the last cell.
        cells: Flip-flop instance names, scan-in side first.
    """

    name: str
    scan_in: str
    scan_out: str
    cells: tuple[str, ...]

    @property
    def length(self) -> int:
        return len(self.cells)

    def load_sequence(self, scan_load: Mapping[str, Logic], fill: Logic = Logic.ZERO) -> list[Logic]:
        """Bit sequence to shift in (first bit first) to load the given values.

        The bit shifted in first travels furthest and ends in the *last* cell
        of the chain, so the sequence is the cell values in reverse order.
        """
        values = [scan_load.get(cell, Logic.X) for cell in self.cells]
        values = [v if v.is_known else fill for v in values]
        return list(reversed(values))

    def unload_values(self, shifted_out: Sequence[Logic]) -> dict[str, Logic]:
        """Map bits observed at scan-out (first observed first) back to cells.

        The first bit to appear at scan-out is the content of the *last* cell.
        """
        result: dict[str, Logic] = {}
        for offset, value in enumerate(shifted_out[: self.length]):
            cell = self.cells[self.length - 1 - offset]
            result[cell] = value
        return result


@dataclass
class ScanArchitecture:
    """The complete scan structure of a design after insertion."""

    scan_enable: str
    chains: list[ScanChain]
    test_mode: str | None = None

    @property
    def num_chains(self) -> int:
        return len(self.chains)

    @property
    def max_chain_length(self) -> int:
        return max((chain.length for chain in self.chains), default=0)

    @property
    def total_cells(self) -> int:
        return sum(chain.length for chain in self.chains)

    def chain_of(self, cell: str) -> ScanChain:
        for chain in self.chains:
            if cell in chain.cells:
                return chain
        raise KeyError(f"flip-flop {cell!r} is not in any scan chain")

    def scan_in_ports(self) -> list[str]:
        return [chain.scan_in for chain in self.chains]

    def scan_out_ports(self) -> list[str]:
        return [chain.scan_out for chain in self.chains]

    def load_sequences(
        self, scan_load: Mapping[str, Logic], fill: Logic = Logic.ZERO
    ) -> dict[str, list[Logic]]:
        """Per-chain shift-in sequences for one pattern."""
        return {chain.name: chain.load_sequence(scan_load, fill) for chain in self.chains}


def insert_scan(
    netlist: Netlist,
    num_chains: int = 4,
    scan_enable_net: str = "scan_en",
    chain_name_prefix: str = "chain",
    exclude: Iterable[str] = (),
    group_by_clock: bool = True,
    in_place: bool = True,
) -> tuple[Netlist, ScanArchitecture]:
    """Convert scannable flip-flops to scan cells and stitch balanced chains.

    Args:
        netlist: Design to modify.
        num_chains: Number of scan chains to build.
        scan_enable_net: Name of the (new) scan-enable primary input.
        chain_name_prefix: Prefix for chain names and scan-in/out port names.
        exclude: Flip-flop instance names to keep out of scan even if marked
            scannable.
        group_by_clock: Keep each chain within a single clock domain (chains
            never mix clocks — no lock-up latches are modelled).
        in_place: Modify the given netlist; when False a copy is returned.

    Returns:
        ``(netlist, architecture)``.
    """
    target = netlist if in_place else netlist.copy()
    excluded = set(exclude)

    candidates = [
        flop
        for flop in sorted(target.flops.values(), key=lambda f: f.name)
        if flop.scannable and flop.name not in excluded and not flop.is_scan
    ]
    if not candidates:
        return target, ScanArchitecture(scan_enable=scan_enable_net, chains=[])

    if scan_enable_net not in target.inputs:
        target.add_input(scan_enable_net)

    groups = partition_into_chains(
        candidates, num_chains, key=(lambda f: f.clock) if group_by_clock else None
    )

    chains: list[ScanChain] = []
    for chain_index, cells in enumerate(groups):
        if not cells:
            continue
        chain_name = f"{chain_name_prefix}{chain_index}"
        scan_in = f"{chain_name}_si"
        scan_out = f"{chain_name}_so"
        target.add_input(scan_in)
        previous_q = scan_in
        cell_names: list[str] = []
        for flop in cells:
            mux_out = f"{flop.name}_scan_d"
            target.add_gate(
                Gate(
                    name=f"{flop.name}_scan_mux",
                    gtype=GateType.MUX2,
                    inputs=(scan_enable_net, flop.d, previous_q),
                    output=mux_out,
                )
            )
            new_flop = replace(
                flop, d=mux_out, scan_in=previous_q, scan_enable=scan_enable_net
            )
            target.replace_flop(flop.name, new_flop)
            cell_names.append(flop.name)
            previous_q = flop.q
        target.add_gate(
            Gate(
                name=f"{chain_name}_so_buf",
                gtype=GateType.BUF,
                inputs=(previous_q,),
                output=scan_out,
            )
        )
        target.add_output(scan_out)
        chains.append(
            ScanChain(
                name=chain_name,
                scan_in=scan_in,
                scan_out=scan_out,
                cells=tuple(cell_names),
            )
        )
    return target, ScanArchitecture(scan_enable=scan_enable_net, chains=chains)
