"""Counters, gauges and histograms behind one thread-safe registry.

Names are dotted strings grouped by subsystem (``engine.tape_passes``,
``cache.hits``, ``atpg.backtracks``, ``scheduler.spills``); values are plain
numbers so a :meth:`MetricsRegistry.snapshot` drops straight into report
JSON and round-trips losslessly.  :meth:`MetricsRegistry.merge` folds a
worker's snapshot into the parent registry (counters add, gauges last-write-
wins, histograms combine), mirroring how the engine merges shard results.

The shared :data:`NULL_METRICS` instance is the disabled path: every method
is a no-op, so hot code increments unconditionally through
:func:`repro.obs.telemetry.active_metrics` guards without branching twice.
"""

from __future__ import annotations

import threading

__all__ = ["MetricsRegistry", "NullMetrics", "NULL_METRICS"]


class MetricsRegistry:
    """One process-local home for every counter/gauge/histogram."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, "int | float"] = {}
        self._gauges: dict[str, "int | float"] = {}
        self._hists: dict[str, dict[str, "int | float"]] = {}

    # -------------------------------------------------------------- recording
    def inc(self, name: str, amount: "int | float" = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: "int | float") -> None:
        """Set gauge ``name`` to its latest ``value``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: "int | float") -> None:
        """Record one sample into histogram ``name`` (count/total/min/max)."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                self._hists[name] = {
                    "count": 1, "total": value, "min": value, "max": value,
                }
            else:
                hist["count"] += 1
                hist["total"] += value
                hist["min"] = min(hist["min"], value)
                hist["max"] = max(hist["max"], value)

    # --------------------------------------------------------------- querying
    def counter(self, name: str) -> "int | float":
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, dict]:
        """A JSON-safe, sorted copy of every recorded metric."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: dict(hist)
                    for name, hist in sorted(self._hists.items())
                },
            }

    def merge(self, snapshot: dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(snapshot.get("gauges", {}))
            for name, theirs in snapshot.get("histograms", {}).items():
                mine = self._hists.get(name)
                if mine is None:
                    self._hists[name] = dict(theirs)
                else:
                    mine["count"] += theirs["count"]
                    mine["total"] += theirs["total"]
                    mine["min"] = min(mine["min"], theirs["min"])
                    mine["max"] = max(mine["max"], theirs["max"])

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


class NullMetrics:
    """Disabled registry: records nothing, snapshots empty."""

    enabled = False

    def inc(self, name: str, amount: "int | float" = 1) -> None:
        return None

    def gauge(self, name: str, value: "int | float") -> None:
        return None

    def observe(self, name: str, value: "int | float") -> None:
        return None

    def counter(self, name: str) -> int:
        return 0

    def snapshot(self) -> dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict[str, dict]) -> None:
        return None

    def clear(self) -> None:
        return None


#: The shared disabled registry (used by :data:`repro.obs.NULL_TELEMETRY`).
NULL_METRICS = NullMetrics()
