"""repro.obs — the zero-dependency observability plane.

Three pillars, one handle:

* **Tracing** (:mod:`repro.obs.trace`): nested ``span()`` context managers
  producing a :class:`Trace`, exportable as JSON-lines or the Chrome
  ``chrome://tracing`` / Perfetto trace-event format;
* **Metrics** (:mod:`repro.obs.metrics`): a thread-safe registry of
  counters/gauges/histograms snapshotted into report metadata;
* **Profiling** (:mod:`repro.obs.profile`): opt-in RSS sampling per span
  plus ``format_table``/``format_flame`` text renderers.

Everything hangs off one :class:`Telemetry` object::

    telemetry = Telemetry.on()
    report = session.with_telemetry(telemetry).run()
    telemetry.trace().write_chrome("trace.json")   # open in ui.perfetto.dev
    print(format_table(telemetry.trace()))

The default everywhere is the shared, falsy :data:`NULL_TELEMETRY`: with it,
instrumented code records nothing, reports stay byte-identical to their
un-instrumented output, and all four engine backends remain bit-identical.

Counter taxonomy (prefix per plane): ``cache.*`` result-cache I/O,
``executor.*`` runtime dispatch (retries, backend fallbacks, sink errors),
``engine.*`` fault-sim sharding, ``atpg.*`` generation, and ``serve.*`` the
service plane — ``serve.jobs_submitted`` / ``serve.jobs_started`` /
``serve.jobs_done`` / ``serve.jobs_failed`` / ``serve.jobs_cancelled`` /
``serve.recovered_jobs`` queue lifecycle, ``serve.remote_requeues``
lost-worker shard requeues, ``serve.local_fallbacks`` remote→local dispatch
degradations and ``serve.quota_evictions`` tenant-store pruning.
"""

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.profile import format_flame, format_table, rss_kb
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    active_metrics,
    active_tracer,
    coerce_telemetry,
    get_telemetry,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Trace, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "coerce_telemetry",
    "get_telemetry",
    "active_metrics",
    "active_tracer",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Trace",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "rss_kb",
    "format_table",
    "format_flame",
]
