"""The one object that carries tracing + metrics + profiling through a run.

Front doors thread a :class:`Telemetry` explicitly
(``TestSession.with_telemetry()`` / ``Campaign.with_telemetry()`` /
``Executor(telemetry=...)``); deep layers — the compiled kernel, the fault
scheduler, the cache, PODEM — pick up the *active* telemetry through
:func:`get_telemetry` / :func:`active_metrics` instead of growing a
``telemetry=`` parameter on every call.

Activation is a process-global stack (not a ``contextvars`` variable, on
purpose: executor worker *threads* must see the run's telemetry, and thread
pools do not inherit context).  Process workers start with an empty stack,
so their spans/counters are folded in at the existing merge seams (timed
shard workers, worker metric snapshots) rather than recorded remotely.

The disabled singleton :data:`NULL_TELEMETRY` is falsy and shared: the
default for every layer, with no measurable overhead — one list check per
instrumented call site.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.trace import NULL_TRACER, NullTracer, Trace, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "coerce_telemetry",
    "get_telemetry",
    "active_metrics",
    "active_tracer",
]


class Telemetry:
    """Tracer + metrics registry + profiling flag, enabled or the shared no-op."""

    def __init__(
        self,
        tracer: "Tracer | NullTracer",
        metrics: "MetricsRegistry | NullMetrics",
        *,
        profile: bool = False,
        enabled: bool = True,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.profile = profile
        self._enabled = enabled

    def __bool__(self) -> bool:
        return self._enabled

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "on" if self._enabled else "off"
        return f"Telemetry({state}, spans={self.tracer.span_count()})"

    # ----------------------------------------------------------- construction
    @classmethod
    def on(cls, *, profile: bool = False) -> "Telemetry":
        """A fresh enabled telemetry (opt-in RSS sampling via ``profile``)."""
        return cls(Tracer(profile=profile), MetricsRegistry(), profile=profile)

    @classmethod
    def off(cls) -> "Telemetry":
        """The shared disabled instance (no allocation, no recording)."""
        return NULL_TELEMETRY

    # ------------------------------------------------------------- activation
    def activate(self) -> "_Activation":
        """Make this telemetry the ambient one for the ``with`` block.

        Reentrant and nestable; activating the disabled singleton is a
        no-op, so callers never branch on enabledness.
        """
        return _Activation(self if self._enabled else None)

    # ---------------------------------------------------------------- results
    def trace(self) -> Trace:
        return self.tracer.trace()

    def snapshot(self) -> dict[str, object]:
        """JSON-safe summary embedded in report metadata."""
        return {
            "enabled": self._enabled,
            "profile": self.profile,
            "span_count": self.tracer.span_count(),
            "metrics": self.metrics.snapshot(),
        }


#: The shared disabled telemetry — falsy, allocation-free, thread-safe.
NULL_TELEMETRY = Telemetry(NULL_TRACER, NULL_METRICS, enabled=False)


def coerce_telemetry(value: "Telemetry | bool | None") -> Telemetry:
    """Accept ``Telemetry`` | ``True`` (fresh enabled) | ``False``/``None``."""
    if isinstance(value, Telemetry):
        return value
    if value is True:
        return Telemetry.on()
    if value is False or value is None:
        return NULL_TELEMETRY
    raise TypeError(
        f"expected a Telemetry, bool or None, got {type(value).__name__}"
    )


# ---------------------------------------------------------------------------
# The ambient-telemetry stack
# ---------------------------------------------------------------------------
_STACK: list[Telemetry] = []
_STACK_LOCK = threading.Lock()


class _Activation:
    __slots__ = ("_telemetry",)

    def __init__(self, telemetry: "Telemetry | None") -> None:
        self._telemetry = telemetry

    def __enter__(self) -> "_Activation":
        if self._telemetry is not None:
            with _STACK_LOCK:
                _STACK.append(self._telemetry)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._telemetry is not None:
            with _STACK_LOCK:
                for index in range(len(_STACK) - 1, -1, -1):
                    if _STACK[index] is self._telemetry:
                        del _STACK[index]
                        break


def get_telemetry() -> Telemetry:
    """The innermost activated telemetry, else :data:`NULL_TELEMETRY`."""
    return _STACK[-1] if _STACK else NULL_TELEMETRY


def active_metrics() -> "MetricsRegistry | None":
    """Fast hot-path accessor: the active registry, or ``None`` when off.

    One list truthiness check when disabled — cheap enough for per-kernel-
    call counters (never use it per gate).
    """
    return _STACK[-1].metrics if _STACK else None


def active_tracer() -> "Tracer | NullTracer":
    """The active tracer, else the shared no-op tracer."""
    return _STACK[-1].tracer if _STACK else NULL_TRACER
