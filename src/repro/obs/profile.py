"""Opt-in profiling: RSS sampling plus text renderers for traces.

``Telemetry.on(profile=True)`` makes every span exit stamp the process RSS
(and its delta over the span) into the span's attributes; this module owns
the sampler and the two CLI-friendly renderers:

* :func:`format_table` — flat per-span-name totals (calls, total/self wall,
  share of the trace), the "where did the time go" view;
* :func:`format_flame` — an indented call-tree with proportional bars, a
  text flame graph for terminals without a Perfetto tab.

Zero-dependency: RSS comes from ``/proc/self/statm`` when available (Linux)
with a ``resource.getrusage`` fallback, and ``0`` on platforms with neither.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Span, Trace

__all__ = ["rss_kb", "format_table", "format_flame"]

_PAGE_KB = os.sysconf("SC_PAGE_SIZE") // 1024 if hasattr(os, "sysconf") else 4


def rss_kb() -> int:
    """Resident set size of this process in KiB (best effort, 0 if unknown)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_KB
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; normalise the obviously-bytes case.
        return usage // 1024 if usage > 1 << 30 else usage
    except Exception:
        return 0


def _self_seconds(trace: "Trace", span: "Span") -> float:
    """Wall time of ``span`` minus the time covered by its direct children."""
    return max(
        span.duration - sum(child.duration for child in trace.children(span.id)),
        0.0,
    )


def format_table(trace: "Trace", *, limit: int = 20) -> str:
    """Flat profile: one row per span name, heaviest total time first."""
    totals: dict[str, dict[str, float]] = {}
    for span in trace:
        row = totals.setdefault(
            span.name, {"calls": 0, "total": 0.0, "self": 0.0}
        )
        row["calls"] += 1
        row["total"] += span.duration
        row["self"] += _self_seconds(trace, span)
    if not totals:
        return "(empty trace)"
    wall = sum(span.duration for span in trace.roots()) or 1.0
    rows = sorted(totals.items(), key=lambda item: -item[1]["total"])[:limit]
    width = max(len(name) for name, _ in rows)
    lines = [
        f"{'span':<{width}}  {'calls':>5}  {'total_s':>8}  {'self_s':>8}  {'share':>6}"
    ]
    for name, row in rows:
        lines.append(
            f"{name:<{width}}  {int(row['calls']):>5}  {row['total']:>8.3f}  "
            f"{row['self']:>8.3f}  {100 * row['total'] / wall:>5.1f}%"
        )
    return "\n".join(lines)


def format_flame(trace: "Trace", *, width: int = 30) -> str:
    """Indented call-tree with proportional bars (a text flame graph)."""
    if not len(trace):
        return "(empty trace)"
    wall = sum(span.duration for span in trace.roots()) or 1.0
    lines: list[str] = []

    def render(span: "Span", depth: int) -> None:
        bar = "#" * max(1, round(width * span.duration / wall))
        rss = span.attrs.get("rss_kb")
        suffix = f"  rss={rss}KiB" if rss is not None else ""
        lines.append(
            f"{'  ' * depth}{span.name:<{max(1, 40 - 2 * depth)}} "
            f"{span.duration:>8.3f}s  {bar}{suffix}"
        )
        for child in trace.children(span.id):
            render(child, depth + 1)

    for root in trace.roots():
        render(root, 0)
    return "\n".join(lines)
