"""Span tracing: nested timing records with Chrome/Perfetto export.

A :class:`Tracer` hands out :meth:`~Tracer.span` context managers; every
``with tracer.span("stage:atpg", scenario="a"):`` block becomes one
:class:`Span` with an id, a parent (the span that was open on the same
thread — or an explicit ``parent=`` id when the opener runs on a worker
thread), perf-counter start/end offsets and free-form attributes.  Finished
spans collect into a :class:`Trace`, exportable as JSON-lines (one span per
line) or as the Chrome ``chrome://tracing`` / Perfetto *trace event* format
(``{"traceEvents": [...]}``, ``"ph": "X"`` complete events, microsecond
timestamps) so a campaign run can be dropped straight into
https://ui.perfetto.dev.

Design constraints inherited from the engine:

* **thread-safe** — spans may open/close on executor worker threads; the
  current-span stack is thread-local and the finished list lock-guarded;
* **merge-friendly** — work that was timed elsewhere (fault-simulation
  shards in worker threads/processes) is folded in *after the fact* with
  :meth:`Tracer.record`, called in shard order at the same seam that merges
  detection masks, so span order is as deterministic as the results;
* **zero-dependency** — stdlib only, like everything under ``repro``.

The module-level :data:`NULL_TRACER` is the shared disabled instance: its
``span()`` returns one reusable no-op context manager, so instrumented code
never needs an ``if telemetry:`` guard on the hot path.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

__all__ = ["Span", "Trace", "Tracer", "NullTracer", "NULL_TRACER"]


def _json_safe(value: object) -> object:
    """Coerce one attribute value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _json_safe(val) for key, val in value.items()}
    return repr(value)


@dataclass
class Span:
    """One finished timing region.

    ``start``/``end`` are seconds relative to the owning tracer's epoch
    (taken from ``time.perf_counter()``), not wall-clock timestamps; the
    trace carries the wall-clock epoch separately.
    """

    id: int
    name: str
    parent: int | None
    start: float
    end: float
    thread: str = "main"
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict[str, object]:
        return {
            "id": self.id,
            "name": self.name,
            "parent": self.parent,
            "start": round(self.start, 9),
            "end": round(self.end, 9),
            "thread": self.thread,
            "attrs": {key: _json_safe(val) for key, val in self.attrs.items()},
        }


class Trace:
    """An ordered collection of finished spans plus export helpers."""

    def __init__(self, spans: list[Span], *, epoch_wall: float = 0.0) -> None:
        #: Spans sorted by (start, id): parents sort before their children
        #: (a child cannot start before its parent), so the order is stable
        #: no matter which thread finished first.
        self.spans = sorted(spans, key=lambda s: (s.start, s.id))
        self.epoch_wall = epoch_wall
        self._by_id = {span.id: span for span in self.spans}

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    # ------------------------------------------------------------- structure
    def get(self, span_id: int) -> Span | None:
        return self._by_id.get(span_id)

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.parent is None]

    def children(self, span_id: int) -> list[Span]:
        return [span for span in self.spans if span.parent == span_id]

    def find(self, prefix: str) -> list[Span]:
        """Every span whose name matches or starts with ``prefix``."""
        return [
            span for span in self.spans
            if span.name == prefix or span.name.startswith(prefix)
        ]

    def names(self) -> list[str]:
        return [span.name for span in self.spans]

    # --------------------------------------------------------------- exports
    def to_jsonl(self) -> str:
        """One JSON object per line, in stable (start, id) order."""
        return "".join(
            json.dumps(span.as_dict(), sort_keys=True) + "\n"
            for span in self.spans
        )

    def to_chrome(self) -> dict[str, object]:
        """The Chrome/Perfetto *trace event* document.

        Complete (``"ph": "X"``) events with microsecond ``ts``/``dur``,
        one synthetic ``pid`` and one ``tid`` per recording thread, plus
        the ``M`` metadata events that name them in the viewer's sidebar.
        """
        tids: dict[str, int] = {}
        for span in self.spans:
            tids.setdefault(span.thread, len(tids) + 1)
        events: list[dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro"},
            }
        ]
        for thread, tid in tids.items():
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": thread},
            })
        for span in self.spans:
            args: dict[str, object] = {
                key: _json_safe(val) for key, val in span.attrs.items()
            }
            args["span_id"] = span.id
            if span.parent is not None:
                args["parent"] = span.parent
            events.append({
                "name": span.name,
                "cat": span.name.split(":", 1)[0],
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(max(span.duration, 0.0) * 1e6, 3),
                "pid": 1,
                "tid": tids[span.thread],
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_jsonl(self, path: "str | Path") -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path

    def write_chrome(self, path: "str | Path") -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=1, sort_keys=True) + "\n")
        return path


class _SpanHandle:
    """The live context manager for one open span."""

    __slots__ = ("_tracer", "id", "name", "parent", "_start", "attrs", "_rss0")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        parent: int | None,
        attrs: dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.id = span_id
        self.name = name
        self.parent = parent
        self.attrs = attrs
        self._start = 0.0
        self._rss0 = 0

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        tracer._push(self.id)
        if tracer.profile:
            from repro.obs.profile import rss_kb

            self._rss0 = rss_kb()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        tracer = self._tracer
        if tracer.profile:
            from repro.obs.profile import rss_kb

            rss = rss_kb()
            self.attrs["rss_kb"] = rss
            self.attrs["rss_kb_delta"] = rss - self._rss0
        tracer._pop(self.id)
        tracer._finish(
            Span(
                id=self.id,
                name=self.name,
                parent=self.parent,
                start=self._start - tracer._epoch_perf,
                end=end - tracer._epoch_perf,
                thread=threading.current_thread().name,
                attrs=self.attrs,
            )
        )


class _NullSpanHandle:
    """Shared no-op stand-in for the disabled path."""

    __slots__ = ()
    id = None

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpanHandle()


class Tracer:
    """Produces nested spans; thread-safe; one per :class:`~repro.obs.Telemetry`."""

    enabled = True

    def __init__(self, *, profile: bool = False) -> None:
        self.profile = profile
        self._epoch_perf = time.perf_counter()
        self._epoch_wall = time.time()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 1
        self._local = threading.local()

    # ---------------------------------------------------------- span plumbing
    def _allocate(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_id: int) -> None:
        self._stack().append(span_id)

    def _pop(self, span_id: int) -> None:
        stack = self._stack()
        if stack and stack[-1] == span_id:
            stack.pop()

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def current_id(self) -> int | None:
        """Id of the innermost open span on *this* thread (or ``None``)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------- public API
    def span(
        self, name: str, *, parent: "int | None" = None, **attrs: object
    ) -> _SpanHandle:
        """Open a nested span; use as ``with tracer.span("stage:atpg"):``.

        ``parent`` overrides the thread-local nesting — pass the dispatching
        span's id when the block runs on a worker thread.
        """
        if parent is None:
            parent = self.current_id()
        return _SpanHandle(self, self._allocate(), name, parent, dict(attrs))

    def record(
        self,
        name: str,
        *,
        start: "float | None" = None,
        end: "float | None" = None,
        duration: "float | None" = None,
        parent: "int | None" = None,
        **attrs: object,
    ) -> int:
        """Fold in a span that was timed elsewhere (worker thread/process).

        ``start``/``end`` are ``time.perf_counter()`` readings from this
        process; a remote-process measurement passes ``duration`` (anchored
        at ``start`` when given, else ending now).  Called in shard order at
        merge seams, so recorded spans are as ordered as the results they
        describe.
        """
        now = time.perf_counter()
        if end is None:
            end = start + duration if (start is not None and duration is not None) else now
        if start is None:
            start = end - (duration if duration is not None else 0.0)
        if parent is None:
            parent = self.current_id()
        span_id = self._allocate()
        self._finish(
            Span(
                id=span_id,
                name=name,
                parent=parent,
                start=start - self._epoch_perf,
                end=end - self._epoch_perf,
                thread=threading.current_thread().name,
                attrs=dict(attrs),
            )
        )
        return span_id

    def trace(self) -> Trace:
        """A :class:`Trace` snapshot of every span finished so far."""
        with self._lock:
            spans = list(self._spans)
        return Trace(spans, epoch_wall=self._epoch_wall)

    def span_count(self) -> int:
        with self._lock:
            return len(self._spans)


class NullTracer:
    """Disabled tracer: every call is a cheap no-op returning shared objects."""

    enabled = False
    profile = False

    def span(self, name: str, *, parent: "int | None" = None, **attrs: object) -> _NullSpanHandle:
        return _NULL_SPAN

    def record(self, name: str, **kwargs: object) -> None:
        return None

    def current_id(self) -> None:
        return None

    def trace(self) -> Trace:
        return Trace([])

    def span_count(self) -> int:
        return 0


#: The shared disabled tracer (used by :data:`repro.obs.NULL_TELEMETRY`).
NULL_TRACER = NullTracer()
